//! The client side: a blocking connection with handshake, and a small
//! pool of them.
//!
//! [`Connection`] is one TCP stream that has completed the `Hello`
//! exchange. [`Pool`] lends connections out for single request/response
//! exchanges, reconnecting on demand and *discarding* any connection
//! whose exchange failed — a failed socket is never returned to the idle
//! list, so one bad exchange cannot poison the next. Retrying is
//! deliberately **not** done here: the mediator's resilience layer owns
//! the retry budget, and a transport that silently retried underneath it
//! would double-count attempts against circuit breakers.

use crate::error::NetError;
use crate::msg::Msg;
use mix_obs::{Counter, Histogram, Registry};
use std::io::BufWriter;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Client knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Per-exchange read/write deadline.
    pub io_timeout: Duration,
    /// Idle connections kept for reuse.
    pub pool_size: usize,
    /// Upper bound on the randomized delay inserted before *re*-dialing
    /// after a failed exchange or dial. Zero (the default) disables
    /// jitter; the first dial and dials after successes are never
    /// delayed. Spreads the reconnect storm when many clients lose the
    /// same replica at once and it comes back.
    pub reconnect_jitter: Duration,
    /// Seed for the deterministic jitter sequence (see
    /// [`reconnect_jitter`]); give each client its own seed.
    pub reconnect_jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            pool_size: 4,
            reconnect_jitter: Duration::ZERO,
            reconnect_jitter_seed: 0,
        }
    }
}

/// The deterministic reconnect jitter: maps `(seed, attempt)` uniformly
/// into `0..=max` via a splitmix64 round. Pure, so tests can predict the
/// exact delay a client will insert before its `attempt`-th consecutive
/// redial (attempts count from 1; a zero `max` always yields zero).
pub fn reconnect_jitter(seed: u64, attempt: u64, max: Duration) -> Duration {
    let max_ms = max.as_millis() as u64;
    if max_ms == 0 {
        return Duration::ZERO;
    }
    let mut z = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    Duration::from_millis(z % (max_ms + 1))
}

/// One handshaken connection to a remote wrapper.
#[derive(Debug)]
pub struct Connection {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    /// Connects, applies timeouts, and performs the `Hello` handshake.
    pub fn connect(addr: &str, config: &ClientConfig) -> Result<Connection, NetError> {
        // resolve then connect with a deadline; `connect_timeout` needs a
        // SocketAddr, so resolution errors surface as Io like connect ones
        let sock_addr = std::net::ToSocketAddrs::to_socket_addrs(addr)?
            .next()
            .ok_or_else(|| {
                NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("'{addr}' resolves to no address"),
                ))
            })?;
        let stream = TcpStream::connect_timeout(&sock_addr, config.connect_timeout)?;
        stream.set_read_timeout(Some(config.io_timeout))?;
        stream.set_write_timeout(Some(config.io_timeout))?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        let mut conn = Connection {
            reader,
            writer: BufWriter::new(stream),
        };
        match conn.request(Msg::Hello)? {
            Msg::Hello => Ok(conn),
            other => Err(NetError::protocol(format!(
                "handshake expected Hello back, got {:?}",
                other.msg_type()
            ))),
        }
    }

    /// One request/response exchange. A server-side fault ([`Msg::Err`])
    /// comes back as [`NetError::Remote`], an admission-control rejection
    /// ([`Msg::Throttled`]) as [`NetError::Throttled`]; the connection
    /// itself is still usable afterwards in both cases.
    pub fn request(&mut self, msg: Msg) -> Result<Msg, NetError> {
        msg.write_to(&mut self.writer)?;
        match Msg::read_from(&mut self.reader)? {
            Msg::Err { kind, msg } => Err(NetError::Remote { kind, msg }),
            Msg::Throttled { retry_after_ms } => Err(NetError::Throttled { retry_after_ms }),
            reply => Ok(reply),
        }
    }
}

/// A bounded pool of connections to one remote wrapper address.
///
/// `Send + Sync`: the mediator's parallel union materialization and
/// batched serving hit one source from many threads at once; each
/// exchange checks a connection out (or dials a fresh one) and returns it
/// only on success.
pub struct Pool {
    addr: String,
    config: ClientConfig,
    idle: Mutex<Vec<Connection>>,
    // consecutive failed exchanges/dials; drives the reconnect jitter
    redial_streak: AtomicU64,
    registry: Registry,
    exchanges: Counter,
    dials: Counter,
    discards: Counter,
    rpc_latency: Histogram,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("addr", &self.addr)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// A pool for `addr`. No connection is dialed until the first
    /// exchange, and nothing is recorded (see [`Pool::with_registry`]).
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Pool {
        Pool::with_registry(addr, config, &Registry::noop())
    }

    /// A pool recording client-side traffic into `registry`: exchanges
    /// and fresh dials, discarded (failed) connections, and round-trip
    /// RPC latency (`net_client_*` metric names).
    pub fn with_registry(
        addr: impl Into<String>,
        config: ClientConfig,
        registry: &Registry,
    ) -> Pool {
        Pool {
            addr: addr.into(),
            config,
            idle: Mutex::new(Vec::new()),
            redial_streak: AtomicU64::new(0),
            registry: registry.clone(),
            exchanges: registry.counter("net_client_exchanges_total"),
            dials: registry.counter("net_client_dials_total"),
            discards: registry.counter("net_client_discards_total"),
            rpc_latency: registry.histogram("net_client_rpc_latency_ns"),
        }
    }

    /// The remote address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The client configuration in force.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Idle connections currently held.
    pub fn idle_connections(&self) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// One request/response exchange on a pooled (or fresh) connection.
    pub fn request(&self, msg: Msg) -> Result<Msg, NetError> {
        self.exchanges.inc();
        let started = self.registry.now_ns();
        let mut conn = match self.checkout() {
            Some(c) => c,
            None => {
                // a *re*-dial after a failure waits out the jittered
                // delay, so clients that lost the same replica together
                // don't storm it together when it returns
                let streak = self.redial_streak.load(Ordering::Relaxed);
                if streak > 0 {
                    let delay = reconnect_jitter(
                        self.config.reconnect_jitter_seed,
                        streak,
                        self.config.reconnect_jitter,
                    );
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                self.dials.inc();
                match Connection::connect(&self.addr, &self.config) {
                    Ok(c) => c,
                    Err(e) => {
                        self.redial_streak.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                }
            }
        };
        let result = match conn.request(msg) {
            Ok(reply) => {
                self.redial_streak.store(0, Ordering::Relaxed);
                self.checkin(conn);
                Ok(reply)
            }
            // a remote fault or a throttle is an *answer*: the transport
            // is fine, keep the connection; anything else discards it
            Err(e @ (NetError::Remote { .. } | NetError::Throttled { .. })) => {
                self.redial_streak.store(0, Ordering::Relaxed);
                self.checkin(conn);
                Err(e)
            }
            Err(e) => {
                self.redial_streak.fetch_add(1, Ordering::Relaxed);
                self.discards.inc();
                Err(e)
            }
        };
        self.rpc_latency
            .observe(self.registry.now_ns().saturating_sub(started));
        result
    }

    fn checkout(&self) -> Option<Connection> {
        self.idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
    }

    fn checkin(&self, conn: Connection) {
        let mut idle = self
            .idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if idle.len() < self.config.pool_size {
            idle.push(conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig, WireFault, WireService};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Counting {
        answers: AtomicUsize,
    }

    impl WireService for Counting {
        fn export_dtd(&self) -> String {
            "{<r : a*> <a : PCDATA>}".into()
        }

        fn answer(&self, query: Option<&str>) -> Result<String, WireFault> {
            let n = self.answers.fetch_add(1, Ordering::SeqCst);
            match query {
                Some("fault") => Err(WireFault::new("transient", "scripted")),
                _ => Ok(format!("<n>{n}</n>")),
            }
        }
    }

    #[test]
    fn pool_reuses_connections_and_keeps_them_after_remote_faults() {
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::new(Counting {
                answers: AtomicUsize::new(0),
            }),
            ServerConfig::default(),
        )
        .unwrap()
        .spawn()
        .unwrap();
        let pool = Pool::new(server.addr().to_string(), ClientConfig::default());
        assert_eq!(pool.idle_connections(), 0);
        pool.request(Msg::Query(String::new())).unwrap();
        assert_eq!(pool.idle_connections(), 1);
        // a remote fault keeps the (healthy) connection pooled
        assert!(matches!(
            pool.request(Msg::Query("fault".into())),
            Err(NetError::Remote { .. })
        ));
        assert_eq!(pool.idle_connections(), 1);
        pool.request(Msg::Query(String::new())).unwrap();
        assert_eq!(pool.idle_connections(), 1, "the connection was reused");
        server.shutdown();
    }

    #[test]
    fn dead_connections_are_discarded_not_pooled() {
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::new(Counting {
                answers: AtomicUsize::new(0),
            }),
            ServerConfig::default(),
        )
        .unwrap()
        .spawn()
        .unwrap();
        let addr = server.addr().to_string();
        let pool = Pool::new(addr, ClientConfig::default());
        pool.request(Msg::Query(String::new())).unwrap();
        assert_eq!(pool.idle_connections(), 1);
        server.shutdown();
        // the pooled connection is now dead: the exchange fails and the
        // connection is dropped, not returned
        assert!(pool.request(Msg::Query(String::new())).is_err());
        assert_eq!(pool.idle_connections(), 0);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_spread() {
        let max = Duration::from_millis(250);
        for attempt in 1..=64u64 {
            let a = reconnect_jitter(7, attempt, max);
            assert_eq!(a, reconnect_jitter(7, attempt, max), "not deterministic");
            assert!(a <= max, "attempt {attempt}: {a:?} above cap");
        }
        // different seeds (≈ different clients) de-synchronize: the same
        // attempt number maps to many distinct delays
        let delays: std::collections::HashSet<Duration> = (0..64u64)
            .map(|seed| reconnect_jitter(seed, 1, max))
            .collect();
        assert!(delays.len() > 32, "only {} distinct delays", delays.len());
        assert_eq!(reconnect_jitter(7, 1, Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn redial_after_failure_waits_out_the_jitter() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let config = ClientConfig {
            reconnect_jitter: Duration::from_millis(40),
            reconnect_jitter_seed: 3,
            ..ClientConfig::default()
        };
        let pool = Pool::new(addr, config);
        // first dial: no streak yet, no delay
        assert!(pool.request(Msg::Query(String::new())).is_err());
        // second dial follows a failure: at least the deterministic delay
        let expected = reconnect_jitter(3, 1, config.reconnect_jitter);
        assert!(!expected.is_zero(), "pick a seed with a nonzero delay");
        let started = std::time::Instant::now();
        assert!(pool.request(Msg::Query(String::new())).is_err());
        assert!(
            started.elapsed() >= expected,
            "redial did not wait: {:?} < {expected:?}",
            started.elapsed()
        );
    }

    #[test]
    fn refused_connection_is_an_io_error() {
        // bind-then-drop: the port existed a moment ago and is now closed
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let pool = Pool::new(addr, ClientConfig::default());
        match pool.request(Msg::Query(String::new())) {
            Err(e) => assert!(e.is_refused(), "unexpected classification: {e:?}"),
            Ok(_) => panic!("exchange on a closed port succeeded"),
        }
    }
}
