//! The server side: a readiness-driven reactor exporting one
//! [`WireService`].
//!
//! One event-loop thread owns every socket (see [`crate::reactor`]); a
//! small worker pool answers queries. Connections are cheap — a parked
//! connection is an fd and two ring buffers, not a thread — and every
//! frame carries its own id, so one connection can have many queries in
//! flight and receive the answers in whatever order the workers finish.
//! The conversation on every connection is:
//!
//! ```text
//! client: Hello #1           server: Hello #1
//! client: ExportDtd "" #2    server: ExportDtd <dtd text> #2
//! client: Query <q|""> #3    ┐
//! client: Query <q|""> #4    ├ server: Answer <xml> #4   (any order,
//! client: Query <q|""> #5    ┘         Answer <xml> #3    matched by id)
//! …                                    Err <kind, detail> #5
//! ```
//!
//! A graceful [`ServerHandle::shutdown`] stops accepting and reading at
//! once, closes idle connections immediately, and *flushes* the answers
//! of queries that were already admitted (bounded by
//! [`ServerConfig::drain_timeout`]) — an admitted query is a promise.

use crate::error::NetError;
use crate::msg::Msg;
use crate::reactor::Reactor;
use crate::sys::Waker;
use mix_obs::{Counter, Gauge, Histogram, Registry};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A fault the service wants forwarded to the client as an `Err` message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// Stable machine-readable label (the mediator uses
    /// `SourceError::kind()` strings here).
    pub kind: String,
    /// Human-readable detail.
    pub msg: String,
}

impl WireFault {
    /// Builds a fault.
    pub fn new(kind: impl Into<String>, msg: impl Into<String>) -> WireFault {
        WireFault {
            kind: kind.into(),
            msg: msg.into(),
        }
    }
}

/// What a server exports: a DTD and answers, both as text. `mix-mediator`
/// implements this for any of its `Wrapper`s (including stacked-view
/// wrappers), keeping this crate free of mediator types.
pub trait WireService: Send + Sync + 'static {
    /// The exported DTD in the paper's compact notation (what
    /// `mix_dtd::Dtd::to_string` emits and `parse_compact` reads back).
    fn export_dtd(&self) -> String;

    /// Answers a query given as XMAS text; `None` requests the full
    /// exported document (`fetch`). Returns the answer as XML text.
    ///
    /// Called from worker threads, possibly many at once — implementations
    /// must tolerate concurrent calls (they already had to: the old
    /// thread-per-connection server called it from every handler).
    fn answer(&self, query: Option<&str>) -> Result<String, WireFault>;

    /// The service's observability snapshot as `mix-obs/1` JSON — what a
    /// [`crate::msg::Msg::Stats`] request returns. The default (`None`)
    /// makes the server answer `Err { kind: "unsupported" }`, so plain
    /// services need not know about observability at all.
    fn stats(&self) -> Option<String> {
        None
    }
}

/// Server knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connections served; excess connections are turned away
    /// with an `Err { kind: "unavailable" }` and closed.
    pub max_connections: usize,
    /// Eviction deadline: a connection with no byte progress in either
    /// direction for this long *and* nothing in flight is closed (and
    /// counted in `net_deadline_expiries_total`). A slow trickle of bytes
    /// is progress — dribblers park cheaply, they do not hold threads.
    pub io_timeout: Duration,
    /// Per-client admission control: every connection gets its own
    /// [`crate::admission::TokenBucket`] with these knobs, and a `Query`
    /// that finds it empty is answered with [`Msg::Throttled`] instead of
    /// being dispatched. `None` (the default) admits everything.
    pub admission: Option<crate::admission::AdmissionConfig>,
    /// Query worker threads; `0` (the default) sizes to the machine
    /// (available cores, clamped to 2..=16).
    pub workers: usize,
    /// How long shutdown will keep flushing answers of already-admitted
    /// queries before force-closing what remains.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            io_timeout: Duration::from_secs(30),
            admission: None,
            workers: 0,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Server-side traffic and lifecycle instruments, resolved once against
/// one [`Registry`] ([`Registry::noop`] unless [`Server::with_registry`]
/// is called) and shared with the reactor.
#[derive(Clone)]
pub(crate) struct NetInstruments {
    pub(crate) registry: Registry,
    pub(crate) conns_opened: Counter,
    pub(crate) conns_closed: Counter,
    pub(crate) conns_refused: Counter,
    pub(crate) frames_in: Counter,
    pub(crate) frames_out: Counter,
    pub(crate) bytes_in: Counter,
    pub(crate) bytes_out: Counter,
    pub(crate) deadline_expiries: Counter,
    pub(crate) requests_shed: Counter,
    pub(crate) rpc_latency: Histogram,
    pub(crate) reactor_polls: Counter,
    pub(crate) reactor_wakeups: Counter,
    pub(crate) version_mismatches: Counter,
    pub(crate) inflight_depth: Gauge,
}

impl NetInstruments {
    fn new(registry: &Registry) -> NetInstruments {
        NetInstruments {
            registry: registry.clone(),
            conns_opened: registry.counter("net_connections_opened_total"),
            conns_closed: registry.counter("net_connections_closed_total"),
            conns_refused: registry.counter("net_connections_refused_total"),
            frames_in: registry.counter("net_frames_in_total"),
            frames_out: registry.counter("net_frames_out_total"),
            bytes_in: registry.counter("net_bytes_in_total"),
            bytes_out: registry.counter("net_bytes_out_total"),
            deadline_expiries: registry.counter("net_deadline_expiries_total"),
            requests_shed: registry.counter("net_requests_shed_total"),
            rpc_latency: registry.histogram("net_rpc_latency_ns"),
            reactor_polls: registry.counter("net_reactor_polls_total"),
            reactor_wakeups: registry.counter("net_reactor_wakeups_total"),
            version_mismatches: registry.counter("net_version_mismatches_total"),
            inflight_depth: registry.gauge("net_inflight_depth"),
        }
    }

    pub(crate) fn read(&self, msg: &Msg) {
        self.frames_in.inc();
        self.bytes_in.add(msg.wire_size());
    }

    pub(crate) fn wrote(&self, msg: &Msg) {
        self.frames_out.inc();
        self.bytes_out.add(msg.wire_size());
    }
}

/// A bound, not-yet-running server.
pub struct Server<S: WireService> {
    listener: TcpListener,
    service: Arc<S>,
    config: ServerConfig,
    obs: NetInstruments,
}

/// A running server spawned on a background thread.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    join: Option<JoinHandle<()>>,
}

impl<S: WireService> Server<S> {
    /// Binds `addr` (use port 0 for an OS-assigned port, then read
    /// [`Server::local_addr`]).
    pub fn bind(addr: &str, service: Arc<S>, config: ServerConfig) -> Result<Server<S>, NetError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            service,
            config,
            obs: NetInstruments::new(&Registry::noop()),
        })
    }

    /// Records connection lifecycle, frame/byte traffic, deadline
    /// expiries, reactor wakeups/polls, in-flight depth, and per-RPC
    /// serve latency into `registry` (all under `net_*` metric names).
    /// Without this call every instrument is a no-op.
    pub fn with_registry(mut self, registry: &Registry) -> Server<S> {
        self.obs = NetInstruments::new(registry);
        self
    }

    /// The address actually bound.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the reactor on the calling thread, forever (until the process
    /// exits). This is what `mixctl serve-source` calls.
    pub fn run(self) -> Result<(), NetError> {
        let stop = Arc::new(AtomicBool::new(false));
        let waker = Arc::new(Waker::new()?);
        let reactor = Reactor::new(
            self.listener,
            self.service,
            self.config,
            self.obs,
            stop,
            waker,
        )?;
        reactor.run();
        Ok(())
    }

    /// Runs the reactor on a background thread and returns a handle that
    /// can shut it down — the daemon form used by benches and tests.
    pub fn spawn(self) -> Result<ServerHandle, NetError> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let waker = Arc::new(Waker::new()?);
        let reactor = Reactor::new(
            self.listener,
            self.service,
            self.config,
            self.obs,
            Arc::clone(&stop),
            Arc::clone(&waker),
        )?;
        let join = std::thread::spawn(move || reactor.run());
        Ok(ServerHandle {
            addr,
            stop,
            waker,
            join: Some(join),
        })
    }
}

impl ServerHandle {
    /// The served address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the daemon gracefully: no new connections are accepted, no
    /// new frames are read, idle connections close immediately (that is
    /// the "daemon killed" signal pooled clients see), and answers for
    /// queries that were already admitted are flushed before their
    /// connections close — bounded by [`ServerConfig::drain_timeout`].
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(join) = self.join.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        let _ = join.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::client::{ClientConfig, Connection};

    /// A service echoing canned text — protocol-level tests only; the
    /// real DTD/query round-trips live in `mix-mediator`.
    struct Echo;

    impl WireService for Echo {
        fn export_dtd(&self) -> String {
            "{<r : a*> <a : PCDATA>}".into()
        }

        fn answer(&self, query: Option<&str>) -> Result<String, WireFault> {
            match query {
                None => Ok("<r><a>1</a><a>2</a></r>".into()),
                Some("boom") => Err(WireFault::new("unavailable", "scripted outage")),
                Some(q) => Ok(format!("<echo>{q}</echo>")),
            }
        }
    }

    fn spawn_echo(config: ServerConfig) -> ServerHandle {
        Server::bind("127.0.0.1:0", Arc::new(Echo), config)
            .expect("bind")
            .spawn()
            .expect("spawn")
    }

    #[test]
    fn handshake_dtd_query_and_fault() {
        let h = spawn_echo(ServerConfig::default());
        let mut c =
            Connection::connect(&h.addr().to_string(), &ClientConfig::default()).expect("connect");
        assert_eq!(
            c.request(Msg::ExportDtd(String::new())).unwrap(),
            Msg::ExportDtd("{<r : a*> <a : PCDATA>}".into())
        );
        assert_eq!(
            c.request(Msg::Query(String::new())).unwrap(),
            Msg::Answer("<r><a>1</a><a>2</a></r>".into())
        );
        match c.request(Msg::Query("boom".into())) {
            Err(NetError::Remote { kind, msg }) => {
                assert_eq!(kind, "unavailable");
                assert_eq!(msg, "scripted outage");
            }
            other => panic!("expected remote fault, got {other:?}"),
        }
        // the connection survives a remote fault: it was an answer, not a
        // transport failure
        assert_eq!(
            c.request(Msg::Query("q".into())).unwrap(),
            Msg::Answer("<echo>q</echo>".into())
        );
        h.shutdown();
    }

    /// Echo plus a canned stats snapshot.
    struct WithStats;

    impl WireService for WithStats {
        fn export_dtd(&self) -> String {
            "{<r : a*> <a : PCDATA>}".into()
        }

        fn answer(&self, _query: Option<&str>) -> Result<String, WireFault> {
            Ok("<r/>".into())
        }

        fn stats(&self) -> Option<String> {
            Some(r#"{"schema":"mix-obs/1"}"#.into())
        }
    }

    #[test]
    fn stats_request_returns_snapshot_or_unsupported() {
        // a service without stats answers with an `unsupported` fault…
        let h = spawn_echo(ServerConfig::default());
        let mut c =
            Connection::connect(&h.addr().to_string(), &ClientConfig::default()).expect("connect");
        match c.request(Msg::Stats(String::new())) {
            Err(NetError::Remote { kind, .. }) => assert_eq!(kind, "unsupported"),
            other => panic!("expected unsupported fault, got {other:?}"),
        }
        h.shutdown();
        // …a service with stats returns the snapshot verbatim
        let h = Server::bind("127.0.0.1:0", Arc::new(WithStats), ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();
        let mut c =
            Connection::connect(&h.addr().to_string(), &ClientConfig::default()).expect("connect");
        assert_eq!(
            c.request(Msg::Stats(String::new())).unwrap(),
            Msg::Stats(r#"{"schema":"mix-obs/1"}"#.into())
        );
        h.shutdown();
    }

    #[test]
    fn instrumented_server_counts_connections_frames_and_bytes() {
        let registry = Registry::new();
        let h = Server::bind("127.0.0.1:0", Arc::new(Echo), ServerConfig::default())
            .unwrap()
            .with_registry(&registry)
            .spawn()
            .unwrap();
        let mut c =
            Connection::connect(&h.addr().to_string(), &ClientConfig::default()).expect("connect");
        let q = Msg::Query("q".into());
        let sent =
            Msg::Hello.wire_size() + Msg::ExportDtd(String::new()).wire_size() + q.wire_size();
        c.request(Msg::ExportDtd(String::new())).unwrap();
        c.request(q).unwrap();
        drop(c);
        h.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["net_connections_opened_total"], 1);
        assert_eq!(snap.counters["net_connections_closed_total"], 1);
        // Hello + ExportDtd + Query read; Hello + ExportDtd + Answer written
        assert_eq!(snap.counters["net_frames_in_total"], 3);
        assert_eq!(snap.counters["net_frames_out_total"], 3);
        assert_eq!(snap.counters["net_bytes_in_total"], sent);
        // the two non-handshake exchanges each landed one latency sample
        assert_eq!(snap.histograms["net_rpc_latency_ns"].count, 2);
        // the reactor accounted for its own activity and is now idle
        assert!(snap.counters["net_reactor_polls_total"] > 0);
        assert!(snap.counters["net_reactor_wakeups_total"] > 0);
        assert_eq!(snap.gauges["net_inflight_depth"], 0);
    }

    #[test]
    fn connection_cap_turns_excess_away() {
        let h = spawn_echo(ServerConfig {
            max_connections: 1,
            io_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        });
        let addr = h.addr().to_string();
        let cfg = ClientConfig::default();
        let first = Connection::connect(&addr, &cfg).expect("first connects");
        // give the reactor a moment to admit the first connection
        std::thread::sleep(Duration::from_millis(50));
        match Connection::connect(&addr, &cfg) {
            Err(NetError::Remote { kind, .. }) => assert_eq!(kind, "unavailable"),
            other => panic!("expected over-cap refusal, got {other:?}"),
        }
        drop(first);
        h.shutdown();
    }

    #[test]
    fn admission_sheds_over_budget_queries_per_client() {
        let registry = Registry::new();
        let h = Server::bind(
            "127.0.0.1:0",
            Arc::new(Echo),
            ServerConfig {
                admission: Some(AdmissionConfig {
                    burst: 2,
                    refill_per_sec: 0,
                }),
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .with_registry(&registry)
        .spawn()
        .unwrap();
        let addr = h.addr().to_string();
        let cfg = ClientConfig::default();
        let mut c = Connection::connect(&addr, &cfg).expect("connect");
        // the handshake and the DTD export are not admission-gated …
        c.request(Msg::ExportDtd(String::new())).unwrap();
        // … the burst of two queries goes through …
        c.request(Msg::Query(String::new())).unwrap();
        c.request(Msg::Query(String::new())).unwrap();
        // … and the third is shed with a backoff hint, on a live socket
        match c.request(Msg::Query(String::new())) {
            Err(NetError::Throttled { retry_after_ms }) => assert_eq!(retry_after_ms, 60_000),
            other => panic!("expected throttle, got {other:?}"),
        }
        // the budget is per client: a fresh connection has its own burst
        let mut c2 = Connection::connect(&addr, &cfg).expect("connect");
        c2.request(Msg::Query(String::new())).unwrap();
        drop((c, c2));
        h.shutdown();
        assert_eq!(registry.snapshot().counters["net_requests_shed_total"], 1);
    }

    #[test]
    fn shutdown_refuses_new_connections() {
        let h = spawn_echo(ServerConfig::default());
        let addr = h.addr().to_string();
        h.shutdown();
        assert!(Connection::connect(&addr, &ClientConfig::default()).is_err());
    }

    /// A service that answers slowly — shutdown must still deliver.
    struct Slow;

    impl WireService for Slow {
        fn export_dtd(&self) -> String {
            "{<r : a*> <a : PCDATA>}".into()
        }

        fn answer(&self, _query: Option<&str>) -> Result<String, WireFault> {
            std::thread::sleep(Duration::from_millis(150));
            Ok("<r><a>slow</a></r>".into())
        }
    }

    #[test]
    fn shutdown_flushes_in_flight_answers_before_closing() {
        // regression: the old live-socket registry severed connections at
        // shutdown even mid-answer, so an admitted query's reply could be
        // torn away; the drain phase must deliver it
        let h = Server::bind(
            "127.0.0.1:0",
            Arc::new(Slow),
            ServerConfig {
                drain_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .spawn()
        .unwrap();
        let addr = h.addr().to_string();
        let client = std::thread::spawn(move || {
            let mut c = Connection::connect(&addr, &ClientConfig::default()).expect("connect");
            c.request(Msg::Query(String::new()))
        });
        // let the query be admitted, then shut down while it is in flight
        std::thread::sleep(Duration::from_millis(60));
        h.shutdown();
        match client.join().expect("client thread") {
            Ok(Msg::Answer(xml)) => assert_eq!(xml, "<r><a>slow</a></r>"),
            other => panic!("in-flight answer was dropped by shutdown: {other:?}"),
        }
    }

    #[test]
    fn panicking_service_faults_the_query_not_the_server() {
        struct Panicky;
        impl WireService for Panicky {
            fn export_dtd(&self) -> String {
                "{<r : a*> <a : PCDATA>}".into()
            }
            fn answer(&self, query: Option<&str>) -> Result<String, WireFault> {
                if query == Some("die") {
                    panic!("scripted panic");
                }
                Ok("<r/>".into())
            }
        }
        let h = Server::bind("127.0.0.1:0", Arc::new(Panicky), ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();
        let mut c =
            Connection::connect(&h.addr().to_string(), &ClientConfig::default()).expect("connect");
        match c.request(Msg::Query("die".into())) {
            Err(NetError::Remote { kind, .. }) => assert_eq!(kind, "internal"),
            other => panic!("expected internal fault, got {other:?}"),
        }
        // the server (and even the connection) survived
        assert_eq!(
            c.request(Msg::Query("ok".into())).unwrap(),
            Msg::Answer("<r/>".into())
        );
        h.shutdown();
    }
}
