//! X19 — the sharded, replica-aware federation tier under fire: replica
//! failover latency, a 64-client storm against per-client admission
//! control, and replica-kill recovery.
//!
//! Like X15/X16 this is a custom harness (not Criterion): the acceptance
//! criteria are correctness plus ratios landing in a committed artifact,
//! so the run measures with `std::time::Instant`, asserts every served
//! answer is byte-identical to the in-process reference (zero wrong
//! answers, shed or not), and writes machine-readable results to
//! `BENCH_PR6.json` at the workspace root.
//!
//! Methodology notes:
//!
//! * Failover is measured at the [`ReplicaSet`] boundary: the "failover
//!   call" is the first call after the primary replica's daemon dies —
//!   it pays the dead socket discovery plus the retry against the
//!   surviving replica. Steady-state-after is cheaper than that but can
//!   include breaker probe calls against the dead address (cooldown
//!   expiry), which is the honest serving profile.
//! * The storm drives 64 concurrent `RemoteWrapper` clients into one
//!   daemon, with and without admission control. Shed requests fail fast
//!   with a `Throttled` reply; admitted requests are checked byte for
//!   byte. The shed count is cross-checked against the daemon's
//!   `net_requests_shed_total` instrument.

use mix_bench::{d1, department_of_size, q2};
use mix_mediator::{
    RemoteWrapper, ReplicaInstruments, ReplicaPolicy, ReplicaSet, SourceError, Wrapper,
    WrapperService, XmlSource,
};
use mix_net::{AdmissionConfig, Server, ServerConfig, ServerHandle};
use mix_obs::Registry;
use mix_xmas::Query;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DOC_SIZE: usize = 6;
const WARM_CALLS: usize = 20;
const STORM_CLIENTS: usize = 64;
const STORM_REQS: usize = 30;
const ADMIT_BURST: u64 = 4;
const ADMIT_REFILL: u64 = 10;

fn source() -> XmlSource {
    XmlSource::new(d1(), department_of_size(DOC_SIZE)).expect("valid dept")
}

fn spawn_daemon(config: ServerConfig, registry: &Registry) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        Arc::new(WrapperService::new(source()).with_registry(registry.clone())),
        config,
    )
    .expect("bind")
    .with_registry(registry)
    .spawn()
    .expect("spawn")
}

fn render(doc: &mix_xml::Document) -> String {
    mix_xml::write_document(doc, mix_xml::WriteConfig::default())
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let i = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[i]
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Failover latency + recovery at the ReplicaSet boundary.
struct FailoverResult {
    warm_p50_ns: u64,
    failover_call_ns: u64,
    post_p50_ns: u64,
    recovery_calls: usize,
}

fn bench_failover(query: &Query, expected: &str) -> FailoverResult {
    let registry = Registry::new();
    let primary = spawn_daemon(ServerConfig::default(), &Registry::noop());
    let standby = spawn_daemon(ServerConfig::default(), &Registry::noop());
    let replicas: Vec<Arc<dyn Wrapper>> = [&primary, &standby]
        .iter()
        .map(|d| {
            Arc::new(RemoteWrapper::connect(&d.addr().to_string()).expect("replica reachable"))
                as Arc<dyn Wrapper>
        })
        .collect();
    let set = ReplicaSet::new(
        "dept",
        replicas,
        ReplicaPolicy::default(),
        ReplicaInstruments::new(&registry, "dept", 2),
    )
    .expect("replica DTDs agree");

    let mut warm: Vec<u64> = (0..WARM_CALLS)
        .map(|_| {
            let t = Instant::now();
            let doc = set.answer(query).expect("healthy call");
            let ns = t.elapsed().as_nanos() as u64;
            assert_eq!(render(&doc), expected, "healthy answer diverged");
            ns
        })
        .collect();
    warm.sort_unstable();

    // the chaos event: the primary dies with its pooled connection
    primary.shutdown();
    let mut recovery_calls = 0usize;
    let t = Instant::now();
    let failover_call_ns = loop {
        recovery_calls += 1;
        match set.answer(query) {
            Ok(doc) => {
                assert_eq!(render(&doc), expected, "failover answer diverged");
                break t.elapsed().as_nanos() as u64;
            }
            Err(e) if recovery_calls < 8 => {
                eprintln!("failover call {recovery_calls} failed ({e}), retrying")
            }
            Err(e) => panic!("no recovery within {recovery_calls} calls: {e}"),
        }
    };

    let mut post: Vec<u64> = (0..WARM_CALLS)
        .map(|_| {
            let t = Instant::now();
            let doc = set.answer(query).expect("post-failover call");
            let ns = t.elapsed().as_nanos() as u64;
            assert_eq!(render(&doc), expected, "post-failover answer diverged");
            ns
        })
        .collect();
    post.sort_unstable();

    let snap = registry.snapshot();
    assert!(
        snap.counters[r#"replica_failovers_total{source="dept"}"#] >= 1,
        "failover must be counted"
    );
    standby.shutdown();
    FailoverResult {
        warm_p50_ns: percentile(&warm, 0.5),
        failover_call_ns,
        post_p50_ns: percentile(&post, 0.5),
        recovery_calls,
    }
}

/// One storm mode's aggregate outcome.
struct StormResult {
    admitted: usize,
    shed: usize,
    wrong: usize,
    errors: usize,
    p50_ns: u64,
    p99_ns: u64,
    server_shed: u64,
}

fn bench_storm(query: &Query, expected: &str, admission: Option<AdmissionConfig>) -> StormResult {
    let registry = Registry::new();
    let config = ServerConfig {
        max_connections: STORM_CLIENTS + 4,
        io_timeout: Duration::from_secs(10),
        admission,
        ..ServerConfig::default()
    };
    let daemon = spawn_daemon(config, &registry);
    let addr = daemon.addr().to_string();

    let results: Vec<(Vec<u64>, usize, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STORM_CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                let query = query.clone();
                scope.spawn(move || {
                    let remote = RemoteWrapper::connect(&addr).expect("storm client connects");
                    let mut admitted_ns = Vec::with_capacity(STORM_REQS);
                    let (mut shed, mut wrong, mut errors) = (0usize, 0usize, 0usize);
                    for _ in 0..STORM_REQS {
                        let t = Instant::now();
                        match remote.answer(&query) {
                            Ok(doc) => {
                                admitted_ns.push(t.elapsed().as_nanos() as u64);
                                if render(&doc) != expected {
                                    wrong += 1;
                                }
                            }
                            Err(SourceError::Throttled { .. }) => shed += 1,
                            Err(_) => errors += 1,
                        }
                    }
                    (admitted_ns, shed, wrong, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("storm client panicked"))
            .collect()
    });
    let server_shed = registry
        .snapshot()
        .counters
        .get("net_requests_shed_total")
        .copied()
        .unwrap_or(0);
    daemon.shutdown();

    let mut all_ns: Vec<u64> = results
        .iter()
        .flat_map(|(ns, ..)| ns.iter().copied())
        .collect();
    all_ns.sort_unstable();
    StormResult {
        admitted: all_ns.len(),
        shed: results.iter().map(|&(_, s, ..)| s).sum(),
        wrong: results.iter().map(|&(_, _, w, _)| w).sum(),
        errors: results.iter().map(|&(.., e)| e).sum(),
        p50_ns: percentile(&all_ns, 0.5),
        p99_ns: percentile(&all_ns, 0.99),
        server_shed,
    }
}

fn main() {
    let query = q2();
    let expected = render(&source().answer(&query).expect("reference answer"));

    println!("X19 federation tier: failover, admission storm, recovery");

    let fo = bench_failover(&query, &expected);
    println!(
        "  failover: warm p50 {:.1}us, failover call {:.1}us ({} call(s) to recover), \
         post-failover p50 {:.1}us",
        us(fo.warm_p50_ns),
        us(fo.failover_call_ns),
        fo.recovery_calls,
        us(fo.post_p50_ns),
    );
    assert_eq!(
        fo.recovery_calls, 1,
        "failover must recover on the first call"
    );

    let open = bench_storm(&query, &expected, None);
    println!(
        "  storm ({} clients x {} reqs), admission off: {} admitted, {} shed, \
         p50 {:.1}us, p99 {:.1}us",
        STORM_CLIENTS,
        STORM_REQS,
        open.admitted,
        open.shed,
        us(open.p50_ns),
        us(open.p99_ns),
    );
    assert_eq!(open.shed, 0, "no admission control, nothing may shed");
    assert_eq!(open.wrong, 0, "zero wrong answers (admission off)");

    let gated = bench_storm(
        &query,
        &expected,
        Some(AdmissionConfig {
            burst: ADMIT_BURST,
            refill_per_sec: ADMIT_REFILL,
        }),
    );
    println!(
        "  storm ({} clients x {} reqs), admission burst={} refill={}/s: \
         {} admitted, {} shed ({} server-counted), p50 {:.1}us, p99 {:.1}us",
        STORM_CLIENTS,
        STORM_REQS,
        ADMIT_BURST,
        ADMIT_REFILL,
        gated.admitted,
        gated.shed,
        gated.server_shed,
        us(gated.p50_ns),
        us(gated.p99_ns),
    );
    assert!(gated.shed > 0, "the storm must overflow the token buckets");
    assert_eq!(gated.wrong, 0, "zero wrong answers (admission on)");
    assert_eq!(
        gated.shed as u64, gated.server_shed,
        "client-observed sheds must match the daemon's mix-obs counter"
    );
    assert_eq!(gated.errors, 0, "sheds are replies, not transport faults");

    let json = format!(
        "{{\n  \"experiment\": \"X19\",\n  \
         \"generated_by\": \"cargo bench -p mix-bench --bench federation\",\n  \
         \"failover\": {{ \"warm_p50_us\": {:.1}, \"failover_call_us\": {:.1}, \
         \"post_failover_p50_us\": {:.1}, \"recovery_calls\": {} }},\n  \
         \"storm\": {{\n    \"clients\": {}, \"requests_per_client\": {},\n    \
         \"admission_off\": {{ \"admitted\": {}, \"shed\": {}, \"wrong\": {}, \
         \"p50_us\": {:.1}, \"p99_us\": {:.1} }},\n    \
         \"admission_on\": {{ \"burst\": {}, \"refill_per_sec\": {}, \
         \"admitted\": {}, \"shed\": {}, \"server_shed\": {}, \"wrong\": {}, \
         \"p50_us\": {:.1}, \"p99_us\": {:.1} }}\n  }},\n  \
         \"zero_wrong_answers\": true\n}}",
        us(fo.warm_p50_ns),
        us(fo.failover_call_ns),
        us(fo.post_p50_ns),
        fo.recovery_calls,
        STORM_CLIENTS,
        STORM_REQS,
        open.admitted,
        open.shed,
        open.wrong,
        us(open.p50_ns),
        us(open.p99_ns),
        ADMIT_BURST,
        ADMIT_REFILL,
        gated.admitted,
        gated.shed,
        gated.server_shed,
        gated.wrong,
        us(gated.p50_ns),
        us(gated.p99_ns),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    std::fs::write(out, json + "\n").expect("write BENCH_PR6.json");
    println!("wrote {out}");
}
