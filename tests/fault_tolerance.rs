//! Integration tests for the fault-tolerant source layer: graceful union
//! degradation, per-source circuit breakers observable through the
//! mediator, stale-snapshot serving, byte-for-byte report reproducibility
//! under a fixed seed, and fault tolerance across mediator stacking.

use mix::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const N: usize = 10;

fn site_dtd() -> Dtd {
    parse_compact("{<r : a*> <a : PCDATA>}").unwrap()
}

fn site_doc(i: usize) -> Document {
    parse_document(&format!("<r><a>m{i}.0</a><a>m{i}.1</a></r>")).unwrap()
}

fn part_query() -> Query {
    parse_query("u = SELECT X WHERE <r> X:<a/> </r>").unwrap()
}

/// A 10-source federation where each site runs a seeded fault schedule.
fn federation(fault_seed: u64, rate: f64) -> Mediator {
    let mut m = Mediator::new();
    let mut parts = Vec::new();
    for i in 0..N {
        let src = Arc::new(XmlSource::new(site_dtd(), site_doc(i)).unwrap());
        let inj = FaultInjector::seeded(src, fault_seed.wrapping_add(i as u64), rate);
        m.add_source(&format!("site{i}"), Arc::new(inj));
        parts.push((format!("site{i}"), part_query()));
    }
    let refs: Vec<(&str, Query)> = parts.iter().map(|(s, q)| (s.as_str(), q.clone())).collect();
    m.register_union_view("u", &refs).unwrap();
    m
}

/// The acceptance scenario: a union over N sources with k failing returns
/// the partial answer plus a report naming each failed source and its
/// breaker state — and the same seed reproduces the report byte for byte.
#[test]
fn degraded_union_report_is_reproducible_byte_for_byte() {
    let run = || {
        let m = federation(42, 0.6);
        let (doc, report) = m.materialize_with_report(name("u")).unwrap();
        (
            write_document(&doc, WriteConfig::default()),
            report.to_string(),
        )
    };
    let (doc_a, report_a) = run();
    let (doc_b, report_b) = run();
    assert_eq!(
        doc_a, doc_b,
        "same seed must reproduce the same partial answer"
    );
    assert_eq!(
        report_a.as_bytes(),
        report_b.as_bytes(),
        "same seed must reproduce the report byte for byte"
    );
    // at rate 0.6 with a 2-retry budget some sites fail and some survive —
    // the report names every site exactly once, with a breaker state each
    let m = federation(42, 0.6);
    let (_, report) = m.materialize_with_report(name("u")).unwrap();
    assert_eq!(report.outcomes.len(), N);
    assert!(
        !report.failed_sources().is_empty(),
        "seed 42 @ 0.6 fails some site"
    );
    assert!(
        report
            .outcomes
            .iter()
            .any(|o| o.status == FetchStatus::Fresh),
        "seed 42 @ 0.6 serves some site"
    );
    for o in &report.outcomes {
        assert!(report.to_string().contains(&o.source));
        assert!(report
            .to_string()
            .contains(&format!("breaker={}", o.breaker)));
    }
    // a different seed yields a different schedule (and so a different
    // report with overwhelming probability)
    let m2 = federation(43, 0.6);
    let (_, other) = m2.materialize_with_report(name("u")).unwrap();
    assert_ne!(report.to_string(), other.to_string());
}

/// Clean federations stay clean: rate 0 serves every member fresh and the
/// answer equals the concatenation of all members.
#[test]
fn clean_federation_reports_all_fresh() {
    let m = federation(7, 0.0);
    let (doc, report) = m.materialize_with_report(name("u")).unwrap();
    assert!(report.is_clean());
    assert!(report.union_dtd_covers_survivors);
    assert_eq!(doc.root.children().len(), 2 * N);
}

/// Repeated failures trip a source's breaker open (observable through the
/// mediator), and a later success through the half-open probe re-closes
/// it.
#[test]
fn breaker_lifecycle_is_observable_through_the_mediator() {
    let dtd = site_dtd();
    let src: Arc<dyn Wrapper> = Arc::new(XmlSource::new(dtd, site_doc(0)).unwrap());
    // calls 0..9 are outages, everything after succeeds
    let mut schedule = BTreeMap::new();
    for call in 0..9u64 {
        schedule.insert(call, Fault::Unavailable);
    }
    let inj = FaultInjector::new(src, FaultPlan::NthCalls(schedule));
    let mut m = Mediator::new();
    m.set_resilience_policy(ResiliencePolicy {
        max_retries: 0,
        failure_threshold: 3,
        cooldown_calls: 1,
        serve_stale: false,
        ..ResiliencePolicy::default()
    });
    m.add_source("s", Arc::new(inj));
    m.register_union_view("u", &[("s", part_query()), ("s", part_query())])
        .unwrap();
    assert_eq!(m.breaker_state("s"), Some(BreakerState::Closed));
    // each materialization hits the source twice (both union parts);
    // after two rounds (4 outages) the breaker is open
    for _ in 0..2 {
        let _ = m.materialize_with_report(name("u"));
    }
    assert_eq!(m.breaker_state("s"), Some(BreakerState::Open));
    // keep calling: probes burn through the remaining outages, and once
    // the schedule runs dry a probe succeeds and re-closes the breaker
    for _ in 0..8 {
        let _ = m.materialize_with_report(name("u"));
    }
    assert_eq!(m.breaker_state("s"), Some(BreakerState::Closed));
    let (_, report) = m.materialize_with_report(name("u")).unwrap();
    assert!(report.is_clean());
}

/// After one clean materialization, a source that goes hard-down keeps
/// serving its last-known-good snapshot, marked stale in the report.
#[test]
fn snapshot_serves_stale_members_after_outage() {
    let dtd = site_dtd();
    let src: Arc<dyn Wrapper> = Arc::new(XmlSource::new(dtd, site_doc(3)).unwrap());
    // first call clean, everything after a hard outage
    let mut script = vec![None];
    script.extend(vec![Some(Fault::Unavailable); 32]);
    let inj = FaultInjector::new(src, FaultPlan::Script(script));
    let mut m = Mediator::new();
    m.add_source("s", Arc::new(inj));
    m.register_union_view("u", &[("s", part_query())]).unwrap();
    let (doc, report) = m.materialize_with_report(name("u")).unwrap();
    assert!(report.is_clean());
    assert_eq!(doc.root.children().len(), 2);
    // the outage begins; the snapshot keeps the member alive
    let (doc, report) = m.materialize_with_report(name("u")).unwrap();
    assert_eq!(report.outcomes[0].status, FetchStatus::Stale);
    assert!(report.outcomes[0].error.is_some());
    assert_eq!(doc.root.children().len(), 2, "stale member still complete");
    // with stale serving disabled the same situation loses the member
    m.set_resilience_policy(ResiliencePolicy {
        serve_stale: false,
        ..ResiliencePolicy::default()
    });
    match m.materialize_with_report(name("u")) {
        Err(MediatorError::AllSourcesFailed(_)) => {}
        other => panic!(
            "expected total failure without stale serving, got {:?}",
            other.map(|(_, r)| r)
        ),
    }
}

/// Replacing a source resets its health: breaker re-closed, snapshot
/// dropped.
#[test]
fn replace_source_resets_health() {
    let dtd = site_dtd();
    let down: Arc<dyn Wrapper> = Arc::new(FaultInjector::new(
        Arc::new(XmlSource::new(dtd.clone(), site_doc(0)).unwrap()),
        FaultPlan::Script(vec![Some(Fault::Unavailable); 32]),
    ));
    let mut m = Mediator::new();
    m.set_resilience_policy(ResiliencePolicy {
        max_retries: 0,
        failure_threshold: 1,
        serve_stale: false,
        ..ResiliencePolicy::default()
    });
    m.add_source("s", down);
    m.register_union_view("u", &[("s", part_query())]).unwrap();
    let _ = m.materialize_with_report(name("u"));
    assert_eq!(m.breaker_state("s"), Some(BreakerState::Open));
    let fresh: Arc<dyn Wrapper> = Arc::new(XmlSource::new(dtd, site_doc(1)).unwrap());
    m.replace_source("s", fresh).unwrap();
    assert_eq!(m.breaker_state("s"), Some(BreakerState::Closed));
    let (_, report) = m.materialize_with_report(name("u")).unwrap();
    assert!(report.is_clean());
}

/// A query through `Mediator::query` over a union view carries the
/// degradation report on the materialized path.
#[test]
fn query_answers_carry_the_degradation_report() {
    let m = federation(42, 0.6);
    let q = parse_query("ans = SELECT X WHERE <u> X:<a/> </u>").unwrap();
    let a = m.query(&q).unwrap();
    assert_eq!(a.path, AnswerPath::Materialized);
    let report = a
        .degradation
        .expect("materialized answers carry the report");
    assert_eq!(report.outcomes.len(), N);
    assert!(!report.failed_sources().is_empty());
}

/// Stacked mediators propagate lower-level failures as source faults, so
/// the upper mediator's own resilience (snapshots included) applies.
#[test]
fn stacked_mediator_survives_lower_level_outage() {
    let dtd = site_dtd();
    // lower mediator: one source that dies after its first clean call
    let mut script = vec![None];
    script.extend(vec![Some(Fault::Unavailable); 32]);
    let inj = FaultInjector::new(
        Arc::new(XmlSource::new(dtd, site_doc(5)).unwrap()),
        FaultPlan::Script(script),
    );
    let mut lower = Mediator::new();
    lower.set_resilience_policy(ResiliencePolicy {
        serve_stale: false,
        ..ResiliencePolicy::default()
    });
    lower.add_source("s", Arc::new(inj));
    let v = parse_query("lowview = SELECT X WHERE <r> X:<a/> </r>").unwrap();
    lower.register_view("s", &v).unwrap();
    let lower = Arc::new(lower);
    let exported = ViewWrapper::new(Arc::clone(&lower), name("lowview")).unwrap();

    let mut upper = Mediator::new();
    upper.add_source("low", Arc::new(exported));
    let uq = parse_query("top = SELECT X WHERE <lowview> X:<a/> </lowview>").unwrap();
    upper.register_union_view("top", &[("low", uq)]).unwrap();
    // first materialization is clean and captures the upper snapshot
    let (_, report) = upper.materialize_with_report(name("top")).unwrap();
    assert!(report.is_clean());
    // the lower source is now down and the lower mediator does not serve
    // stale — but the *upper* mediator's snapshot keeps the view alive
    let (doc, report) = upper.materialize_with_report(name("top")).unwrap();
    assert_eq!(report.outcomes[0].status, FetchStatus::Stale);
    assert_eq!(doc.root.children().len(), 2);
}
