//! Experiment X1: quantifying tightness.
//!
//! For the paper's running views, counts — exactly — how many structural
//! documents of each size the three inferable view DTDs describe:
//!
//! * the naive view DTD (Example 3.1's baseline),
//! * the tight merged view DTD (the algorithm's plain-DTD output),
//! * the specialized view DTD (Section 3.3).
//!
//! Fewer described structures = tighter = more useful to the query
//! interface and the query simplifier. The table regenerates the numbers
//! recorded in `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release --example tightness_lab
//! ```

use mix::dtd::paper::d1_department;
use mix::infer::metrics::{realization_coverage, soundness_check, tightness_counts};
use mix::prelude::*;

fn show(label: &str, q: &Query, max: usize) {
    println!("\n── {label} ──");
    let rows = tightness_counts(q, &d1_department(), max);
    println!(
        "{:>5} {:>16} {:>16} {:>16}",
        "size", "naive", "tight DTD", "s-DTD"
    );
    let mut tn = 0u128;
    let mut tm = 0u128;
    let mut ts = 0u128;
    for r in rows {
        tn = tn.saturating_add(r.naive);
        tm = tm.saturating_add(r.merged);
        ts = ts.saturating_add(r.specialized);
        if r.naive + r.merged + r.specialized > 0 {
            println!(
                "{:>5} {:>16} {:>16} {:>16}",
                r.size, r.naive, r.merged, r.specialized
            );
        }
    }
    println!("{:>5} {tn:>16} {tm:>16} {ts:>16}", "Σ");
    if ts > 0 {
        println!(
            "looseness factors at size ≤ {max}: naive/tight = {:.2}×, tight/s-DTD = {:.2}×",
            tn as f64 / tm.max(1) as f64,
            tm as f64 / ts.max(1) as f64,
        );
    }
}

fn main() {
    let q2 = parse_query(
        "withJournals = SELECT P WHERE <department> <name>CS</name> \
           P:<professor | gradStudent> \
             <publication id=Pub1><journal/></publication> \
             <publication id=Pub2><journal/></publication> \
           </> </> AND Pub1 != Pub2",
    )
    .unwrap();
    let q3 = parse_query(
        "publist = SELECT P WHERE <department> <name>CS</name> \
           <professor | gradStudent> P:<publication><journal/></publication> </> </>",
    )
    .unwrap();

    show("Q2 (withJournals) on D1", &q2, 20);
    show("Q3 (publist) on D1", &q3, 16);

    println!("\n── soundness over random sources (X2 spot check) ──");
    for (label, q) in [("Q2", &q2), ("Q3", &q3)] {
        let r = soundness_check(q, &d1_department(), 300, 1, Default::default());
        println!(
            "{label}: {} samples, {} non-empty views, {} DTD violations, {} s-DTD violations",
            r.samples, r.nonempty_views, r.dtd_violations, r.sdtd_violations
        );
        assert_eq!(r.dtd_violations + r.sdtd_violations, 0);
    }

    println!("\n── realization coverage (how much of the s-DTD gets exercised) ──");
    let c = realization_coverage(&q3, &d1_department(), 400, 11, 9);
    println!(
        "Q3: {} of {} described structures (size ≤ 9) realized by 400 random sources",
        c.observed, c.described
    );
}
