//! Deterministic automata: subset construction, completion, product,
//! minimization, and the word-counting dynamic program used by the
//! tightness metrics.
//!
//! [`Dfa::minimize`] is Hopcroft's O(n·|Σ|·log n) partition refinement
//! with the smaller-half rule; the seed implementation's Moore refinement
//! survives as [`Dfa::minimize_moore`] and serves both as the
//! boxed-baseline path in [`crate::memo`] and as a cross-check oracle in
//! the property tests (both produce *the* minimal DFA, so state counts
//! must agree exactly).

use crate::ast::Regex;
use crate::nfa::Nfa;
use crate::symbol::Sym;
use std::collections::{HashMap, VecDeque};

/// A complete deterministic finite automaton over an explicit alphabet.
///
/// Every state has exactly one transition per alphabet symbol (a sink state
/// is materialized during construction), so language-theoretic operations
/// (complement, product, counting) are table walks.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// The symbols this automaton distinguishes. Symbols outside the
    /// alphabet are rejected from any state.
    pub alphabet: Vec<Sym>,
    /// `transitions[s * alphabet.len() + a]` = successor of state `s` on
    /// alphabet symbol index `a`.
    pub transitions: Vec<u32>,
    /// `accepting[s]` is true if `s` is final.
    pub accepting: Vec<bool>,
    /// The start state.
    pub start: u32,
}

impl Dfa {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.accepting.len()
    }

    /// True when there are no states (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.accepting.is_empty()
    }

    fn step(&self, state: u32, a: usize) -> u32 {
        self.transitions[state as usize * self.alphabet.len() + a]
    }

    fn sym_index(&self, s: Sym) -> Option<usize> {
        self.alphabet.iter().position(|&x| x == s)
    }

    /// Subset construction over the given alphabet.
    ///
    /// The alphabet must be a superset of the symbols the NFA uses; extra
    /// symbols yield dead transitions. Passing a shared alphabet lets two
    /// DFAs be combined with [`Dfa::product`].
    pub fn from_nfa(nfa: &Nfa, alphabet: &[Sym]) -> Dfa {
        let asz = alphabet.len();
        let nsz = nfa.len();
        // Map each subset (bitset as Vec<u64>) to a DFA state id.
        let words = nsz.div_ceil(64);
        if words <= 1 {
            return Self::from_nfa_small(nfa, alphabet);
        }
        // Per-(NFA state, alphabet index) successor bitmask, so the
        // subset step ORs whole words instead of re-scanning every
        // transition list for every discovered subset.
        let mut masks = vec![0u64; nsz * asz * words];
        let sym_idx: HashMap<Sym, usize> =
            alphabet.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for (s, row) in nfa.transitions.iter().enumerate() {
            for &(sym, t) in row {
                if let Some(&a) = sym_idx.get(&sym) {
                    masks[(s * asz + a) * words + t as usize / 64] |= 1 << (t % 64);
                }
            }
        }
        let mut start = vec![0u64; words];
        start[0] |= 1; // NFA state 0
        let mut index: HashMap<Vec<u64>, u32> = HashMap::new();
        index.insert(start.clone(), 0);
        let mut order = vec![start];
        let mut transitions: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut frontier = 0usize;
        while frontier < order.len() {
            let set = order[frontier].clone();
            frontier += 1;
            accepting.push((0..nsz).any(|s| set[s / 64] >> (s % 64) & 1 == 1 && nfa.accepting[s]));
            for a in 0..asz {
                let mut next = vec![0u64; words];
                for (w, &setw) in set.iter().enumerate() {
                    let mut bits = setw;
                    while bits != 0 {
                        let s = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let row = &masks[(s * asz + a) * words..(s * asz + a + 1) * words];
                        for (nw, &mw) in next.iter_mut().zip(row) {
                            *nw |= mw;
                        }
                    }
                }
                let id = *index.entry(next.clone()).or_insert_with(|| {
                    order.push(next);
                    (order.len() - 1) as u32
                });
                transitions.push(id);
            }
        }
        debug_assert_eq!(transitions.len(), order.len() * asz);
        Dfa {
            alphabet: alphabet.to_vec(),
            transitions,
            accepting,
            start: 0,
        }
    }

    /// Single-word specialization of the subset construction for NFAs
    /// with at most 64 states (every content model in the paper corpus
    /// and golden suite). Subsets are plain `u64`s, so the hot loop
    /// performs no heap allocation and the subset index hashes machine
    /// words instead of vectors. Discovery order matches the general
    /// path exactly, so the resulting DFA is byte-identical.
    fn from_nfa_small(nfa: &Nfa, alphabet: &[Sym]) -> Dfa {
        let asz = alphabet.len();
        let nsz = nfa.len();
        let sym_idx: HashMap<Sym, usize> =
            alphabet.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut masks = vec![0u64; nsz * asz];
        for (s, row) in nfa.transitions.iter().enumerate() {
            for &(sym, t) in row {
                if let Some(&a) = sym_idx.get(&sym) {
                    masks[s * asz + a] |= 1u64 << t;
                }
            }
        }
        let mut accept_mask = 0u64;
        for (s, &acc) in nfa.accepting.iter().enumerate() {
            if acc {
                accept_mask |= 1u64 << s;
            }
        }
        let mut index: HashMap<u64, u32> = HashMap::new();
        index.insert(1, 0); // start subset = {NFA state 0}
        let mut order: Vec<u64> = vec![1];
        let mut transitions: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut frontier = 0usize;
        while frontier < order.len() {
            let set = order[frontier];
            frontier += 1;
            accepting.push(set & accept_mask != 0);
            for a in 0..asz {
                let mut next = 0u64;
                let mut bits = set;
                while bits != 0 {
                    let s = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    next |= masks[s * asz + a];
                }
                let id = *index.entry(next).or_insert_with(|| {
                    order.push(next);
                    (order.len() - 1) as u32
                });
                transitions.push(id);
            }
        }
        debug_assert_eq!(transitions.len(), order.len() * asz);
        Dfa {
            alphabet: alphabet.to_vec(),
            transitions,
            accepting,
            start: 0,
        }
    }

    /// Builds a minimized DFA for `r` over the union of `r`'s symbols and
    /// `extra` alphabet symbols.
    pub fn from_regex_with_alphabet(r: &Regex, extra: &[Sym]) -> Dfa {
        let mut alphabet: Vec<Sym> = r.syms().into_iter().collect();
        for &s in extra {
            if !alphabet.contains(&s) {
                alphabet.push(s);
            }
        }
        alphabet.sort();
        Dfa::from_nfa(&Nfa::from_regex(r), &alphabet).minimize()
    }

    /// Builds a minimized DFA for `r` over exactly `r`'s own symbols.
    pub fn from_regex(r: &Regex) -> Dfa {
        Dfa::from_regex_with_alphabet(r, &[])
    }

    /// Runs the automaton. Symbols outside the alphabet reject.
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut s = self.start;
        for &c in word {
            match self.sym_index(c) {
                Some(a) => s = self.step(s, a),
                None => return false,
            }
        }
        self.accepting[s as usize]
    }

    /// Complement (the DFA is complete by construction, so this just flips
    /// accepting states). The complement is relative to the alphabet.
    pub fn complement(&self) -> Dfa {
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions: self.transitions.clone(),
            accepting: self.accepting.iter().map(|b| !b).collect(),
            start: self.start,
        }
    }

    /// Product automaton computing the *intersection* of two languages.
    ///
    /// Panics if the alphabets differ — build both sides with a shared
    /// alphabet (see [`Dfa::from_regex_with_alphabet`]).
    pub fn product(&self, other: &Dfa) -> Dfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires a shared alphabet"
        );
        let asz = self.alphabet.len();
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut order = vec![(self.start, other.start)];
        index.insert(order[0], 0);
        let mut transitions = Vec::new();
        let mut accepting = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let (p, q) = order[i];
            i += 1;
            accepting.push(self.accepting[p as usize] && other.accepting[q as usize]);
            for a in 0..asz {
                let next = (self.step(p, a), other.step(q, a));
                let id = *index.entry(next).or_insert_with(|| {
                    order.push(next);
                    (order.len() - 1) as u32
                });
                transitions.push(id);
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
            start: 0,
        }
    }

    /// `L(self) ⊆ L(other)` by an on-the-fly pairwise reachability walk:
    /// a reachable pair `(s, t)` with `s` accepting and `t` not is a
    /// counterexample word. Equivalent to
    /// `self.product(&other.complement()).language_is_empty()` but never
    /// materializes the product automaton or the complement — the
    /// interned inclusion memo's closer when the attribute refutations
    /// don't settle the probe.
    ///
    /// Panics if the alphabets differ (both DFAs are complete, so the
    /// walk is total).
    pub fn subset_of(&self, other: &Dfa) -> bool {
        assert_eq!(
            self.alphabet, other.alphabet,
            "inclusion requires a shared alphabet"
        );
        let asz = self.alphabet.len();
        let width = other.len();
        let mut seen = vec![false; self.len() * width];
        let mut stack = vec![(self.start, other.start)];
        seen[self.start as usize * width + other.start as usize] = true;
        while let Some((s, t)) = stack.pop() {
            if self.accepting[s as usize] && !other.accepting[t as usize] {
                return false;
            }
            for a in 0..asz {
                let next = (self.step(s, a), other.step(t, a));
                let slot = next.0 as usize * width + next.1 as usize;
                if !seen[slot] {
                    seen[slot] = true;
                    stack.push(next);
                }
            }
        }
        true
    }

    /// Does the automaton accept any word at all?
    pub fn language_is_empty(&self) -> bool {
        // BFS from the start state.
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            if self.accepting[s as usize] {
                return false;
            }
            for a in 0..self.alphabet.len() {
                let t = self.step(s, a);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Hopcroft partition-refinement minimization with the smaller-half
    /// rule (also prunes unreachable states). Produces the unique minimal
    /// complete DFA; block numbering is deterministic (first occurrence in
    /// reachability order), so repeated runs are byte-identical.
    pub fn minimize(&self) -> Dfa {
        let asz = self.alphabet.len();
        // 1. restrict to reachable states and renumber densely
        let mut reach: Vec<Option<u32>> = vec![None; self.len()];
        let mut order = vec![self.start];
        reach[self.start as usize] = Some(0);
        let mut i = 0;
        while i < order.len() {
            let s = order[i];
            i += 1;
            for a in 0..asz {
                let t = self.step(s, a);
                if reach[t as usize].is_none() {
                    reach[t as usize] = Some(order.len() as u32);
                    order.push(t);
                }
            }
        }
        let n = order.len();
        let mut delta = vec![0u32; n * asz];
        for (ri, &s) in order.iter().enumerate() {
            for a in 0..asz {
                delta[ri * asz + a] = reach[self.step(s, a) as usize].expect("successor reachable");
            }
        }
        // 2. initial partition by acceptance (empty halves dropped)
        let mut block_of = vec![0u32; n];
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        {
            let mut rej = Vec::new();
            let mut acc = Vec::new();
            for (ri, &s) in order.iter().enumerate() {
                if self.accepting[s as usize] {
                    acc.push(ri as u32);
                } else {
                    rej.push(ri as u32);
                }
            }
            for b in [rej, acc] {
                if !b.is_empty() {
                    let id = blocks.len() as u32;
                    for &s in &b {
                        block_of[s as usize] = id;
                    }
                    blocks.push(b);
                }
            }
        }
        // inverse transitions in CSR layout: the states reaching `t` on
        // `a` are `pred[pred_off[t*asz+a] .. pred_off[t*asz+a+1]]`. Two
        // flat arrays instead of n·|Σ| tiny vectors — profiling showed
        // those small allocations made Hopcroft slower than Moore on the
        // small DFAs the inference stack actually builds.
        let mut pred_off = vec![0u32; n * asz + 1];
        for ri in 0..n {
            for a in 0..asz {
                pred_off[delta[ri * asz + a] as usize * asz + a + 1] += 1;
            }
        }
        for i in 1..pred_off.len() {
            pred_off[i] += pred_off[i - 1];
        }
        let mut pred = vec![0u32; n * asz];
        let mut cursor = pred_off.clone();
        for ri in 0..n {
            for a in 0..asz {
                let slot = delta[ri * asz + a] as usize * asz + a;
                pred[cursor[slot] as usize] = ri as u32;
                cursor[slot] += 1;
            }
        }
        drop(cursor);
        // 3. worklist refinement. `in_wl[b * asz + a]` tracks pending
        // (block, symbol) splitters; splitting block B into B/N re-adds
        // both halves if (B, c) was pending, else the smaller half.
        let mut wl: VecDeque<(u32, usize)> = VecDeque::new();
        let mut in_wl = vec![false; blocks.len() * asz];
        for b in 0..blocks.len() {
            for a in 0..asz {
                in_wl[b * asz + a] = true;
                wl.push_back((b as u32, a));
            }
        }
        let mut mark = vec![false; n];
        // scratch buffers reused across refinement rounds (no per-round
        // allocation on the hot path)
        let mut x: Vec<u32> = Vec::new();
        let mut touched: Vec<u32> = Vec::new();
        let mut seen_block = vec![false; blocks.len()];
        while let Some((splitter, a)) = wl.pop_front() {
            in_wl[splitter as usize * asz + a] = false;
            // X = states with an a-transition into the splitter block
            x.clear();
            for &s in &blocks[splitter as usize] {
                let slot = s as usize * asz + a;
                for &p in &pred[pred_off[slot] as usize..pred_off[slot + 1] as usize] {
                    if !mark[p as usize] {
                        mark[p as usize] = true;
                        x.push(p);
                    }
                }
            }
            touched.clear();
            if seen_block.len() < blocks.len() {
                seen_block.resize(blocks.len(), false);
            }
            for &p in &x {
                let b = block_of[p as usize] as usize;
                if !seen_block[b] {
                    seen_block[b] = true;
                    touched.push(b as u32);
                }
            }
            for &b in &touched {
                seen_block[b as usize] = false;
            }
            touched.sort_unstable();
            for &b in &touched {
                let bi = b as usize;
                let (marked, unmarked): (Vec<u32>, Vec<u32>) =
                    blocks[bi].iter().partition(|&&s| mark[s as usize]);
                if unmarked.is_empty() {
                    continue; // every state of the block hit: no split
                }
                let new_id = blocks.len() as u32;
                for &s in &marked {
                    block_of[s as usize] = new_id;
                }
                blocks[bi] = unmarked;
                blocks.push(marked);
                in_wl.resize(blocks.len() * asz, false);
                for c in 0..asz {
                    if in_wl[bi * asz + c] {
                        in_wl[new_id as usize * asz + c] = true;
                        wl.push_back((new_id, c));
                    } else {
                        let smaller = if blocks[bi].len() <= blocks[new_id as usize].len() {
                            b
                        } else {
                            new_id
                        };
                        in_wl[smaller as usize * asz + c] = true;
                        wl.push_back((smaller, c));
                    }
                }
            }
            for &p in &x {
                mark[p as usize] = false;
            }
        }
        // 4. quotient, numbering blocks by first occurrence in
        // reachability order (so the start block is state 0)
        let nb = blocks.len();
        let mut newid = vec![u32::MAX; nb];
        let mut repr: Vec<u32> = Vec::new();
        for (ri, &blk) in block_of.iter().enumerate().take(n) {
            let b = blk as usize;
            if newid[b] == u32::MAX {
                newid[b] = repr.len() as u32;
                repr.push(ri as u32);
            }
        }
        let mut transitions = vec![0u32; nb * asz];
        let mut accepting = vec![false; nb];
        for (c, &ri) in repr.iter().enumerate() {
            accepting[c] = self.accepting[order[ri as usize] as usize];
            for a in 0..asz {
                transitions[c * asz + a] =
                    newid[block_of[delta[ri as usize * asz + a] as usize] as usize];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
            start: newid[block_of[0] as usize],
        }
    }

    /// The seed implementation's Moore partition-refinement minimization
    /// (also prunes unreachable states). Kept as the boxed-baseline path
    /// for [`crate::memo`] and as a cross-check oracle against
    /// [`Dfa::minimize`] — both yield the unique minimal DFA.
    pub fn minimize_moore(&self) -> Dfa {
        let asz = self.alphabet.len();
        // 1. restrict to reachable states
        let mut reach: Vec<Option<u32>> = vec![None; self.len()];
        let mut order = vec![self.start];
        reach[self.start as usize] = Some(0);
        let mut i = 0;
        while i < order.len() {
            let s = order[i];
            i += 1;
            for a in 0..asz {
                let t = self.step(s, a);
                if reach[t as usize].is_none() {
                    reach[t as usize] = Some(order.len() as u32);
                    order.push(t);
                }
            }
        }
        let n = order.len();
        // 2. initial partition by acceptance
        let mut class: Vec<u32> = order
            .iter()
            .map(|&s| u32::from(self.accepting[s as usize]))
            .collect();
        let mut nclasses = 2;
        loop {
            // signature of each state: (class, classes of successors)
            let mut sig_index: HashMap<Vec<u32>, u32> = HashMap::new();
            let mut next_class = vec![0u32; n];
            let mut next_n = 0;
            for (ri, &s) in order.iter().enumerate() {
                let mut sig = Vec::with_capacity(asz + 1);
                sig.push(class[ri]);
                for a in 0..asz {
                    let t = self.step(s, a);
                    let rt = reach[t as usize].expect("successor reachable");
                    sig.push(class[rt as usize]);
                }
                let id = *sig_index.entry(sig).or_insert_with(|| {
                    next_n += 1;
                    next_n - 1
                });
                next_class[ri] = id;
            }
            if next_n == nclasses {
                class = next_class;
                break;
            }
            nclasses = next_n;
            class = next_class;
        }
        // 3. build the quotient
        let mut transitions = vec![0u32; nclasses as usize * asz];
        let mut accepting = vec![false; nclasses as usize];
        let mut seen = vec![false; nclasses as usize];
        for (ri, &s) in order.iter().enumerate() {
            let c = class[ri] as usize;
            if seen[c] {
                continue;
            }
            seen[c] = true;
            accepting[c] = self.accepting[s as usize];
            for a in 0..asz {
                let t = self.step(s, a);
                let rt = reach[t as usize].expect("successor reachable");
                transitions[c * asz + a] = class[rt as usize];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
            start: class[0],
        }
    }

    /// Counts accepted words of each length `0..=max_len`.
    ///
    /// Saturates at `u128::MAX`. This is the workhorse of the quantitative
    /// tightness metric: the number of *sequences of children* a type allows.
    pub fn count_words_by_len(&self, max_len: usize) -> Vec<u128> {
        let asz = self.alphabet.len();
        let mut counts = vec![0u128; self.len()];
        counts[self.start as usize] = 1;
        let mut out = Vec::with_capacity(max_len + 1);
        let accept_sum = |c: &[u128]| {
            c.iter()
                .zip(&self.accepting)
                .filter(|(_, acc)| **acc)
                .fold(0u128, |s, (v, _)| s.saturating_add(*v))
        };
        out.push(accept_sum(&counts));
        for _ in 0..max_len {
            let mut next = vec![0u128; self.len()];
            for (s, &v) in counts.iter().enumerate() {
                if v == 0 {
                    continue;
                }
                for a in 0..asz {
                    let t = self.step(s as u32, a) as usize;
                    next[t] = next[t].saturating_add(v);
                }
            }
            counts = next;
            out.push(accept_sum(&counts));
        }
        out
    }

    /// Enumerates accepted words of length ≤ `max_len`, up to `cap` words,
    /// in length-lexicographic order.
    pub fn enumerate_words(&self, max_len: usize, cap: usize) -> Vec<Vec<Sym>> {
        let mut out = Vec::new();
        let mut layer: Vec<(u32, Vec<Sym>)> = vec![(self.start, Vec::new())];
        for len in 0..=max_len {
            for (s, w) in &layer {
                if self.accepting[*s as usize] {
                    out.push(w.clone());
                    if out.len() >= cap {
                        return out;
                    }
                }
            }
            if len == max_len {
                break;
            }
            let mut next = Vec::new();
            for (s, w) in &layer {
                for (a, &sym) in self.alphabet.iter().enumerate() {
                    let t = self.step(*s, a);
                    // Skip obvious dead branches: states from which no
                    // accepting state is reachable would still be expanded;
                    // keep it simple and rely on `cap`/`max_len` to bound.
                    let mut w2 = w.clone();
                    w2.push(sym);
                    next.push((t, w2));
                }
            }
            layer = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use crate::symbol::sym;

    fn dfa(s: &str) -> Dfa {
        Dfa::from_regex(&parse_regex(s).unwrap())
    }

    fn accepts(d: &Dfa, word: &[&str]) -> bool {
        let w: Vec<_> = word.iter().map(|s| sym(s)).collect();
        d.accepts(&w)
    }

    #[test]
    fn determinization_agrees_with_nfa() {
        let sources = [
            "a",
            "a, b",
            "a | b",
            "(a | b)*, c",
            "title, author+, (journal | conference)",
            "(a?, b)*",
            "a+, a+",
        ];
        let words: Vec<Vec<&str>> = vec![
            vec![],
            vec!["a"],
            vec!["b"],
            vec!["a", "b"],
            vec!["a", "a"],
            vec!["a", "b", "c"],
            vec!["title", "author", "journal"],
            vec!["a", "a", "a", "a"],
            vec!["b", "a"],
        ];
        for src in sources {
            let r = parse_regex(src).unwrap();
            let nfa = Nfa::from_regex(&r);
            let d = Dfa::from_regex(&r);
            for w in &words {
                let ws: Vec<_> = w.iter().map(|s| sym(s)).collect();
                assert_eq!(
                    nfa.accepts(&ws),
                    d.accepts(&ws),
                    "mismatch for {src} on {w:?}"
                );
            }
        }
    }

    #[test]
    fn complement_flips() {
        let d = dfa("a, b");
        let c = d.complement();
        assert!(accepts(&d, &["a", "b"]));
        assert!(!accepts(&c, &["a", "b"]));
        assert!(!accepts(&d, &["a"]));
        assert!(accepts(&c, &["a"]));
    }

    #[test]
    fn product_intersects() {
        let alpha: Vec<Sym> = vec![sym("a"), sym("b")];
        let d1 = Dfa::from_regex_with_alphabet(&parse_regex("a*, b*").unwrap(), &alpha);
        let d2 = Dfa::from_regex_with_alphabet(&parse_regex("(a, a)* , b*").unwrap(), &alpha);
        let p = d1.product(&d2);
        assert!(accepts(&p, &["a", "a", "b"]));
        assert!(!accepts(&p, &["a", "b"]));
        assert!(accepts(&p, &[]));
    }

    #[test]
    fn emptiness() {
        assert!(Dfa::from_regex(&Regex::Empty).language_is_empty());
        assert!(!dfa("a?").language_is_empty());
        // a ∩ b = ∅
        let alpha: Vec<Sym> = vec![sym("a"), sym("b")];
        let d1 = Dfa::from_regex_with_alphabet(&parse_regex("a").unwrap(), &alpha);
        let d2 = Dfa::from_regex_with_alphabet(&parse_regex("b").unwrap(), &alpha);
        assert!(d1.product(&d2).language_is_empty());
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        // a|a, (a) and a should all minimize to the same 2+sink machine.
        let d1 = dfa("a | a").minimize();
        let d2 = dfa("a").minimize();
        assert_eq!(d1.len(), d2.len());
        // p*,p,p* has the same language as p+.
        let d3 = dfa("p*, p, p*").minimize();
        let d4 = dfa("p+").minimize();
        assert_eq!(d3.len(), d4.len());
    }

    #[test]
    fn hopcroft_agrees_with_moore() {
        let sources = [
            "a",
            "a | a",
            "p*, p, p*",
            "p+",
            "(a | b)*, c",
            "title, author+, (journal | conference)",
            "(a?, b)*",
            "a+, a+",
            "(a, b) | (a, c) | (a, d)",
            "((a | b), (a | b))*",
        ];
        for src in sources {
            let r = parse_regex(src).unwrap();
            let raw = Dfa::from_nfa(
                &Nfa::from_regex(&r),
                &r.syms().into_iter().collect::<Vec<_>>(),
            );
            let h = raw.minimize();
            let m = raw.minimize_moore();
            assert_eq!(h.len(), m.len(), "state counts differ for {src}");
            let mut wh = h.enumerate_words(4, 500);
            let mut wm = m.enumerate_words(4, 500);
            wh.sort();
            wm.sort();
            assert_eq!(wh, wm, "languages differ for {src}");
        }
        // Hopcroft on an empty-language automaton
        let e = Dfa::from_regex(&Regex::Empty);
        assert!(e.minimize().language_is_empty());
    }

    #[test]
    fn subset_of_agrees_with_product_complement() {
        let sources = [
            "a",
            "a | b",
            "a*",
            "(a | b)*",
            "a, b",
            "(a, b) | (a, c)",
            "a+, b?",
            "title, author+, (journal | conference)",
            "title, author+, journal",
        ];
        for x in sources {
            for y in sources {
                let (rx, ry) = (parse_regex(x).unwrap(), parse_regex(y).unwrap());
                let mut alpha: Vec<Sym> = rx.syms().into_iter().chain(ry.syms()).collect();
                alpha.sort();
                alpha.dedup();
                let dx = Dfa::from_regex_with_alphabet(&rx, &alpha);
                let dy = Dfa::from_regex_with_alphabet(&ry, &alpha);
                assert_eq!(
                    dx.subset_of(&dy),
                    dx.product(&dy.complement()).language_is_empty(),
                    "subset_of diverges on {x} ⊆ {y}"
                );
            }
        }
    }

    #[test]
    fn counting_words() {
        // (a|b)* has 2^n words of length n.
        let d = dfa("(a | b)*");
        let c = d.count_words_by_len(5);
        assert_eq!(c, vec![1, 2, 4, 8, 16, 32]);
        // a? has one word of length 0 and one of length 1.
        let d = dfa("a?");
        assert_eq!(d.count_words_by_len(3), vec![1, 1, 0, 0]);
    }

    #[test]
    fn counting_saturates() {
        let d = dfa("(a | b)*");
        let c = d.count_words_by_len(200);
        assert_eq!(*c.last().unwrap(), u128::MAX.saturating_mul(1)); // saturated? 2^200 > u128::MAX
        assert_eq!(c[200], u128::MAX);
    }

    #[test]
    fn enumerate_small() {
        let d = dfa("a, b | c");
        let mut words = d.enumerate_words(2, 100);
        words.sort();
        assert_eq!(words.len(), 2);
        assert!(words.contains(&vec![sym("c")]));
        assert!(words.contains(&vec![sym("a"), sym("b")]));
    }
}
