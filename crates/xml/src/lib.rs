//! # mix-xml — the abstract XML model of the MIX mediator
//!
//! Implements the XML fragment of Section 2 of the paper: elements with a
//! name, a unique ID, and either element content or PCDATA (no other
//! attributes, no mixed content, no entities). Ships a from-scratch parser
//! and serializer for that fragment and the structural-class abstraction of
//! Definition 3.5.

#![warn(missing_docs)]

pub mod element;
pub mod parser;
pub mod skeleton;
pub mod writer;

pub use element::{Content, Document, ElemId, Element};
pub use parser::{escape, parse_document, parse_element, unescape, XmlError};
pub use skeleton::{same_structural_class, Skeleton};
pub use writer::{
    write_document, write_document_to, write_element, write_element_at, write_element_to,
    WriteConfig,
};
