//! Streaming source evaluation — wrapping documents that don't fit in
//! memory.
//!
//! [`StreamingWrapper`] exports a document that lives behind an
//! [`std::io::Read`] factory (a file, a socket, a decompressor) and
//! answers queries by **streaming**: the query is compiled against the
//! source DTD ([`mix_stream::CompiledQuery`]) and evaluated in one pass
//! over the bytes, so the resident state is bounded by document depth
//! and pattern size rather than document size.
//!
//! Not every XMAS query is streamable — `!=` constraints need the
//! in-memory join. The wrapper *falls back* transparently: unsupported
//! queries materialize the document through [`Wrapper::fetch`] and run
//! the ordinary evaluator, producing byte-identical answers either way.
//! Queries the satisfiability analyzer ([`mix_infer::check_sat_memo`])
//! proves `Unsat` against the source DTD skip both paths: the empty
//! answer is synthesized without opening the stream at all. All three
//! paths are observable: `stream_queries_streamed_total`,
//! `stream_queries_fallback_total`, and the process-wide
//! `sat_pruned_total` count which path served each query.

use crate::error::SourceError;
use crate::source::Wrapper;
use mix_dtd::Dtd;
use mix_stream::{stream_answer, CompiledQuery, StreamError, StreamStats};
use mix_xmas::{evaluate, normalize, Query};
use mix_xml::{Content, Document, ElemId, Element};
use std::io::Read;
use std::path::PathBuf;

/// The factory producing a fresh byte stream of the source document for
/// each evaluation pass.
pub type StreamFactory = Box<dyn Fn() -> Result<Box<dyn Read + Send>, SourceError> + Send + Sync>;

/// A wrapper over a re-openable byte stream, answering streamable
/// queries in one bounded-state pass and falling back to the in-memory
/// evaluator for the rest.
pub struct StreamingWrapper {
    dtd: Dtd,
    open: StreamFactory,
    streamed: mix_obs::Counter,
    fallbacks: mix_obs::Counter,
    pruned: mix_obs::Counter,
}

impl std::fmt::Debug for StreamingWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingWrapper").finish_non_exhaustive()
    }
}

/// Which path served a query, with the streaming resource profile when
/// the streaming path ran.
#[derive(Debug)]
pub enum ServedBy {
    /// One-pass streaming evaluation.
    Streamed(StreamStats),
    /// Materialize-and-evaluate fallback; the payload says why the query
    /// was not streamable.
    Fallback(mix_stream::Unsupported),
    /// The satisfiability analyzer proved the query `Unsat` against the
    /// source DTD: the empty answer was synthesized without reading a
    /// byte. The payload is the `Unsat` witness.
    Pruned(String),
}

impl StreamingWrapper {
    /// Wraps a stream factory. The DTD is trusted as the contract for
    /// what the stream serves (it drives both normalization and the
    /// streaming matcher's DTD pruning); a stream that violates it may
    /// lose the pruned matches, exactly like a source that lies to its
    /// mediator.
    pub fn new(dtd: Dtd, open: StreamFactory) -> StreamingWrapper {
        StreamingWrapper {
            dtd,
            open,
            streamed: mix_obs::global().counter("stream_queries_streamed_total"),
            fallbacks: mix_obs::global().counter("stream_queries_fallback_total"),
            pruned: mix_obs::global().counter("sat_pruned_total"),
        }
    }

    /// A wrapper streaming from a file path, re-opened per pass.
    pub fn from_file(dtd: Dtd, path: impl Into<PathBuf>) -> StreamingWrapper {
        let path = path.into();
        StreamingWrapper::new(
            dtd,
            Box::new(move || match std::fs::File::open(&path) {
                Ok(f) => Ok(Box::new(f) as Box<dyn Read + Send>),
                Err(e) => Err(SourceError::Unavailable(format!("{}: {e}", path.display()))),
            }),
        )
    }

    /// Answers `q`, reporting which path served it. The answer is
    /// byte-identical between the two paths.
    pub fn answer_traced(&self, q: &Query) -> Result<(Document, ServedBy), SourceError> {
        let nq = normalize(q, &self.dtd)?;
        if let mix_infer::SatVerdict::Unsat(witness) = mix_infer::check_sat_memo(q, &self.dtd) {
            self.pruned.inc();
            let empty = Document::new(Element {
                name: nq.view_name,
                id: ElemId::fresh(),
                content: Content::Elements(vec![]),
            });
            return Ok((empty, ServedBy::Pruned(witness)));
        }
        match CompiledQuery::compile(&nq, Some(&self.dtd)) {
            Ok(cq) => {
                let src = (self.open)()?;
                let (doc, stats) = stream_answer(src, &cq).map_err(stream_to_source_error)?;
                self.streamed.inc();
                Ok((doc, ServedBy::Streamed(stats)))
            }
            Err(unsupported) => {
                self.fallbacks.inc();
                let doc = self.fetch()?;
                Ok((evaluate(&nq, &doc), ServedBy::Fallback(unsupported)))
            }
        }
    }
}

fn stream_to_source_error(e: StreamError) -> SourceError {
    match e {
        StreamError::Io(e) => SourceError::Unavailable(format!("stream: {e}")),
        StreamError::Parse(e) => SourceError::MalformedXml(format!("stream: {e}")),
    }
}

impl Wrapper for StreamingWrapper {
    fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// Materializes the whole document — the fallback path and the
    /// escape hatch for callers that genuinely need the tree. This is
    /// the one operation whose memory is proportional to the document.
    fn fetch(&self) -> Result<Document, SourceError> {
        let mut src = (self.open)()?;
        let mut text = String::new();
        src.read_to_string(&mut text)
            .map_err(|e| SourceError::Unavailable(format!("stream: {e}")))?;
        mix_xml::parse_document(&text)
            .map_err(|e| SourceError::MalformedXml(format!("stream: {e}")))
    }

    fn answer(&self, q: &Query) -> Result<Document, SourceError> {
        self.answer_traced(q).map(|(doc, _)| doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_xmas::parse_query;
    use mix_xml::{write_document, WriteConfig};

    const DOC: &str = "<department><name>CS</name>\
        <professor><firstName>Y</firstName><lastName>P</lastName>\
          <publication id='p1'><title>t</title><author>a</author><journal/></publication>\
          <publication id='p2'><title>u</title><author>a</author><journal/></publication>\
          <teaches/></professor>\
        <gradStudent><firstName>P</firstName><lastName>V</lastName>\
          <publication><title>u</title><author>a</author><conference/></publication>\
        </gradStudent></department>";

    fn wrapper() -> StreamingWrapper {
        StreamingWrapper::new(
            d1_department(),
            Box::new(|| Ok(Box::new(DOC.as_bytes()) as Box<dyn Read + Send>)),
        )
    }

    fn xml(d: &Document) -> String {
        write_document(d, WriteConfig::default())
    }

    #[test]
    fn streamed_answers_match_the_in_memory_evaluator() {
        let w = wrapper();
        let q = parse_query(
            "profs = SELECT P WHERE <department> <name>CS</name> P:<professor/> </department>",
        )
        .unwrap();
        let (doc, served) = w.answer_traced(&q).unwrap();
        assert!(matches!(served, ServedBy::Streamed(_)), "got {served:?}");
        let reference = evaluate(&normalize(&q, w.dtd()).unwrap(), &w.fetch().unwrap());
        assert_eq!(xml(&doc), xml(&reference));
    }

    #[test]
    fn diseq_queries_fall_back_with_identical_answers() {
        let w = wrapper();
        let before = mix_obs::global()
            .counter("stream_queries_fallback_total")
            .get();
        let q = parse_query(
            "multi = SELECT P WHERE <department> P:<professor> \
               <publication id=A/> <publication id=B/> </> </department> AND A != B",
        )
        .unwrap();
        let (doc, served) = w.answer_traced(&q).unwrap();
        assert!(
            matches!(
                served,
                ServedBy::Fallback(mix_stream::Unsupported::Diseqs(1))
            ),
            "got {served:?}"
        );
        let reference = evaluate(&normalize(&q, w.dtd()).unwrap(), &w.fetch().unwrap());
        assert_eq!(xml(&doc), xml(&reference));
        assert_eq!(doc.root.children().len(), 1);
        let after = mix_obs::global()
            .counter("stream_queries_fallback_total")
            .get();
        assert!(after > before, "fallback must be counted");
    }

    #[test]
    fn unsat_queries_skip_the_stream_entirely() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let opens = Arc::new(AtomicUsize::new(0));
        let o = Arc::clone(&opens);
        let w = StreamingWrapper::new(
            d1_department(),
            Box::new(move || {
                o.fetch_add(1, Ordering::SeqCst);
                Ok(Box::new(DOC.as_bytes()) as Box<dyn Read + Send>)
            }),
        );
        // D1's professor model has no course child: provably Unsat
        let q = parse_query(
            "none = SELECT C WHERE <department> <professor> C:<course/> </> </department>",
        )
        .unwrap();
        let (doc, served) = w.answer_traced(&q).unwrap();
        assert!(matches!(served, ServedBy::Pruned(_)), "got {served:?}");
        assert_eq!(
            opens.load(Ordering::SeqCst),
            0,
            "a pruned query must not open the stream"
        );
        // the synthesized document matches what evaluation would produce
        let reference = evaluate(&normalize(&q, w.dtd()).unwrap(), &w.fetch().unwrap());
        assert_eq!(xml(&doc), xml(&reference));
    }

    #[test]
    fn streaming_stats_are_reported() {
        let w = wrapper();
        let q = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        let (_, served) = w.answer_traced(&q).unwrap();
        let ServedBy::Streamed(stats) = served else {
            panic!("expected the streaming path");
        };
        assert_eq!(stats.answers, 1);
        assert_eq!(stats.bytes_read as usize, DOC.len());
        assert!(stats.peak_state_bytes() > 0);
    }

    #[test]
    fn from_file_streams_and_reports_missing_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mix_streaming_test_{}.xml", std::process::id()));
        std::fs::write(&path, DOC).unwrap();
        let w = StreamingWrapper::from_file(d1_department(), &path);
        let q = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        assert_eq!(w.answer(&q).unwrap().root.children().len(), 1);
        std::fs::remove_file(&path).unwrap();
        match w.answer(&q) {
            Err(SourceError::Unavailable(_)) => {}
            other => panic!("expected Unavailable for a vanished file, got {other:?}"),
        }
    }

    #[test]
    fn malformed_streams_are_a_source_fault() {
        let w = StreamingWrapper::new(
            d1_department(),
            Box::new(|| Ok(Box::new("<department><nope".as_bytes()) as Box<dyn Read + Send>)),
        );
        let q = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        match w.answer(&q) {
            Err(SourceError::MalformedXml(_)) => {}
            other => panic!("expected MalformedXml, got {other:?}"),
        }
    }

    #[test]
    fn unnormalizable_queries_stay_structured() {
        let w = wrapper();
        let q =
            parse_query("v = SELECT Z WHERE <department> P:<professor/> </department>").unwrap();
        match w.answer(&q) {
            Err(SourceError::Query(_)) => {}
            other => panic!("expected Query error, got {other:?}"),
        }
    }
}
