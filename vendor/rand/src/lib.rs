//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the exact API subset this workspace uses — `Rng::gen_range`
//! over integer ranges, `Rng::gen_bool`, `SeedableRng::seed_from_u64`, and
//! `rngs::{StdRng, SmallRng}` — on top of xoshiro256++ seeded through
//! SplitMix64. The stream differs from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine: every consumer in this workspace treats seeds
//! as opaque reproducibility handles, never as a contract on the exact
//! sequence.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type usable as the argument of [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free-enough uniform draw from `[0, bound)` via Lemire-style
/// widening multiply; bias is < 2^-64 per draw, far below anything the
/// generators here could observe.
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        // 53 random bits → uniform f64 in [0,1)
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic default generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state; SplitMix64 cannot
            // produce it from any seed, but keep the guard explicit
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Small generator — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs =
            (0..100).any(|_| a.gen_range(0u64..1_000_000) != c.gen_range(0u64..1_000_000));
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range(2..4);
            assert!((2..4).contains(&v));
            seen[v as usize] = true;
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            seen[w] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of small ranges reached"
        );
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "got {heads} of 10000");
    }
}
