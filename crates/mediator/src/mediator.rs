//! The MIX mediator: view registration with DTD inference, and query
//! answering with the DTD-based simplifier and view–query composition.

use crate::compose::compose;
use crate::error::SourceError;
use crate::obs::{MediatorInstruments, SourceInstruments};
use crate::resilience::{
    resilient_answer, BreakerState, DegradationReport, FetchStatus, Health, ResiliencePolicy,
    SourceOutcome,
};
use crate::source::Wrapper;
use mix_infer::metrics::ServingMetrics;
use mix_infer::{
    classify_query, infer_union_view_dtd_cached, InferenceCache, InferredUnionView, InferredView,
    Verdict,
};
use mix_obs::Registry;
use mix_relang::symbol::Name;
use mix_xmas::{evaluate, normalize, NormalizeError, Query};
use mix_xml::{Content, Document, ElemId, Element};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A registered view: its definition, its source, and its inferred DTDs.
pub struct View {
    /// The source the view is defined over.
    pub source: String,
    /// Everything the inference pipeline produced (normalized query,
    /// s-DTD, merged DTD, verdict) — shared with the mediator's
    /// [`InferenceCache`], so re-registration and batch serving reuse it.
    pub inferred: Arc<InferredView>,
}

/// A registered *union* view over several sources (the intro's "union the
/// structures exported by 100 sites" scenario): one pick-element query per
/// source, members concatenated in registration order.
pub struct UnionView {
    /// The sources, in union order.
    pub sources: Vec<String>,
    /// The union inference result (s-DTD, merged DTD, verdict).
    pub inferred: InferredUnionView,
}

// Views are few and stored once in the registry map, so the size skew
// between the Arc-shared single view and the by-value union inference is
// irrelevant here.
#[allow(clippy::large_enum_variant)]
enum AnyView {
    Single(View),
    Union(UnionView),
}

impl AnyView {
    fn dtd(&self) -> &mix_dtd::Dtd {
        match self {
            AnyView::Single(v) => &v.inferred.dtd,
            AnyView::Union(v) => &v.inferred.dtd,
        }
    }

    /// Is the plain `dtd()` a *sound* description of the view? False only
    /// for union views mixing PCDATA and element content for one name —
    /// reasoning on the plain DTD is then disabled.
    fn plain_dtd_is_sound(&self) -> bool {
        match self {
            AnyView::Single(_) => true,
            AnyView::Union(v) => v.inferred.kind_conflicts.is_empty(),
        }
    }
}

/// Errors surfaced by the mediator API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MediatorError {
    /// `add_source`/`register_view` referenced an unknown source.
    UnknownSource(String),
    /// A query's root does not name a registered view.
    UnknownView(Name),
    /// A view with that name already exists.
    DuplicateView(Name),
    /// The view/query failed normalization.
    Normalize(NormalizeError),
    /// A single-source view's only source failed (after retries, breaker
    /// gating, and — when enabled — the stale-snapshot fallback).
    Source {
        /// The failed source's registered name.
        source: String,
        /// Why its last call failed.
        error: SourceError,
    },
    /// Every member source of a union view failed; not even a degraded
    /// partial answer could be assembled.
    AllSourcesFailed(Name),
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::UnknownSource(s) => write!(f, "unknown source '{s}'"),
            MediatorError::UnknownView(n) => write!(f, "no view named '{n}'"),
            MediatorError::DuplicateView(n) => write!(f, "view '{n}' already registered"),
            MediatorError::Normalize(e) => write!(f, "{e}"),
            MediatorError::Source { source, error } => {
                write!(f, "source '{source}' failed: {error}")
            }
            MediatorError::AllSourcesFailed(n) => {
                write!(f, "every source of view '{n}' failed")
            }
        }
    }
}

impl std::error::Error for MediatorError {}

impl From<NormalizeError> for MediatorError {
    fn from(e: NormalizeError) -> Self {
        MediatorError::Normalize(e)
    }
}

/// How a query was answered — surfaced so the ablation benches (X8/X9)
/// and the examples can show the effect of each optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerPath {
    /// The DTD-based simplifier proved the query unsatisfiable against the
    /// view DTD; no source was contacted.
    PrunedUnsatisfiable,
    /// The query was composed with the view definition and shipped to the
    /// source as one query (no view materialization).
    Composed,
    /// The view was materialized and the query evaluated over it.
    Materialized,
}

/// An answered query.
pub struct Answer {
    /// The result document.
    pub document: Document,
    /// Which execution path produced it.
    pub path: AnswerPath,
    /// How the sources behind the answer fared. `Some` whenever sources
    /// were contacted through the resilience layer with something to
    /// report: always for materialized answers, and for composed answers
    /// that had to degrade. `None` for pruned queries and clean composed
    /// answers.
    pub degradation: Option<DegradationReport>,
}

/// Knobs for the query processor (used by the ablation experiments).
#[derive(Debug, Clone, Copy)]
pub struct ProcessorConfig {
    /// Use the view DTD to prune unsatisfiable queries (Section 1: "the
    /// query simplifier may employ the source DTDs to create a more
    /// efficient plan").
    pub use_simplifier: bool,
    /// Compose queries with view definitions instead of materializing.
    pub use_composition: bool,
    /// Rewrite queries before evaluation: drop provably-valid conditions
    /// and narrow dead disjuncts (see [`crate::simplifier`]).
    pub use_condition_pruning: bool,
    /// Check per-source queries against the source DTD with the
    /// satisfiability analyzer ([`mix_infer::check_sat`]) and skip the
    /// fetch entirely when the query is provably `Unsat`, synthesizing
    /// the empty contribution the source would have returned.
    pub use_sat_pruning: bool,
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        ProcessorConfig {
            use_simplifier: true,
            use_composition: true,
            use_condition_pruning: true,
            use_sat_pruning: true,
        }
    }
}

/// The MIX mediator.
pub struct Mediator {
    sources: HashMap<String, Arc<dyn Wrapper>>,
    views: HashMap<Name, AnyView>,
    /// Registration order, for deterministic listings.
    view_order: Vec<Name>,
    config: ProcessorConfig,
    policy: ResiliencePolicy,
    /// Per-source health (breaker + snapshot), shared across the parallel
    /// union materialization threads.
    health: HashMap<String, Arc<Mutex<Health>>>,
    /// The serving layer's inference cache: registration, re-inference on
    /// source replacement, and every `answer_many` worker share it.
    cache: Arc<InferenceCache>,
    /// Memoized satisfiability verdicts — consulted before every
    /// fetch-shaped call when [`ProcessorConfig::use_sat_pruning`] is on.
    sat: mix_infer::SatCache,
    /// The observability registry every layer under this mediator records
    /// into (shared with the cache; see [`Mediator::with_registry`]).
    registry: Registry,
    /// Mediator-level instruments (query counts, answer latency).
    instruments: MediatorInstruments,
    /// Per-source instrument bundles, resolved once at registration and
    /// shared with the parallel union-materialization threads.
    source_obs: HashMap<String, Arc<SourceInstruments>>,
}

impl Default for Mediator {
    fn default() -> Self {
        Mediator::new()
    }
}

impl Mediator {
    /// An empty mediator with the default processor configuration.
    pub fn new() -> Mediator {
        Mediator::with_config(ProcessorConfig::default())
    }

    /// An empty mediator with an explicit processor configuration.
    pub fn with_config(config: ProcessorConfig) -> Mediator {
        Mediator::with_registry(config, Registry::new())
    }

    /// An empty mediator recording into an explicit [`Registry`] — pass
    /// [`Registry::noop`] to make every instrument in the serving stack a
    /// no-op branch (the configuration bench X17 measures against). The
    /// registry is shared with the mediator's [`InferenceCache`], so
    /// cache hit/miss counters and `infer` spans land next to the
    /// source/query instruments in one snapshot.
    pub fn with_registry(config: ProcessorConfig, registry: Registry) -> Mediator {
        Mediator::with_cache(config, Arc::new(InferenceCache::with_registry(registry)))
    }

    /// An empty mediator whose [`InferenceCache`] warm-starts from a
    /// persistent [`WarmStore`](mix_infer::WarmStore) and writes behind
    /// to it on every miss — `mixctl --store-dir` builds its mediators
    /// through here so restarts answer warm (experiment X22).
    pub fn with_store(
        config: ProcessorConfig,
        registry: Registry,
        store: Arc<dyn mix_infer::WarmStore>,
    ) -> Mediator {
        let mut mediator = Mediator::with_cache(
            config,
            Arc::new(InferenceCache::with_store(
                registry.clone(),
                Arc::clone(&store),
            )),
        );
        // the satisfiability memo warm-starts and writes behind through
        // the same store, so restarts also skip re-proving Unsat queries
        mediator.sat = mix_infer::SatCache::with_store(registry, store);
        mediator
    }

    /// An empty mediator sharing an existing [`InferenceCache`] — stacked
    /// or fleet-deployed mediators over the same sources can pool their
    /// inference work. The mediator adopts the cache's registry.
    pub fn with_cache(config: ProcessorConfig, cache: Arc<InferenceCache>) -> Mediator {
        let registry = cache.registry().clone();
        Mediator {
            sources: HashMap::new(),
            views: HashMap::new(),
            view_order: Vec::new(),
            config,
            policy: ResiliencePolicy::default(),
            health: HashMap::new(),
            cache,
            sat: mix_infer::SatCache::with_registry(registry.clone()),
            instruments: MediatorInstruments::new(&registry),
            source_obs: HashMap::new(),
            registry,
        }
    }

    /// The inference cache this mediator registers and serves through.
    pub fn inference_cache(&self) -> &Arc<InferenceCache> {
        &self.cache
    }

    /// The satisfiability memo consulted before every fetch-shaped call
    /// (exposed so `mixctl explain --sat` can report per-source verdicts
    /// through the same cache the serving paths use).
    pub fn sat_cache(&self) -> &mix_infer::SatCache {
        &self.sat
    }

    /// The observability registry the whole serving stack records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Serving-layer observability: this mediator's inference-cache
    /// counters next to the process-wide automata memo counters.
    pub fn serving_metrics(&self) -> ServingMetrics {
        mix_infer::metrics::serving_metrics(&self.cache)
    }

    /// Registers a wrapper under a name, with fresh health (breaker
    /// closed, no snapshot).
    pub fn add_source(&mut self, name: &str, wrapper: Arc<dyn Wrapper>) {
        self.sources.insert(name.to_owned(), wrapper);
        self.health
            .insert(name.to_owned(), Arc::new(Mutex::new(Health::new())));
        self.source_obs.insert(
            name.to_owned(),
            Arc::new(SourceInstruments::new(&self.registry, name)),
        );
    }

    /// The resilience policy in force.
    pub fn resilience_policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    /// Replaces the resilience policy (retry budget, breaker thresholds,
    /// stale serving). Existing breaker states and snapshots are kept.
    pub fn set_resilience_policy(&mut self, policy: ResiliencePolicy) {
        self.policy = policy;
    }

    /// The circuit-breaker state of a registered source.
    pub fn breaker_state(&self, source: &str) -> Option<BreakerState> {
        self.health.get(source).map(|h| {
            h.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .state()
        })
    }

    /// Defines a view over a source: runs the View DTD Inference module
    /// and stores the result. Returns the inferred view for inspection.
    pub fn register_view(&mut self, source: &str, q: &Query) -> Result<&View, MediatorError> {
        let wrapper = self
            .sources
            .get(source)
            .ok_or_else(|| MediatorError::UnknownSource(source.to_owned()))?;
        if self.views.contains_key(&q.view_name) {
            return Err(MediatorError::DuplicateView(q.view_name));
        }
        let inferred = self.cache.infer(q, wrapper.dtd())?;
        self.view_order.push(q.view_name);
        self.views.insert(
            q.view_name,
            AnyView::Single(View {
                source: source.to_owned(),
                inferred,
            }),
        );
        match &self.views[&q.view_name] {
            AnyView::Single(v) => Ok(v),
            AnyView::Union(_) => unreachable!("just inserted a single view"),
        }
    }

    /// Defines a union view: one query per source, members concatenated in
    /// the given order. The View DTD Inference module runs per part and
    /// the results are combined (identical-schema sites fold together,
    /// heterogeneous definitions stay apart as specializations).
    pub fn register_union_view(
        &mut self,
        view_name: &str,
        parts: &[(&str, Query)],
    ) -> Result<&UnionView, MediatorError> {
        let view_name = Name::intern(view_name);
        if self.views.contains_key(&view_name) {
            return Err(MediatorError::DuplicateView(view_name));
        }
        let mut pairs = Vec::new();
        for (source, q) in parts {
            let wrapper = self
                .sources
                .get(*source)
                .ok_or_else(|| MediatorError::UnknownSource((*source).to_owned()))?;
            pairs.push((q, wrapper.dtd()));
        }
        let refs: Vec<(&Query, &mix_dtd::Dtd)> = pairs.iter().map(|(q, d)| (*q, *d)).collect();
        let inferred = infer_union_view_dtd_cached(view_name, &refs, &self.cache)?;
        self.view_order.push(view_name);
        self.views.insert(
            view_name,
            AnyView::Union(UnionView {
                sources: parts.iter().map(|(s, _)| (*s).to_owned()).collect(),
                inferred,
            }),
        );
        match &self.views[&view_name] {
            AnyView::Union(v) => Ok(v),
            AnyView::Single(_) => unreachable!("just inserted a union view"),
        }
    }

    /// The registered single-source view, if any.
    pub fn view(&self, name: Name) -> Option<&View> {
        match self.views.get(&name) {
            Some(AnyView::Single(v)) => Some(v),
            _ => None,
        }
    }

    /// The registered union view, if any.
    pub fn union_view(&self, name: Name) -> Option<&UnionView> {
        match self.views.get(&name) {
            Some(AnyView::Union(v)) => Some(v),
            _ => None,
        }
    }

    /// The inferred plain DTD of any registered view.
    pub fn view_dtd(&self, name: Name) -> Option<&mix_dtd::Dtd> {
        self.views.get(&name).map(AnyView::dtd)
    }

    /// Registered view names in registration order.
    pub fn view_names(&self) -> &[Name] {
        &self.view_order
    }

    /// Replaces a source's wrapper — the paper's "dynamic and unknown
    /// information" scenario: a site changed its schema. Every view over
    /// the source is re-inferred; the names of views whose *view DTD*
    /// changed (as a document set) are returned, so higher layers (or
    /// stacked mediators) know to re-infer in turn.
    pub fn replace_source(
        &mut self,
        source: &str,
        wrapper: Arc<dyn Wrapper>,
    ) -> Result<Vec<Name>, MediatorError> {
        if !self.sources.contains_key(source) {
            return Err(MediatorError::UnknownSource(source.to_owned()));
        }
        // the cache's invalidation rule: a changed source DTD orphans every
        // entry fingerprinted against the old DTD (entries for other
        // sources — other fingerprints — are untouched). Skipped when the
        // new wrapper exports the identical DTD, in which case the cached
        // inferences are still exactly right.
        let old_dtd = self.sources[source].dtd().clone();
        if mix_infer::fingerprint_dtd(&old_dtd) != mix_infer::fingerprint_dtd(wrapper.dtd()) {
            self.cache.invalidate_dtd(&old_dtd);
        }
        self.sources.insert(source.to_owned(), wrapper);
        // a replaced source is a new deployment: breaker closed, failure
        // history and stale snapshot dropped
        self.health
            .insert(source.to_owned(), Arc::new(Mutex::new(Health::new())));
        let mut changed = Vec::new();
        let names: Vec<Name> = self.view_order.clone();
        for vname in names {
            let uses_source = match &self.views[&vname] {
                AnyView::Single(v) => v.source == source,
                AnyView::Union(v) => v.sources.iter().any(|s| s == source),
            };
            if !uses_source {
                continue;
            }
            let new_view = match &self.views[&vname] {
                AnyView::Single(v) => {
                    let w = &self.sources[&v.source];
                    let inferred = self.cache.infer(&v.inferred.query, w.dtd())?;
                    AnyView::Single(View {
                        source: v.source.clone(),
                        inferred,
                    })
                }
                AnyView::Union(v) => {
                    let pairs: Vec<(&Query, &mix_dtd::Dtd)> = v
                        .sources
                        .iter()
                        .zip(&v.inferred.queries)
                        .map(|(s, q)| (q, self.sources[s].dtd()))
                        .collect();
                    let inferred = infer_union_view_dtd_cached(vname, &pairs, &self.cache)?;
                    AnyView::Union(UnionView {
                        sources: v.sources.clone(),
                        inferred,
                    })
                }
            };
            let old = &self.views[&vname];
            let dtd_changed = !(old.plain_dtd_is_sound()
                && new_view.plain_dtd_is_sound()
                && mix_dtd::same_documents(old.dtd(), new_view.dtd()));
            if dtd_changed {
                changed.push(vname);
            }
            self.views.insert(vname, new_view);
        }
        Ok(changed)
    }

    /// Materializes a view by running its definition at the source(s).
    /// Equivalent to [`Mediator::materialize_with_report`] without the
    /// degradation report.
    pub fn materialize(&self, name: Name) -> Result<Document, MediatorError> {
        self.materialize_with_report(name).map(|(doc, _)| doc)
    }

    /// Materializes a view through the resilience layer and reports how
    /// every member source fared.
    ///
    /// A single-source view fails ([`MediatorError::Source`]) only when
    /// its one source fails with no snapshot to degrade to. A union view
    /// degrades gracefully: as long as at least one member is served
    /// (fresh or stale) the partial answer is returned, with the
    /// [`DegradationReport`] naming each failed source, its last error,
    /// and its breaker state; only when *every* member fails does it
    /// error ([`MediatorError::AllSourcesFailed`]).
    pub fn materialize_with_report(
        &self,
        name: Name,
    ) -> Result<(Document, DegradationReport), MediatorError> {
        // direct callers (federate, ViewWrapper) get their own trace;
        // inside `query()` the request's trace is already installed
        let _trace_scope = (mix_obs::current_trace() == 0).then(|| self.registry.begin_trace());
        let _span = self.registry.span("materialize");
        match self
            .views
            .get(&name)
            .ok_or(MediatorError::UnknownView(name))?
        {
            AnyView::Single(view) => {
                let (doc, outcome) = self.call_source(&view.source, &view.inferred.query)?;
                match doc {
                    Some(document) => {
                        let covers = mix_dtd::satisfies(&view.inferred.dtd, &document);
                        let report = DegradationReport {
                            view: name.to_string(),
                            outcomes: vec![outcome],
                            union_dtd_covers_survivors: covers,
                        };
                        self.note_degraded(&report);
                        Ok((document, report))
                    }
                    None => Err(MediatorError::Source {
                        source: view.source.clone(),
                        error: outcome
                            .error
                            .unwrap_or_else(|| SourceError::Unavailable("unknown".into())),
                    }),
                }
            }
            AnyView::Union(view) => {
                let answers = self.union_members(view)?;
                let _merge_span = self.registry.span("union_merge");
                let mut members = Vec::new();
                let mut outcomes = Vec::new();
                let mut served = 0usize;
                for (doc, outcome) in answers {
                    if let Some(part) = doc {
                        served += 1;
                        if let Content::Elements(kids) = part.root.content {
                            members.extend(kids);
                        }
                    }
                    outcomes.push(outcome);
                }
                if served == 0 {
                    return Err(MediatorError::AllSourcesFailed(name));
                }
                let document = Document::new(Element {
                    name,
                    id: ElemId::fresh(),
                    content: Content::Elements(members),
                });
                // Does the inferred union DTD still soundly describe the
                // partial answer? (A failed member whose contribution the
                // root model *requires* breaks coverage.) Kind-conflicted
                // unions have no sound plain DTD, so the check runs on the
                // specialized DTD instead.
                let covers = if view.inferred.kind_conflicts.is_empty() {
                    mix_dtd::satisfies(&view.inferred.dtd, &document)
                } else {
                    mix_dtd::sdtd_satisfies(&view.inferred.sdtd, &document)
                };
                let report = DegradationReport {
                    view: name.to_string(),
                    outcomes,
                    union_dtd_covers_survivors: covers,
                };
                self.note_degraded(&report);
                Ok((document, report))
            }
        }
    }

    /// Materializes the members of a registered *union* view through the
    /// resilience layer without assembling them: one
    /// `(Option<Document>, SourceOutcome)` per member, in union
    /// (registration) order, with `None` marking members that failed with
    /// no snapshot to degrade to.
    ///
    /// Unlike [`Mediator::materialize_with_report`], an all-members-failed
    /// call is **not** an error here — federation callers (see
    /// [`crate::topology`]) reassemble the members of several per-shard
    /// mediators into one global answer and make the all-failed decision
    /// at that level.
    pub fn materialize_union_members(
        &self,
        name: Name,
    ) -> Result<Vec<(Option<Document>, SourceOutcome)>, MediatorError> {
        let _trace_scope = (mix_obs::current_trace() == 0).then(|| self.registry.begin_trace());
        let _span = self.registry.span("materialize");
        match self
            .views
            .get(&name)
            .ok_or(MediatorError::UnknownView(name))?
        {
            AnyView::Union(view) => self.union_members(view),
            AnyView::Single(_) => Err(MediatorError::UnknownView(name)),
        }
    }

    /// When sat pruning is enabled and **every** member of the registered
    /// union view `name` is provably `Unsat`, synthesizes the whole
    /// member vector — empty contributions with clean outcomes, in union
    /// order — without contacting a single source. Returns `None` (and
    /// counts nothing) when any member might contribute: a mixed shard
    /// is served by the normal path, which skips and counts its `Unsat`
    /// members one by one, so no member is ever counted twice. The
    /// federation tier (see [`crate::topology::Federation`]) uses this to
    /// skip whole shards before spawning their worker threads.
    pub fn prune_union_members(
        &self,
        name: Name,
    ) -> Option<Vec<(Option<Document>, SourceOutcome)>> {
        if !self.config.use_sat_pruning {
            return None;
        }
        let view = match self.views.get(&name)? {
            AnyView::Union(v) => v,
            AnyView::Single(_) => return None,
        };
        // verdicts first, side effects after: only an all-Unsat shard
        // counts (and synthesizes) anything here
        for (source, q) in view.sources.iter().zip(&view.inferred.queries) {
            let wrapper = self.sources.get(source)?;
            if !self.sat.verdict(q, wrapper.dtd()).is_unsat() {
                return None;
            }
        }
        let members: Vec<(Option<Document>, SourceOutcome)> = view
            .sources
            .iter()
            .zip(&view.inferred.queries)
            .map(|(source, q)| {
                self.instruments.sat_pruned.inc();
                let breaker = self.health[source]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .state();
                (
                    Some(empty_answer(q.view_name)),
                    SourceOutcome {
                        source: source.clone(),
                        status: FetchStatus::Fresh,
                        retries: 0,
                        backoff_ms: 0,
                        error: None,
                        breaker,
                        short_circuited: false,
                    },
                )
            })
            .collect();
        (!members.is_empty()).then_some(members)
    }

    /// One resilient call per member of a union view, in parallel, in
    /// union order.
    fn union_members(
        &self,
        view: &UnionView,
    ) -> Result<Vec<(Option<Document>, SourceOutcome)>, MediatorError> {
        // resolve every wrapper (and its health record) up front so
        // configuration errors surface before any work is spawned
        type Part<'a> = (
            &'a str,
            Arc<dyn Wrapper>,
            Arc<Mutex<Health>>,
            &'a Query,
            Arc<SourceInstruments>,
        );
        // Members the analyzer proves `Unsat` are answered here with the
        // synthesized empty contribution (`slots[i]` pre-filled); only
        // the rest are spawned. Slot order stays the registration order.
        let mut slots: Vec<Option<(Option<Document>, SourceOutcome)>> = Vec::new();
        let mut live: Vec<(usize, Part<'_>)> = Vec::new();
        for (source, q) in view.sources.iter().zip(&view.inferred.queries) {
            let wrapper = self
                .sources
                .get(source)
                .ok_or_else(|| MediatorError::UnknownSource(source.clone()))?;
            let health = Arc::clone(&self.health[source]);
            let obs = Arc::clone(&self.source_obs[source]);
            if let Some(skipped) = self.sat_skip(source, wrapper.as_ref(), &health, q) {
                slots.push(Some(skipped));
            } else {
                live.push((
                    slots.len(),
                    (source.as_str(), Arc::clone(wrapper), health, q, obs),
                ));
                slots.push(None);
            }
        }
        // query the surviving sources in parallel (wrappers are Send +
        // Sync). The caller's trace id is propagated into each worker so
        // every `fetch/<source>` span joins the request's trace.
        let policy = &self.policy;
        let trace = mix_obs::current_trace();
        let answered: Vec<(usize, (Option<Document>, SourceOutcome))> = if live.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = live
                    .iter()
                    .map(|(i, (s, w, h, q, obs))| {
                        let i = *i;
                        scope.spawn(move || {
                            let _t = mix_obs::set_current_trace(trace);
                            (i, resilient_answer(s, w.as_ref(), q, policy, h, obs))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("source query panicked"))
                    .collect()
            })
        } else {
            live.iter()
                .map(|(i, (s, w, h, q, obs))| {
                    (*i, resilient_answer(s, w.as_ref(), q, policy, h, obs))
                })
                .collect()
        };
        for (i, answer) in answered {
            slots[i] = Some(answer);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every member slot was filled"))
            .collect())
    }

    /// Records a degraded (non-clean) report as an obs event, at the
    /// moment the partial answer is assembled. The per-source stale/fail
    /// events have already fired inside the resilience layer; this one
    /// summarizes the view-level outcome.
    fn note_degraded(&self, report: &DegradationReport) {
        if report.is_clean() {
            return;
        }
        let served = report
            .outcomes
            .iter()
            .filter(|o| o.status != FetchStatus::Failed)
            .count();
        self.registry.event(
            "degraded-answer",
            format!(
                "view '{}': {}/{} sources served, union DTD covers survivors: {}",
                report.view,
                served,
                report.outcomes.len(),
                if report.union_dtd_covers_survivors {
                    "yes"
                } else {
                    "no"
                }
            ),
        );
    }

    /// Consults the satisfiability analyzer before a fetch-shaped call:
    /// when pruning is enabled and the per-source query is provably
    /// `Unsat` against the source DTD, returns the empty contribution
    /// (and a clean outcome) the source would have produced — without
    /// contacting it. `Sat` and `Unknown` return `None`: the fetch
    /// proceeds exactly as before, which is what keeps pruning sound.
    fn sat_skip(
        &self,
        source: &str,
        wrapper: &dyn Wrapper,
        health: &Arc<Mutex<Health>>,
        q: &Query,
    ) -> Option<(Option<Document>, SourceOutcome)> {
        if !self.config.use_sat_pruning || !self.sat.verdict(q, wrapper.dtd()).is_unsat() {
            return None;
        }
        self.instruments.sat_pruned.inc();
        let breaker = health
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .state();
        Some((
            Some(empty_answer(q.view_name)),
            SourceOutcome {
                source: source.to_owned(),
                status: FetchStatus::Fresh,
                retries: 0,
                backoff_ms: 0,
                error: None,
                breaker,
                short_circuited: false,
            },
        ))
    }

    /// One resilient call to a registered source.
    fn call_source(
        &self,
        source: &str,
        q: &Query,
    ) -> Result<(Option<Document>, SourceOutcome), MediatorError> {
        let wrapper = self
            .sources
            .get(source)
            .ok_or_else(|| MediatorError::UnknownSource(source.to_owned()))?;
        let health = &self.health[source];
        if let Some(skipped) = self.sat_skip(source, wrapper.as_ref(), health, q) {
            return Ok(skipped);
        }
        Ok(resilient_answer(
            source,
            wrapper.as_ref(),
            q,
            &self.policy,
            health,
            &self.source_obs[source],
        ))
    }

    /// Answers a user query whose condition is rooted at a view name,
    /// using (per configuration) the DTD-based simplifier and view–query
    /// composition.
    ///
    /// Each call is one trace: a `query` span covering the whole
    /// pipeline, with `normalize`, cache, `fetch/<source>`, and
    /// `union_merge` spans nested under the same trace id — plus the
    /// `mediator_answer_latency_ns` histogram and per-path counters.
    pub fn query(&self, q: &Query) -> Result<Answer, MediatorError> {
        let (_trace, _scope) = self.registry.begin_trace();
        let _timer = self.instruments.latency.start();
        let _span = self.registry.span("query");
        self.instruments.queries.inc();
        let result = self.query_inner(q);
        match &result {
            Ok(a) => match a.path {
                AnswerPath::PrunedUnsatisfiable => self.instruments.pruned.inc(),
                AnswerPath::Composed => self.instruments.composed.inc(),
                AnswerPath::Materialized => self.instruments.materialized.inc(),
            },
            Err(_) => self.instruments.errors.inc(),
        }
        result
    }

    fn query_inner(&self, q: &Query) -> Result<Answer, MediatorError> {
        // find the view the query addresses
        let view_name = q
            .root
            .test
            .names()
            .iter()
            .copied()
            .find(|n| self.views.contains_key(n))
            .ok_or_else(|| {
                MediatorError::UnknownView(
                    q.root.test.names().first().copied().unwrap_or(q.view_name),
                )
            })?;
        let any = &self.views[&view_name];
        let view_dtd = any.dtd();
        let dtd_sound = any.plain_dtd_is_sound();
        // 1. DTD-based simplification: prune certainly-empty queries.
        if self.config.use_simplifier && dtd_sound {
            let nq = {
                let _s = self.registry.span("normalize");
                normalize(q, view_dtd)?
            };
            if classify_query(&nq, view_dtd) == Verdict::Unsatisfiable {
                return Ok(Answer {
                    document: empty_answer(q.view_name),
                    path: AnswerPath::PrunedUnsatisfiable,
                    degradation: None,
                });
            }
        }
        // 2. composition with the view definition (single-source views).
        //    The composed query ships to the source through the resilience
        //    layer, so retries, the breaker, and the stale snapshot apply
        //    here exactly as on the materialization path.
        if self.config.use_composition {
            if let AnyView::Single(view) = any {
                if let Some(composed) = compose(&view.inferred.query, q) {
                    let (doc, outcome) = self.call_source(&view.source, &composed)?;
                    return match doc {
                        Some(document) => {
                            let degradation = if outcome.status == FetchStatus::Fresh {
                                None
                            } else {
                                let report = DegradationReport {
                                    view: view_name.to_string(),
                                    outcomes: vec![outcome],
                                    union_dtd_covers_survivors: true,
                                };
                                self.note_degraded(&report);
                                Some(report)
                            };
                            Ok(Answer {
                                document,
                                path: AnswerPath::Composed,
                                degradation,
                            })
                        }
                        None => Err(MediatorError::Source {
                            source: view.source.clone(),
                            error: outcome
                                .error
                                .unwrap_or_else(|| SourceError::Unavailable("unknown".into())),
                        }),
                    };
                }
            }
        }
        // 3. fall back to materialize-then-evaluate (with DTD-guided
        //    condition pruning when configured).
        let (materialized, report) = self.materialize_with_report(view_name)?;
        let mut nq = {
            let _s = self.registry.span("normalize");
            normalize(q, view_dtd)?
        };
        if self.config.use_condition_pruning && dtd_sound {
            let (pruned, _) = crate::simplifier::simplify_query(&nq, view_dtd);
            nq = pruned;
        }
        Ok(Answer {
            document: evaluate(&nq, &materialized),
            path: AnswerPath::Materialized,
            degradation: Some(report),
        })
    }

    /// Answers a batch of queries, one result per query **in input
    /// order**, using one worker per available unit of parallelism (see
    /// [`Mediator::answer_many_with_threads`]). Every worker runs the
    /// same pipeline as [`Mediator::query`] against the shared inference
    /// cache, and per-query `DegradationReport`s carry exactly what the
    /// sequential path would report.
    pub fn answer_many(&self, queries: &[Query]) -> Vec<Result<Answer, MediatorError>> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.answer_many_with_threads(queries, threads)
    }

    /// [`Mediator::answer_many`] with an explicit worker count. `threads`
    /// of 0 or 1 answers sequentially on the calling thread; results are
    /// returned in input order regardless of completion order. Workers
    /// are scoped (`std::thread::scope`), so no runtime or thread-pool
    /// dependency is involved and borrows of `self` suffice.
    pub fn answer_many_with_threads(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> Vec<Result<Answer, MediatorError>> {
        let workers = threads.clamp(1, queries.len().max(1));
        if workers <= 1 || queries.len() <= 1 {
            return queries.iter().map(|q| self.query(q)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Answer, MediatorError>>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let answer = self.query(&queries[i]);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(answer);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every index below queries.len() was claimed by a worker")
            })
            .collect()
    }
}

fn empty_answer(name: Name) -> Document {
    Document::new(Element {
        name,
        id: ElemId::fresh(),
        content: Content::Elements(vec![]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::XmlSource;
    use mix_dtd::paper::d1_department;
    use mix_relang::symbol::name;
    use mix_xmas::parse_query;
    use mix_xml::parse_document;

    fn dept_doc() -> Document {
        parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>a</title><author>x</author><journal/></publication>\
                 <publication><title>b</title><author>x</author><journal/></publication>\
                 <teaches/></professor>\
               <professor><firstName>V</firstName><lastName>W</lastName>\
                 <publication><title>c</title><author>x</author><conference/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>d</title><author>x</author><journal/></publication>\
               </gradStudent></department>",
        )
        .unwrap()
    }

    fn mediator() -> Mediator {
        let mut m = Mediator::new();
        let src = XmlSource::new(d1_department(), dept_doc()).unwrap();
        m.add_source("cs-dept", Arc::new(src));
        let v = parse_query(
            "withJournals = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> \
                 <publication><journal/></publication> \
               </> </>",
        )
        .unwrap();
        m.register_view("cs-dept", &v).unwrap();
        m
    }

    #[test]
    fn register_infers_view_dtd() {
        let m = mediator();
        let v = m.view(name("withJournals")).unwrap();
        assert_eq!(v.inferred.verdict, Verdict::Satisfiable);
        assert!(v.inferred.dtd.types.contains(name("withJournals")));
    }

    #[test]
    fn duplicate_view_rejected() {
        let mut m = mediator();
        let v =
            parse_query("withJournals = SELECT X WHERE <department> X:<professor/> </>").unwrap();
        assert!(matches!(
            m.register_view("cs-dept", &v),
            Err(MediatorError::DuplicateView(_))
        ));
    }

    #[test]
    fn materialize_runs_the_view() {
        let m = mediator();
        let doc = m.materialize(name("withJournals")).unwrap();
        // prof Y (journal), gradStudent P (journal); prof V has only a
        // conference publication
        assert_eq!(doc.root.children().len(), 2);
    }

    #[test]
    fn query_composed_path() {
        let m = mediator();
        // professors in the view (drops the gradStudent)
        let q = parse_query("ans = SELECT X WHERE <withJournals> X:<professor/> </withJournals>")
            .unwrap();
        let a = m.query(&q).unwrap();
        assert_eq!(a.path, AnswerPath::Composed);
        assert_eq!(a.document.root.children().len(), 1);
        assert_eq!(
            a.document.root.children()[0].children()[0].pcdata(),
            Some("Y")
        );
    }

    #[test]
    fn query_pruned_by_simplifier() {
        let m = mediator();
        // view DTD knows a withJournals member has no 'course' children
        let q = parse_query(
            "ans = SELECT C WHERE <withJournals> <professor> C:<course/> </> </withJournals>",
        )
        .unwrap();
        let a = m.query(&q).unwrap();
        assert_eq!(a.path, AnswerPath::PrunedUnsatisfiable);
        assert_eq!(a.document.root.children().len(), 0);
    }

    #[test]
    fn composed_equals_materialized() {
        let with = mediator();
        let without = {
            let mut m = Mediator::with_config(ProcessorConfig {
                use_simplifier: false,
                use_composition: false,
                use_condition_pruning: false,
                use_sat_pruning: false,
            });
            let src = XmlSource::new(d1_department(), dept_doc()).unwrap();
            m.add_source("cs-dept", Arc::new(src));
            let v = parse_query(
                "withJournals = SELECT P WHERE <department> <name>CS</name> \
                   P:<professor | gradStudent> \
                     <publication><journal/></publication> \
                   </> </>",
            )
            .unwrap();
            m.register_view("cs-dept", &v).unwrap();
            m
        };
        for src in [
            "ans = SELECT P WHERE <withJournals> P:<professor/> </withJournals>",
            "ans = SELECT T WHERE <withJournals> <professor | gradStudent> \
               <publication> T:<title/> </publication> </> </withJournals>",
            "ans = SELECT P WHERE <withJournals> P:<gradStudent> <publication/> </> </>",
        ] {
            let q = parse_query(src).unwrap();
            let a = with.query(&q).unwrap();
            let b = without.query(&q).unwrap();
            assert_eq!(b.path, AnswerPath::Materialized);
            // compare structures (IDs are fresh on both paths)
            assert!(
                mix_xml::same_structural_class(&a.document.root, &b.document.root),
                "composed vs materialized mismatch for {src}:\n{:?}\nvs\n{:?}",
                a.document,
                b.document
            );
        }
    }

    #[test]
    fn unknown_view_error() {
        let m = mediator();
        let q = parse_query("ans = SELECT X WHERE <nope> X:<a/> </nope>").unwrap();
        assert!(matches!(m.query(&q), Err(MediatorError::UnknownView(_))));
    }

    #[test]
    fn unknown_source_error() {
        let mut m = Mediator::new();
        let v = parse_query("v = SELECT X WHERE X:<a/>").unwrap();
        assert!(matches!(
            m.register_view("ghost", &v),
            Err(MediatorError::UnknownSource(_))
        ));
    }
}
