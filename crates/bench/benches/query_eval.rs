//! X7 — query evaluation scaling: (Q2)/(Q3) over growing department
//! documents, plus the XML parser on the same inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mix_bench::{d1, department_of_size, q2, q3};
use mix_xmas::{evaluate, normalize};
use mix_xml::{parse_document, write_document, WriteConfig};
use std::time::Duration;

fn bench_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_eval");
    g.sample_size(25).measurement_time(Duration::from_secs(2));
    let dtd = d1();
    let nq2 = normalize(&q2(), &dtd).expect("normalizes");
    let nq3 = normalize(&q3(), &dtd).expect("normalizes");
    for professors in [4usize, 16, 64, 256] {
        let doc = department_of_size(professors);
        g.throughput(Throughput::Elements(doc.size() as u64));
        g.bench_with_input(BenchmarkId::new("q2", doc.size()), &doc, |b, doc| {
            b.iter(|| evaluate(&nq2, doc))
        });
        g.bench_with_input(BenchmarkId::new("q3", doc.size()), &doc, |b, doc| {
            b.iter(|| evaluate(&nq3, doc))
        });
        let text = write_document(&doc, WriteConfig::default());
        g.bench_with_input(
            BenchmarkId::new("xml_parse", doc.size()),
            &text,
            |b, text| b.iter(|| parse_document(text).expect("parses")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
