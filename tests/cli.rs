//! End-to-end tests of the `mixctl` binary (deliverable b's tool face).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mixctl-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write fixture");
    path
}

fn mixctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mixctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

const D1: &str = "{<department : name, professor+, gradStudent+, course*>\
  <professor : firstName, lastName, publication+, teaches>\
  <gradStudent : firstName, lastName, publication+>\
  <publication : title, author+, (journal | conference)>\
  <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY> <course : EMPTY>}";

const Q2: &str = "withJournals = SELECT P WHERE <department> <name>CS</name> \
  P:<professor | gradStudent> \
    <publication id=Pub1><journal/></publication> \
    <publication id=Pub2><journal/></publication> \
  </> </> AND Pub1 != Pub2";

const DOC: &str = "<department><name>CS</name>\
  <professor><firstName>Y</firstName><lastName>P</lastName>\
    <publication><title>a</title><author>x</author><journal/></publication>\
    <publication><title>b</title><author>x</author><journal/></publication>\
    <teaches/></professor>\
  <gradStudent><firstName>G</firstName><lastName>S</lastName>\
    <publication><title>c</title><author>x</author><conference/></publication>\
  </gradStudent></department>";

#[test]
fn infer_prints_view_dtds() {
    let dtd = fixture("d1.dtd", D1);
    let q = fixture("q2.xmas", Q2);
    let out = mixctl(&[
        "infer",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict: Satisfiable"), "{text}");
    assert!(
        text.contains("publication^1 : title, author+, journal"),
        "{text}"
    );
    assert!(text.contains("non-tightness introduced by merging on: publication"));
}

#[test]
fn classify_and_eval() {
    let dtd = fixture("d1b.dtd", D1);
    let q = fixture("q2b.xmas", Q2);
    let doc = fixture("dept.xml", DOC);
    let out = mixctl(&[
        "classify",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "Satisfiable");

    let out = mixctl(&[
        "eval",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("<withJournals>"));
    assert!(text.contains("<professor>"));
    assert!(!text.contains("<gradStudent>")); // only one journal pub
}

#[test]
fn validate_both_ways() {
    let dtd = fixture("d1c.dtd", D1);
    let good = fixture("good.xml", DOC);
    let bad = fixture("bad.xml", "<department><name>CS</name></department>");
    let out = mixctl(&[
        "validate",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        good.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = mixctl(&[
        "validate",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        bad.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("invalid"));
}

#[test]
fn structure_and_tightness() {
    let dtd = fixture("d1d.dtd", D1);
    let q = fixture("q2d.xmas", Q2);
    let out = mixctl(&["structure", "--dtd", dtd.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("professor"));

    let out = mixctl(&[
        "tightness",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
        "--max-size",
        "12",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("naive"), "{text}");
}

#[test]
fn xml_dtd_syntax_is_autodetected() {
    let dtd = fixture(
        "d1.xmldtd",
        "<!DOCTYPE department [\
           <!ELEMENT department (name, professor+, gradStudent+, course*)>\
           <!ELEMENT professor (firstName, lastName, publication+, teaches)>\
           <!ELEMENT gradStudent (firstName, lastName, publication+)>\
           <!ELEMENT publication (title, author+, (journal | conference))>\
           <!ELEMENT teaches EMPTY> <!ELEMENT journal EMPTY>\
           <!ELEMENT conference EMPTY> <!ELEMENT course EMPTY>\
         ]>",
    );
    let out = mixctl(&["structure", "--dtd", dtd.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("department"));
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!mixctl(&[]).status.success());
    assert!(!mixctl(&["nonsense"]).status.success());
    assert!(!mixctl(&["infer"]).status.success());
    assert!(mixctl(&["help"]).status.success());
}

#[test]
fn union_subcommand() {
    let dtd = fixture("du.dtd", D1);
    let q = fixture(
        "qu.xmas",
        "publist = SELECT P WHERE <department> <name>CS</name> \
           <professor | gradStudent> P:<publication><journal/></publication> </> </>",
    );
    let part = format!("{}:{}", dtd.to_str().unwrap(), q.to_str().unwrap());
    let out = mixctl(&[
        "union", "--name", "allPubs", "--part", &part, "--part", &part,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("allPubs"), "{text}");
    assert!(text.contains("publication"), "{text}");
    // no parts → usage error
    assert!(!mixctl(&["union"]).status.success());
}
