//! The client side: a blocking connection with handshake, and a
//! multiplexer over a small fixed set of them.
//!
//! [`Connection`] is one TCP stream that has completed the `Hello`
//! exchange and runs strictly one exchange at a time — the simple tool
//! for control-plane chores like a `Stats` probe. [`Pool`] is the data
//! plane: up to `pool_size` connections, each carrying up to
//! `in_flight_per_conn` concurrent requests distinguished by frame id. A
//! dedicated reader thread per connection routes every `Answer` to the
//! slot that sent the matching `Query`, so callers park on a per-slot
//! condvar instead of holding a socket hostage, and replies may complete
//! in any order the server finishes them. A connection whose transport
//! faults (or whose reply misses its deadline) is *discarded*, failing
//! every request in flight on it — one bad socket cannot poison the
//! next. Retrying is deliberately **not** done here: the mediator's
//! resilience layer owns the retry budget, and a transport that silently
//! retried underneath it would double-count attempts against circuit
//! breakers.

use crate::error::NetError;
use crate::frame::{read_first_frame, read_frame, CONNECTION_FRAME_ID};
use crate::msg::Msg;
use mix_obs::{Counter, Histogram, Registry};
use std::collections::VecDeque;
use std::io::{BufWriter, Write as _};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The frame id low byte addresses the slot, so a connection can carry at
/// most 256 concurrent requests.
const MAX_SLOTS: usize = 256;

/// Frame id of the synchronous `Hello` exchange performed before the
/// reader thread exists. Slot-carried ids are always ≥ 256 (a nonzero
/// sequence number occupies the high bytes), so 1 can never collide.
const HANDSHAKE_ID: u32 = 1;

/// Client knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Per-exchange deadline: connect/handshake/write at the socket
    /// level, and how long a caller waits for its routed reply.
    pub io_timeout: Duration,
    /// Connections the multiplexer may hold open at once.
    pub pool_size: usize,
    /// Concurrent requests each connection may carry (clamped to
    /// 1..=256); requests beyond `pool_size * in_flight_per_conn` wait
    /// for a slot.
    pub in_flight_per_conn: usize,
    /// Upper bound on the randomized delay inserted before *re*-dialing
    /// after a failed exchange or dial. Zero (the default) disables
    /// jitter; the first dial and dials after successes are never
    /// delayed. Spreads the reconnect storm when many clients lose the
    /// same replica at once and it comes back.
    pub reconnect_jitter: Duration,
    /// Seed for the deterministic jitter sequence (see
    /// [`reconnect_jitter`]); give each client its own seed.
    pub reconnect_jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            pool_size: 4,
            in_flight_per_conn: 32,
            reconnect_jitter: Duration::ZERO,
            reconnect_jitter_seed: 0,
        }
    }
}

/// The deterministic reconnect jitter: maps `(seed, attempt)` uniformly
/// into `0..=max` via a splitmix64 round. Pure, so tests can predict the
/// exact delay a client will insert before its `attempt`-th consecutive
/// redial (attempts count from 1; a zero `max` always yields zero).
pub fn reconnect_jitter(seed: u64, attempt: u64, max: Duration) -> Duration {
    let max_ms = max.as_millis() as u64;
    if max_ms == 0 {
        return Duration::ZERO;
    }
    let mut z = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    Duration::from_millis(z % (max_ms + 1))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One handshaken connection to a remote wrapper, strictly one exchange
/// in flight at a time.
#[derive(Debug)]
pub struct Connection {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    next_id: u32,
    sniffed: bool,
}

impl Connection {
    /// Connects, applies timeouts, and performs the `Hello` handshake.
    pub fn connect(addr: &str, config: &ClientConfig) -> Result<Connection, NetError> {
        let stream = dial_stream(addr, config)?;
        let reader = stream.try_clone()?;
        let mut conn = Connection {
            reader,
            writer: BufWriter::new(stream),
            next_id: HANDSHAKE_ID,
            sniffed: false,
        };
        match conn.request(Msg::Hello)? {
            Msg::Hello => Ok(conn),
            other => Err(NetError::protocol(format!(
                "handshake expected Hello back, got {:?}",
                other.msg_type()
            ))),
        }
    }

    /// One request/response exchange. A server-side fault ([`Msg::Err`])
    /// comes back as [`NetError::Remote`], an admission-control rejection
    /// ([`Msg::Throttled`]) as [`NetError::Throttled`]; the connection
    /// itself is still usable afterwards in both cases.
    pub fn request(&mut self, msg: Msg) -> Result<Msg, NetError> {
        let id = self.next_id;
        self.next_id = self.next_id.checked_add(1).unwrap_or(HANDSHAKE_ID);
        msg.write_to(&mut self.writer, id)?;
        // the first reply of a connection is version-sniffed so a v1 peer
        // surfaces as VersionMismatch, not as a truncated read
        let (ty, rid, payload) = if self.sniffed {
            read_frame(&mut self.reader)?
        } else {
            self.sniffed = true;
            read_first_frame(&mut self.reader)?
        };
        match Msg::decode(ty, payload)? {
            // faults may arrive at connection scope (frame id 0), so they
            // are accepted regardless of id
            Msg::Err { kind, msg } => Err(NetError::Remote { kind, msg }),
            Msg::Throttled { retry_after_ms } => Err(NetError::Throttled { retry_after_ms }),
            reply if rid == id => Ok(reply),
            reply => Err(NetError::protocol(format!(
                "reply {:?} carried frame id {rid}, expected {id}",
                reply.msg_type()
            ))),
        }
    }
}

/// Resolves, connects with a deadline, and applies socket options;
/// resolution errors surface as Io like connect ones.
fn dial_stream(addr: &str, config: &ClientConfig) -> Result<TcpStream, NetError> {
    let sock_addr = std::net::ToSocketAddrs::to_socket_addrs(addr)?
        .next()
        .ok_or_else(|| {
            NetError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("'{addr}' resolves to no address"),
            ))
        })?;
    let stream = TcpStream::connect_timeout(&sock_addr, config.connect_timeout)?;
    stream.set_read_timeout(Some(config.io_timeout))?;
    stream.set_write_timeout(Some(config.io_timeout))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// A clonable rendering of the error that killed a link, so every request
/// in flight on it can receive its own copy.
#[derive(Debug, Clone)]
enum LinkFault {
    Io(std::io::ErrorKind, String),
    Protocol(String),
    Version { theirs: u8, ours: u8 },
    Remote { kind: String, msg: String },
}

impl LinkFault {
    fn of(e: &NetError) -> LinkFault {
        match e {
            NetError::Io(err) => LinkFault::Io(err.kind(), err.to_string()),
            NetError::Protocol(s) => LinkFault::Protocol(s.clone()),
            NetError::VersionMismatch { theirs, ours } => LinkFault::Version {
                theirs: *theirs,
                ours: *ours,
            },
            NetError::Remote { kind, msg } => LinkFault::Remote {
                kind: kind.clone(),
                msg: msg.clone(),
            },
            NetError::Throttled { retry_after_ms } => LinkFault::Io(
                std::io::ErrorKind::Other,
                format!("throttled for {retry_after_ms}ms"),
            ),
        }
    }

    fn to_net(&self) -> NetError {
        match self {
            LinkFault::Io(kind, msg) => NetError::Io(std::io::Error::new(*kind, msg.clone())),
            LinkFault::Protocol(s) => NetError::Protocol(s.clone()),
            LinkFault::Version { theirs, ours } => NetError::VersionMismatch {
                theirs: *theirs,
                ours: *ours,
            },
            LinkFault::Remote { kind, msg } => NetError::Remote {
                kind: kind.clone(),
                msg: msg.clone(),
            },
        }
    }
}

/// What one in-flight slot is doing.
#[derive(Debug)]
enum SlotState {
    /// On the free list (or about to be reclaimed onto it).
    Empty,
    /// A request with this frame id has been written; its caller is
    /// parked on the condvar.
    Waiting { id: u32 },
    /// The reply (or the link's fault) arrived; the caller will collect
    /// it and free the slot.
    Done {
        id: u32,
        reply: Result<Msg, LinkFault>,
    },
    /// The caller timed out and left; if the reply straggles in anyway,
    /// the reader reclaims the slot.
    Abandoned { id: u32 },
}

#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
    /// Per-slot sequence number folded into the frame id, so a stale
    /// reply for a previous occupant of the slot can never be mistaken
    /// for the current one.
    seq: AtomicU32,
}

/// The state the reader thread shares with request issuers. Deliberately
/// free of the socket itself so the reader holding it keeps nothing
/// alive: dropping the [`Link`] shuts the socket down, which unblocks the
/// reader, which then exits.
#[derive(Debug)]
struct LinkShared {
    slots: Vec<Slot>,
    free: Mutex<Vec<usize>>,
    fault: Mutex<Option<LinkFault>>,
    dead: AtomicBool,
}

impl LinkShared {
    /// Marks the link dead and completes every waiting slot with (a copy
    /// of) the fault. Idempotent: the first fault wins, later callers
    /// just re-sweep for slots that entered `Waiting` during the race.
    fn fail_all(&self, fault: &LinkFault) {
        let fault = {
            let mut f = lock(&self.fault);
            if f.is_none() {
                *f = Some(fault.clone());
            }
            f.clone().expect("fault just stored")
        };
        self.dead.store(true, Ordering::SeqCst);
        for slot in &self.slots {
            let mut st = lock(&slot.state);
            match &*st {
                SlotState::Waiting { id } => {
                    *st = SlotState::Done {
                        id: *id,
                        reply: Err(fault.clone()),
                    };
                    slot.cv.notify_all();
                }
                SlotState::Abandoned { .. } => *st = SlotState::Empty,
                _ => {}
            }
        }
    }
}

/// One multiplexed connection: a shared writer, the slot table, and a
/// reader thread routing replies by frame id.
struct Link {
    shared: Arc<LinkShared>,
    writer: Mutex<BufWriter<TcpStream>>,
    /// Owns the socket for shutdown; reader and writer hold clones of the
    /// same underlying descriptor.
    stream: TcpStream,
}

impl Drop for Link {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

impl Link {
    fn dial(addr: &str, config: &ClientConfig) -> Result<Link, NetError> {
        let stream = dial_stream(addr, config)?;
        // synchronous v2 handshake before the reader thread exists
        {
            let mut w = &stream;
            Msg::Hello.write_to(&mut w, HANDSHAKE_ID)?;
            let mut r = &stream;
            let (ty, rid, payload) = read_first_frame(&mut r)?;
            match Msg::decode(ty, payload)? {
                Msg::Hello if rid == HANDSHAKE_ID => {}
                Msg::Err { kind, msg } => return Err(NetError::Remote { kind, msg }),
                other => {
                    return Err(NetError::protocol(format!(
                        "handshake expected Hello back, got {:?}",
                        other.msg_type()
                    )))
                }
            }
        }
        // replies are awaited on slot condvars with their own deadlines;
        // the reader blocks in read() until traffic, EOF, or shutdown
        stream.set_read_timeout(None)?;
        let m = config.in_flight_per_conn.clamp(1, MAX_SLOTS);
        let shared = Arc::new(LinkShared {
            slots: (0..m)
                .map(|_| Slot {
                    state: Mutex::new(SlotState::Empty),
                    cv: Condvar::new(),
                    seq: AtomicU32::new(0),
                })
                .collect(),
            // popped from the back: slot 0 first, so light traffic keeps
            // reusing the same frame ids
            free: Mutex::new((0..m).rev().collect()),
            fault: Mutex::new(None),
            dead: AtomicBool::new(false),
        });
        let reader = stream.try_clone()?;
        let writer = BufWriter::new(stream.try_clone()?);
        let reader_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("mix-net-link-reader".into())
            .spawn(move || reader_loop(reader, reader_shared))
            .map_err(NetError::Io)?;
        Ok(Link {
            shared,
            writer: Mutex::new(writer),
            stream,
        })
    }

    fn try_acquire_slot(&self) -> Option<usize> {
        if self.shared.dead.load(Ordering::SeqCst) {
            return None;
        }
        lock(&self.shared.free).pop()
    }

    fn release_slot(&self, slot: usize) {
        lock(&self.shared.free).push(slot);
    }

    fn fail(&self, fault: &LinkFault) {
        self.shared.fail_all(fault);
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// The per-link reader: routes each reply to the slot addressed by its
/// frame id's low byte, until the stream or the protocol gives out.
fn reader_loop(mut stream: TcpStream, shared: Arc<LinkShared>) {
    loop {
        let frame = read_frame(&mut stream)
            .and_then(|(ty, id, payload)| Ok((id, Msg::decode(ty, payload)?)));
        let (id, msg) = match frame {
            Ok(x) => x,
            Err(e) => {
                shared.fail_all(&LinkFault::of(&e));
                return;
            }
        };
        if id == CONNECTION_FRAME_ID {
            // connection-scope frames are terminal: the server is telling
            // the whole link off, not answering one request
            let fault = match msg {
                Msg::Err { kind, msg } => LinkFault::Remote { kind, msg },
                other => LinkFault::Protocol(format!(
                    "unsolicited connection-scope {:?} frame",
                    other.msg_type()
                )),
            };
            shared.fail_all(&fault);
            return;
        }
        let idx = (id & 0xff) as usize;
        let Some(cell) = shared.slots.get(idx) else {
            shared.fail_all(&LinkFault::Protocol(format!(
                "reply frame id {id} maps to no slot"
            )));
            return;
        };
        let mut st = lock(&cell.state);
        match &*st {
            SlotState::Waiting { id: expect } if *expect == id => {
                *st = SlotState::Done { id, reply: Ok(msg) };
                cell.cv.notify_all();
            }
            SlotState::Abandoned { id: expect } if *expect == id => {
                *st = SlotState::Empty;
                drop(st);
                lock(&shared.free).push(idx);
            }
            _ => {
                drop(st);
                shared.fail_all(&LinkFault::Protocol(format!(
                    "reply frame id {id} matches no in-flight request"
                )));
                return;
            }
        }
    }
}

/// A frame id whose slot addresses the low byte and whose per-slot
/// sequence number (always ≥ 1, so the id is never the connection-scope
/// 0) fills the high bytes.
fn make_id(slot: usize, seq: u32) -> u32 {
    (((seq % 0x00ff_ffff) + 1) << 8) | slot as u32
}

/// An issued request whose reply has not been collected yet.
struct Pending {
    link: Arc<Link>,
    slot: usize,
    id: u32,
    started: u64,
    deadline: Instant,
}

/// A multiplexer over a bounded set of connections to one remote wrapper
/// address.
///
/// `Send + Sync`: the mediator's parallel union materialization and
/// batched serving hit one source from many threads at once; each request
/// claims an in-flight slot on a live connection (dialing a fresh one
/// only when every slot on every existing connection is taken) and parks
/// until the reader thread routes its reply back by frame id.
pub struct Pool {
    addr: String,
    config: ClientConfig,
    links: Mutex<Vec<Arc<Link>>>,
    /// Serializes dialing so a burst of first requests multiplexes one
    /// fresh connection instead of stampeding the remote with dials.
    dialing: Mutex<()>,
    /// In-flight permits: bounds issued-but-uncollected requests to
    /// `pool_size * in_flight_per_conn` so issuers cannot outrun the slot
    /// supply.
    permits: Mutex<usize>,
    permit_cv: Condvar,
    // consecutive failed exchanges/dials; drives the reconnect jitter
    redial_streak: AtomicU64,
    registry: Registry,
    exchanges: Counter,
    dials: Counter,
    discards: Counter,
    rpc_latency: Histogram,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("addr", &self.addr)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// A pool for `addr`. No connection is dialed until the first
    /// exchange, and nothing is recorded (see [`Pool::with_registry`]).
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Pool {
        Pool::with_registry(addr, config, &Registry::noop())
    }

    /// A pool recording client-side traffic into `registry`: exchanges
    /// and fresh dials, discarded (failed) connections, and round-trip
    /// RPC latency (`net_client_*` metric names).
    pub fn with_registry(
        addr: impl Into<String>,
        config: ClientConfig,
        registry: &Registry,
    ) -> Pool {
        Pool {
            addr: addr.into(),
            config,
            links: Mutex::new(Vec::new()),
            dialing: Mutex::new(()),
            permits: Mutex::new(0),
            permit_cv: Condvar::new(),
            redial_streak: AtomicU64::new(0),
            registry: registry.clone(),
            exchanges: registry.counter("net_client_exchanges_total"),
            dials: registry.counter("net_client_dials_total"),
            discards: registry.counter("net_client_discards_total"),
            rpc_latency: registry.histogram("net_client_rpc_latency_ns"),
        }
    }

    /// The remote address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The client configuration in force.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Live connections currently held (a connection whose reader has
    /// already declared it dead no longer counts, even before the next
    /// request sweeps it out).
    pub fn idle_connections(&self) -> usize {
        lock(&self.links)
            .iter()
            .filter(|l| !l.shared.dead.load(Ordering::SeqCst))
            .count()
    }

    fn slots_per_conn(&self) -> usize {
        self.config.in_flight_per_conn.clamp(1, MAX_SLOTS)
    }

    /// The most requests that can be in flight at once.
    fn capacity(&self) -> usize {
        self.config.pool_size.max(1) * self.slots_per_conn()
    }

    fn acquire_permit(&self) {
        let cap = self.capacity();
        let mut held = lock(&self.permits);
        while *held >= cap {
            held = self
                .permit_cv
                .wait(held)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *held += 1;
    }

    fn release_permit(&self) {
        let mut held = lock(&self.permits);
        *held = held.saturating_sub(1);
        drop(held);
        self.permit_cv.notify_one();
    }

    /// A free slot on the earliest live link, so sequential callers keep
    /// riding one connection instead of fanning out.
    fn claim_slot(&self) -> Option<(Arc<Link>, usize)> {
        let links = lock(&self.links);
        links
            .iter()
            .find_map(|l| l.try_acquire_slot().map(|s| (Arc::clone(l), s)))
    }

    /// Drops links whose reader declared them dead; each removal counts
    /// as one discarded connection.
    fn prune_dead(&self) {
        let mut links = lock(&self.links);
        let before = links.len();
        links.retain(|l| !l.shared.dead.load(Ordering::SeqCst));
        for _ in links.len()..before {
            self.discards.inc();
        }
    }

    /// One request/response exchange, multiplexed onto a pooled (or
    /// fresh) connection.
    pub fn request(&self, msg: Msg) -> Result<Msg, NetError> {
        let pending = self.issue(msg)?;
        self.collect(pending)
    }

    /// Issues every request, windowed to the pool's in-flight capacity,
    /// and returns the replies **in request order** — the whole point of
    /// frame ids is that the server may finish them in any order it
    /// likes. Each element fails independently; one bad exchange does
    /// not sink its batch-mates.
    ///
    /// Frames are stacked unflushed into each connection's write buffer
    /// and flushed once per window, so a full window of requests costs
    /// one write syscall per connection instead of one per request.
    pub fn request_many(&self, msgs: Vec<Msg>) -> Vec<Result<Msg, NetError>> {
        let n = msgs.len();
        let mut results: Vec<Option<Result<Msg, NetError>>> = (0..n).map(|_| None).collect();
        // harvest the oldest issue before exceeding capacity, else a
        // batch larger than the slot supply would deadlock against its
        // own uncollected replies
        let window = self.capacity();
        let mut outstanding: VecDeque<(usize, Pending)> = VecDeque::new();
        let mut dirty: Vec<Arc<Link>> = Vec::new();
        for (i, msg) in msgs.into_iter().enumerate() {
            while outstanding.len() >= window {
                self.flush_links(&mut dirty);
                let (j, pending) = outstanding.pop_front().expect("nonempty window");
                results[j] = Some(self.collect(pending));
            }
            match self.issue_inner(msg, false) {
                Ok(pending) => {
                    if !dirty.iter().any(|l| Arc::ptr_eq(l, &pending.link)) {
                        dirty.push(Arc::clone(&pending.link));
                    }
                    outstanding.push_back((i, pending));
                }
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        self.flush_links(&mut dirty);
        for (j, pending) in outstanding {
            results[j] = Some(self.collect(pending));
        }
        results
            .into_iter()
            .map(|r| r.expect("every index resolved"))
            .collect()
    }

    /// Flushes every connection the current batch window wrote to. A
    /// flush failure kills its link — the pending slots riding it are
    /// failed over to the link fault, exactly as a mid-write error would
    /// be — without touching batch-mates on other connections.
    fn flush_links(&self, dirty: &mut Vec<Arc<Link>>) {
        for link in dirty.drain(..) {
            let flushed = lock(&link.writer).flush();
            if let Err(e) = flushed {
                link.fail(&LinkFault::of(&NetError::from(e)));
                self.prune_dead();
            }
        }
    }

    /// Claims a slot (dialing if the live set has none free and is under
    /// `pool_size`) and writes the request. The reply is collected later
    /// via [`Pool::collect`].
    fn issue(&self, msg: Msg) -> Result<Pending, NetError> {
        self.issue_inner(msg, true)
    }

    /// [`Pool::issue`], with the flush optional: the batch path defers
    /// it and flushes once per window via [`Pool::flush_links`].
    fn issue_inner(&self, msg: Msg, flush: bool) -> Result<Pending, NetError> {
        self.exchanges.inc();
        let started = self.registry.now_ns();
        self.acquire_permit();
        let (link, slot) = loop {
            self.prune_dead();
            if let Some(pair) = self.claim_slot() {
                break pair;
            }
            if lock(&self.links).len() < self.config.pool_size.max(1) {
                // serialize dialing, and re-scan once the guard is held:
                // the issuer that dialed before us has a link with free
                // slots we should ride instead of opening another
                let _dialing = lock(&self.dialing);
                if let Some(pair) = self.claim_slot() {
                    break pair;
                }
                if lock(&self.links).len() < self.config.pool_size.max(1) {
                    match self.dial() {
                        Ok(link) => {
                            let slot = link
                                .try_acquire_slot()
                                .expect("a fresh unshared link has every slot free");
                            lock(&self.links).push(Arc::clone(&link));
                            break (link, slot);
                        }
                        Err(e) => {
                            self.release_permit();
                            return Err(e);
                        }
                    }
                }
            }
            // every slot on every live link is taken and the set is at
            // capacity: another issuer raced us to a freed slot — rescan
            std::thread::yield_now();
        };
        let seq = link.shared.slots[slot].seq.fetch_add(1, Ordering::Relaxed);
        let id = make_id(slot, seq);
        *lock(&link.shared.slots[slot].state) = SlotState::Waiting { id };
        let wrote = {
            let mut w = lock(&link.writer);
            if flush {
                msg.write_to(&mut *w, id)
            } else {
                msg.write_to_buffered(&mut *w, id)
            }
        };
        if let Err(e) = wrote {
            *lock(&link.shared.slots[slot].state) = SlotState::Empty;
            link.release_slot(slot);
            link.fail(&LinkFault::of(&e));
            self.prune_dead();
            self.redial_streak.fetch_add(1, Ordering::Relaxed);
            self.release_permit();
            self.rpc_latency
                .observe(self.registry.now_ns().saturating_sub(started));
            return Err(e);
        }
        // the link may have died between slot acquisition and the write
        // landing in a kernel buffer; a re-fail sweeps our fresh Waiting
        // slot into Done so collect() does not sit out the full deadline
        if link.shared.dead.load(Ordering::SeqCst) {
            let fault = lock(&link.shared.fault).clone().unwrap_or(LinkFault::Io(
                std::io::ErrorKind::ConnectionAborted,
                "connection failed while issuing".into(),
            ));
            link.shared.fail_all(&fault);
        }
        Ok(Pending {
            link,
            slot,
            id,
            started,
            deadline: Instant::now() + self.config.io_timeout,
        })
    }

    /// Parks until the reader routes the reply for `pending` (or its
    /// deadline passes), then frees the slot and classifies the outcome.
    fn collect(&self, pending: Pending) -> Result<Msg, NetError> {
        let Pending {
            link,
            slot,
            id,
            started,
            deadline,
        } = pending;
        let cell = &link.shared.slots[slot];
        let mut st = lock(&cell.state);
        let reply = loop {
            if matches!(&*st, SlotState::Done { id: done, .. } if *done == id) {
                match std::mem::replace(&mut *st, SlotState::Empty) {
                    SlotState::Done { reply, .. } => break reply,
                    _ => unreachable!("just matched Done"),
                }
            }
            let now = Instant::now();
            if now >= deadline {
                // abandon the slot — a straggling reply must be dropped,
                // not matched — and kill the link: its stream now carries
                // an answer nobody will claim, unusable for framing
                *st = SlotState::Abandoned { id };
                drop(st);
                let err = std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("no reply within {:?}", self.config.io_timeout),
                );
                link.fail(&LinkFault::Io(err.kind(), err.to_string()));
                self.prune_dead();
                self.redial_streak.fetch_add(1, Ordering::Relaxed);
                self.release_permit();
                self.rpc_latency
                    .observe(self.registry.now_ns().saturating_sub(started));
                return Err(NetError::Io(err));
            }
            let (guard, _) = cell
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        };
        drop(st);
        link.release_slot(slot);
        self.release_permit();
        let result = match reply {
            // a remote fault or a throttle is an *answer*: the transport
            // is fine, the link stays; a link fault discards it
            Ok(Msg::Err { kind, msg }) => {
                self.redial_streak.store(0, Ordering::Relaxed);
                Err(NetError::Remote { kind, msg })
            }
            Ok(Msg::Throttled { retry_after_ms }) => {
                self.redial_streak.store(0, Ordering::Relaxed);
                Err(NetError::Throttled { retry_after_ms })
            }
            Ok(reply) => {
                self.redial_streak.store(0, Ordering::Relaxed);
                Ok(reply)
            }
            Err(fault) => {
                self.prune_dead();
                self.redial_streak.fetch_add(1, Ordering::Relaxed);
                Err(fault.to_net())
            }
        };
        self.rpc_latency
            .observe(self.registry.now_ns().saturating_sub(started));
        result
    }

    /// Dials one fresh link, waiting out the reconnect jitter when the
    /// dial follows a failure.
    fn dial(&self) -> Result<Arc<Link>, NetError> {
        // a *re*-dial after a failure waits out the jittered delay, so
        // clients that lost the same replica together don't storm it
        // together when it returns
        let streak = self.redial_streak.load(Ordering::Relaxed);
        if streak > 0 {
            let delay = reconnect_jitter(
                self.config.reconnect_jitter_seed,
                streak,
                self.config.reconnect_jitter,
            );
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        self.dials.inc();
        match Link::dial(&self.addr, &self.config) {
            Ok(link) => Ok(Arc::new(link)),
            Err(e) => {
                self.redial_streak.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig, WireFault, WireService};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Counting {
        answers: AtomicUsize,
    }

    impl WireService for Counting {
        fn export_dtd(&self) -> String {
            "{<r : a*> <a : PCDATA>}".into()
        }

        fn answer(&self, query: Option<&str>) -> Result<String, WireFault> {
            let n = self.answers.fetch_add(1, Ordering::SeqCst);
            match query {
                Some("fault") => Err(WireFault::new("transient", "scripted")),
                _ => Ok(format!("<n>{n}</n>")),
            }
        }
    }

    /// Echoes the query back (slowly on demand) so tests can tie each
    /// answer to the request that produced it.
    struct Echo {
        delay: Duration,
    }

    impl WireService for Echo {
        fn export_dtd(&self) -> String {
            "{<r : a*> <a : PCDATA>}".into()
        }

        fn answer(&self, query: Option<&str>) -> Result<String, WireFault> {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            Ok(format!("<echo>{}</echo>", query.unwrap_or("")))
        }
    }

    fn spawn_counting() -> crate::server::ServerHandle {
        Server::bind(
            "127.0.0.1:0",
            Arc::new(Counting {
                answers: AtomicUsize::new(0),
            }),
            ServerConfig::default(),
        )
        .unwrap()
        .spawn()
        .unwrap()
    }

    #[test]
    fn pool_reuses_connections_and_keeps_them_after_remote_faults() {
        let server = spawn_counting();
        let pool = Pool::new(server.addr().to_string(), ClientConfig::default());
        assert_eq!(pool.idle_connections(), 0);
        pool.request(Msg::Query(String::new())).unwrap();
        assert_eq!(pool.idle_connections(), 1);
        // a remote fault keeps the (healthy) connection pooled
        assert!(matches!(
            pool.request(Msg::Query("fault".into())),
            Err(NetError::Remote { .. })
        ));
        assert_eq!(pool.idle_connections(), 1);
        pool.request(Msg::Query(String::new())).unwrap();
        assert_eq!(pool.idle_connections(), 1, "the connection was reused");
        server.shutdown();
    }

    #[test]
    fn dead_connections_are_discarded_not_pooled() {
        let server = spawn_counting();
        let addr = server.addr().to_string();
        let pool = Pool::new(addr, ClientConfig::default());
        pool.request(Msg::Query(String::new())).unwrap();
        assert_eq!(pool.idle_connections(), 1);
        server.shutdown();
        // the pooled connection is now dead: the exchange fails and the
        // connection is dropped, not returned
        assert!(pool.request(Msg::Query(String::new())).is_err());
        assert_eq!(pool.idle_connections(), 0);
    }

    #[test]
    fn many_in_flight_requests_share_one_connection() {
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::new(Echo {
                delay: Duration::from_millis(40),
            }),
            ServerConfig {
                workers: 8,
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .spawn()
        .unwrap();
        let registry = Registry::new();
        let pool = Arc::new(Pool::with_registry(
            server.addr().to_string(),
            ClientConfig {
                pool_size: 1,
                in_flight_per_conn: 8,
                ..ClientConfig::default()
            },
            &registry,
        ));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.request(Msg::Query(format!("q{i}"))))
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let reply = h.join().unwrap().unwrap();
            assert_eq!(reply, Msg::Answer(format!("<echo>q{i}</echo>")));
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["net_client_dials_total"], 1,
            "eight concurrent requests should multiplex one connection"
        );
        assert_eq!(pool.idle_connections(), 1);
        server.shutdown();
    }

    #[test]
    fn request_many_returns_replies_in_request_order() {
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::new(Echo {
                delay: Duration::from_millis(1),
            }),
            ServerConfig {
                workers: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .spawn()
        .unwrap();
        let pool = Pool::new(
            server.addr().to_string(),
            ClientConfig {
                pool_size: 2,
                in_flight_per_conn: 4,
                ..ClientConfig::default()
            },
        );
        // 50 queries through 8 slots forces windowed reuse of every slot
        let msgs: Vec<Msg> = (0..50).map(|i| Msg::Query(format!("b{i}"))).collect();
        let replies = pool.request_many(msgs);
        assert_eq!(replies.len(), 50);
        for (i, r) in replies.into_iter().enumerate() {
            assert_eq!(r.unwrap(), Msg::Answer(format!("<echo>b{i}</echo>")));
        }
        server.shutdown();
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_spread() {
        let max = Duration::from_millis(250);
        for attempt in 1..=64u64 {
            let a = reconnect_jitter(7, attempt, max);
            assert_eq!(a, reconnect_jitter(7, attempt, max), "not deterministic");
            assert!(a <= max, "attempt {attempt}: {a:?} above cap");
        }
        // different seeds (≈ different clients) de-synchronize: the same
        // attempt number maps to many distinct delays
        let delays: std::collections::HashSet<Duration> = (0..64u64)
            .map(|seed| reconnect_jitter(seed, 1, max))
            .collect();
        assert!(delays.len() > 32, "only {} distinct delays", delays.len());
        assert_eq!(reconnect_jitter(7, 1, Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn redial_after_failure_waits_out_the_jitter() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let config = ClientConfig {
            reconnect_jitter: Duration::from_millis(40),
            reconnect_jitter_seed: 3,
            ..ClientConfig::default()
        };
        let pool = Pool::new(addr, config);
        // first dial: no streak yet, no delay
        assert!(pool.request(Msg::Query(String::new())).is_err());
        // second dial follows a failure: at least the deterministic delay
        let expected = reconnect_jitter(3, 1, config.reconnect_jitter);
        assert!(!expected.is_zero(), "pick a seed with a nonzero delay");
        let started = std::time::Instant::now();
        assert!(pool.request(Msg::Query(String::new())).is_err());
        assert!(
            started.elapsed() >= expected,
            "redial did not wait: {:?} < {expected:?}",
            started.elapsed()
        );
    }

    #[test]
    fn refused_connection_is_an_io_error() {
        // bind-then-drop: the port existed a moment ago and is now closed
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let pool = Pool::new(addr, ClientConfig::default());
        match pool.request(Msg::Query(String::new())) {
            Err(e) => assert!(e.is_refused(), "unexpected classification: {e:?}"),
            Ok(_) => panic!("exchange on a closed port succeeded"),
        }
    }
}
