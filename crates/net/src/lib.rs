//! # mix-net — the wire protocol of distributed mediation
//!
//! MIX is a *distributed* architecture: wrappers export a DTD and answer
//! queries for sources that live elsewhere, and mediators stack on top of
//! mediators across machine boundaries (Paper §1). This crate is that
//! boundary: a deliberately small, std-only protocol (threads +
//! `std::net::TcpStream`, no external dependencies) that moves three
//! kinds of text — DTDs in the paper's compact notation, XMAS queries,
//! and XML documents — between a mediator and a remote wrapper.
//!
//! The crate knows nothing about DTDs or queries *as values*: payloads
//! are opaque UTF-8 produced and consumed by the `mix-dtd` / `mix-xmas` /
//! `mix-xml` serializers on either side. That keeps the dependency
//! arrow pointing one way (`mix-mediator` → `mix-net`) so the client
//! ([`Pool`]) can live here while `RemoteWrapper` — which must implement
//! the mediator's `Wrapper` trait — lives in `mix-mediator`.
//!
//! * [`frame`] — length-prefixed binary framing with a version byte,
//! * [`msg`] — the message types (`Hello`, `ExportDtd`, `Query`,
//!   `Answer`, `Err`, `Stats`, `Throttled`),
//! * [`server`] — a threaded accept loop with a connection cap,
//!   per-connection I/O timeouts, and optional per-client admission
//!   control, serving any [`WireService`],
//! * [`client`] — a blocking connection with handshake, pooled by
//!   [`Pool`], with deterministic reconnect jitter,
//! * [`admission`] — the per-client [`TokenBucket`].
//!
//! The full frame format and error-mapping contract are documented in
//! `DESIGN.md` §9; the federation tier built on top in §12.

pub mod admission;
pub mod client;
pub mod error;
pub mod frame;
pub mod msg;
pub mod server;

pub use admission::{AdmissionConfig, TokenBucket};
pub use client::{reconnect_jitter, ClientConfig, Connection, Pool};
pub use error::NetError;
pub use frame::{MsgType, FRAME_VERSION, MAX_PAYLOAD};
pub use msg::Msg;
pub use server::{Server, ServerConfig, ServerHandle, WireFault, WireService};
