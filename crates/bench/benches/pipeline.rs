//! X4 + X10 — the inference pipeline: Tighten on growing DTDs, InferList
//! on growing path depths, the full `infer_view_dtd`, and the paper's own
//! workloads (Q2/Q3 on D1) as fixed reference points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mix_bench::{chain_workload, d1, dtd_of_size, q2, q3};
use mix_infer::{infer_union_view_dtd, infer_view_dtd, naive_view_dtd, tighten, NaiveMode};
use mix_relang::symbol::Name;
use mix_xmas::gen::{random_query, QueryGenConfig};
use mix_xmas::normalize;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    // fixed reference points: the paper's running examples
    let d = d1();
    g.bench_function("infer_q2_on_d1", |b| {
        let q = q2();
        b.iter(|| infer_view_dtd(&q, &d).expect("infers"))
    });
    g.bench_function("infer_q3_on_d1", |b| {
        let q = q3();
        b.iter(|| infer_view_dtd(&q, &d).expect("infers"))
    });
    g.bench_function("naive_q2_on_d1", |b| {
        let q = normalize(&q2(), &d).expect("normalizes");
        b.iter(|| naive_view_dtd(&q, &d, NaiveMode::Sound))
    });

    // X4: tighten vs DTD size
    for names in [8usize, 16, 32, 64] {
        let dtd = dtd_of_size(names, 5);
        let mut rng = StdRng::seed_from_u64(99);
        let q = normalize(
            &random_query(&dtd, &mut rng, &QueryGenConfig::default()),
            &dtd,
        )
        .expect("normalizes");
        g.bench_with_input(
            BenchmarkId::new("tighten_dtd_names", names),
            &names,
            |b, _| b.iter(|| tighten(&q, &dtd)),
        );
        g.bench_with_input(
            BenchmarkId::new("full_pipeline_dtd_names", names),
            &names,
            |b, _| b.iter(|| infer_view_dtd(&q, &dtd).expect("infers")),
        );
    }

    // X12: union-view inference vs number of sites (identical D1 sites)
    for sites in [2usize, 8, 32, 128] {
        let dtd = d1();
        let q = q3();
        let parts: Vec<_> = (0..sites).map(|_| (&q, &dtd)).collect();
        g.bench_with_input(BenchmarkId::new("union_sites", sites), &sites, |b, _| {
            b.iter(|| infer_union_view_dtd(Name::intern("allPubs"), &parts).expect("infers"))
        });
    }

    // X10: InferList vs pick-path depth
    for depth in [2usize, 4, 8, 16] {
        let (dtd, q) = chain_workload(depth);
        g.bench_with_input(
            BenchmarkId::new("pipeline_path_depth", depth),
            &depth,
            |b, _| b.iter(|| infer_view_dtd(&q, &dtd).expect("infers")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
