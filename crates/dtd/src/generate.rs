//! Random DTD generation — the other half of the workload generator
//! (random DTD → random documents → random queries → soundness check).

use crate::analysis::describes_some_document;
use crate::model::{ContentModel, Dtd};
use mix_relang::ast::Regex;
use mix_relang::symbol::Name;
use rand::Rng;

/// Knobs for [`random_dtd`].
#[derive(Debug, Clone)]
pub struct DtdGenConfig {
    /// Number of element names.
    pub names: usize,
    /// Fraction of non-root names that are PCDATA leaves.
    pub pcdata_fraction: f64,
    /// Maximum depth of a generated content-model regex.
    pub regex_depth: usize,
    /// Probability that a name reference may point *upward* in the layer
    /// order, creating recursion.
    pub recursion: f64,
}

impl Default for DtdGenConfig {
    fn default() -> Self {
        DtdGenConfig {
            names: 8,
            pcdata_fraction: 0.4,
            regex_depth: 3,
            recursion: 0.1,
        }
    }
}

/// Generates a random DTD that is guaranteed to describe at least one
/// document (productive document type).
///
/// Names are layered `n0, n1, …`; a content model of `n_i` mostly refers to
/// later layers so that productivity is the common case, with an optional
/// recursion probability for back-references. Generation retries until the
/// document type is productive (practically immediate).
pub fn random_dtd(rng: &mut impl Rng, cfg: &DtdGenConfig) -> Dtd {
    loop {
        let d = attempt(rng, cfg);
        if describes_some_document(&d) {
            return d;
        }
    }
}

fn attempt(rng: &mut impl Rng, cfg: &DtdGenConfig) -> Dtd {
    let n = cfg.names.max(2);
    let names: Vec<Name> = (0..n).map(|i| Name::intern(&format!("n{i}"))).collect();
    let mut dtd = Dtd::new(names[0]);
    for (i, &name) in names.iter().enumerate() {
        let is_leaf = i > 0 && rng.gen_bool(cfg.pcdata_fraction);
        if is_leaf || i == n - 1 {
            dtd.types.insert(name, ContentModel::Pcdata);
        } else {
            let r = random_model(rng, cfg, &names, i);
            dtd.types.insert(name, ContentModel::Elements(r));
        }
    }
    dtd
}

fn pick_ref(rng: &mut impl Rng, cfg: &DtdGenConfig, names: &[Name], layer: usize) -> Regex {
    let idx = if layer + 1 < names.len() && !rng.gen_bool(cfg.recursion) {
        rng.gen_range(layer + 1..names.len())
    } else {
        rng.gen_range(0..names.len())
    };
    Regex::name(names[idx])
}

fn random_model(rng: &mut impl Rng, cfg: &DtdGenConfig, names: &[Name], layer: usize) -> Regex {
    fn go(
        rng: &mut impl Rng,
        cfg: &DtdGenConfig,
        names: &[Name],
        layer: usize,
        depth: usize,
    ) -> Regex {
        if depth == 0 {
            return pick_ref(rng, cfg, names, layer);
        }
        match rng.gen_range(0..6) {
            0 => pick_ref(rng, cfg, names, layer),
            1 => Regex::concat(
                (0..rng.gen_range(2..4)).map(|_| go(rng, cfg, names, layer, depth - 1)),
            ),
            2 => {
                Regex::alt((0..rng.gen_range(2..4)).map(|_| go(rng, cfg, names, layer, depth - 1)))
            }
            3 => Regex::star(go(rng, cfg, names, layer, depth - 1)),
            4 => Regex::plus(go(rng, cfg, names, layer, depth - 1)),
            _ => Regex::opt(go(rng, cfg, names, layer, depth - 1)),
        }
    }
    go(rng, cfg, names, layer, cfg.regex_depth)
}

/// Convenience: a seeded random DTD.
pub fn seeded_dtd(seed: u64, cfg: &DtdGenConfig) -> Dtd {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_dtd(&mut rng, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::usable;
    use crate::sample::{DocConfig, DocSampler};
    use crate::validate::satisfies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_dtds_describe_documents() {
        for seed in 0..50 {
            let d = seeded_dtd(seed, &DtdGenConfig::default());
            assert!(describes_some_document(&d), "seed {seed}: {d}");
            assert!(d.undefined_names().is_empty(), "seed {seed}: {d}");
        }
    }

    #[test]
    fn generated_dtds_sample_valid_documents() {
        let mut rng = StdRng::seed_from_u64(99);
        for seed in 0..20 {
            let d = seeded_dtd(seed, &DtdGenConfig::default());
            let Some(sampler) = DocSampler::new(&d, DocConfig::default()) else {
                panic!("generator guarantees productivity");
            };
            for _ in 0..20 {
                let doc = sampler.sample(&mut rng);
                assert!(satisfies(&d, &doc), "seed {seed} produced invalid doc");
            }
        }
    }

    #[test]
    fn bigger_configs_scale() {
        let cfg = DtdGenConfig {
            names: 40,
            regex_depth: 4,
            ..DtdGenConfig::default()
        };
        let d = seeded_dtd(7, &cfg);
        assert!(d.types.len() >= 40);
        assert!(!usable(&d).is_empty());
    }

    #[test]
    fn recursion_config_can_recurse() {
        let cfg = DtdGenConfig {
            names: 6,
            recursion: 0.9,
            pcdata_fraction: 0.2,
            ..DtdGenConfig::default()
        };
        // With heavy back-references some attempts are unproductive; the
        // loop must still terminate with a productive DTD.
        for seed in 0..20 {
            let d = seeded_dtd(seed, &cfg);
            assert!(describes_some_document(&d));
        }
    }
}
