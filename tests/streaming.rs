//! PR 8 property suite: the streaming evaluator is *byte-identical* to
//! the in-memory evaluator on the supported fragment, over random DTDs,
//! random queries, and random valid documents — with and without DTD
//! pruning — and the `!=` fallback path is exercised explicitly.

use mix::dtd::generate::{seeded_dtd, write_sized_document, ChunkedDocConfig, DtdGenConfig};
use mix::dtd::sample::{DocConfig, DocSampler};
use mix::prelude::*;
use mix::xmas::gen::{random_query, QueryGenConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Read;

/// The supported fragment: no `!=` constraints.
fn query_cfg() -> QueryGenConfig {
    QueryGenConfig {
        dup_prob: 0.0,
        ..QueryGenConfig::default()
    }
}

fn doc_cfg() -> DocConfig {
    DocConfig {
        max_nodes: 80,
        ..DocConfig::default()
    }
}

/// Serialized answer of the in-memory evaluator over the *reparsed*
/// document, so both paths see exactly the bytes on the wire.
fn oracle(nq: &Query, xml: &str, cfg: WriteConfig) -> String {
    let doc = parse_document(xml).expect("serialized documents reparse");
    write_document(&evaluate(nq, &doc), cfg)
}

fn streamed(cq: &CompiledQuery, xml: &str, cfg: WriteConfig) -> String {
    let mut out = Vec::new();
    stream_answer_to(xml.as_bytes(), cq, cfg, &mut out).expect("stream over valid bytes");
    String::from_utf8(out).expect("serializer emits UTF-8")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming ≡ in-memory over random schema-aware workloads, both
    /// with DTD pruning and without, in both serialization modes.
    #[test]
    fn streaming_is_byte_identical_to_in_memory(dtd_seed in 0u64..400, q_seed in 0u64..1000) {
        let dtd = seeded_dtd(dtd_seed, &DtdGenConfig::default());
        let mut rng = StdRng::seed_from_u64(q_seed);
        let q = random_query(&dtd, &mut rng, &query_cfg());
        let Ok(nq) = normalize(&q, &dtd) else { return };
        let Ok(pruned) = CompiledQuery::compile(&nq, Some(&dtd)) else { return };
        let blind = CompiledQuery::compile(&nq, None).expect("fragment check ignores the DTD");
        let sampler = DocSampler::new(&dtd, doc_cfg()).expect("generator guarantees docs");
        for _ in 0..8 {
            let doc = sampler.sample(&mut rng);
            for cfg in [WriteConfig::default(), WriteConfig { indent: None, ..WriteConfig::default() }] {
                let xml = write_document(&doc, cfg);
                let want = oracle(&nq, &xml, cfg);
                for cq in [&pruned, &blind] {
                    let got = streamed(cq, &xml, cfg);
                    prop_assert_eq!(
                        &got, &want,
                        "divergence (dtd_seed={}, q_seed={}, pruned={})\nquery:\n{}\ndoc:\n{}",
                        dtd_seed, q_seed, std::ptr::eq(cq, &pruned), q, xml
                    );
                }
            }
        }
    }

    /// The chunked size-targeted writer only emits DTD-valid documents,
    /// and the streaming evaluator digests them whole.
    #[test]
    fn chunked_documents_are_valid_and_streamable(dtd_seed in 0u64..200) {
        let dtd = seeded_dtd(dtd_seed, &DtdGenConfig::default());
        let cfg = ChunkedDocConfig {
            target_bytes: 24 << 10,
            max_subtree_bytes: 2 << 10,
            ..ChunkedDocConfig::default()
        };
        let mut xml = Vec::new();
        let written = write_sized_document(&dtd, dtd_seed ^ 0x5eed, cfg, &mut xml).unwrap();
        prop_assert_eq!(written as usize, xml.len());
        let text = String::from_utf8(xml).unwrap();
        let doc = parse_document(&text).expect("chunked output parses");
        prop_assert!(satisfies(&dtd, &doc), "chunked output violates its DTD");

        let mut rng = StdRng::seed_from_u64(dtd_seed);
        let q = random_query(&dtd, &mut rng, &query_cfg());
        let Ok(nq) = normalize(&q, &dtd) else { return };
        let Ok(cq) = CompiledQuery::compile(&nq, Some(&dtd)) else { return };
        let cfg = WriteConfig::default();
        prop_assert_eq!(streamed(&cq, &text, cfg), oracle(&nq, &text, cfg));
    }
}

/// `!=` queries are outside the fragment: the wrapper must *fall back*
/// (observably) and still produce the in-memory answer bit-for-bit.
#[test]
fn diseq_queries_take_the_fallback_path() {
    let dtd = mix::dtd::paper::d1_department();
    let doc = DocSampler::new(&dtd, doc_cfg())
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(7));
    let xml = write_document(
        &doc,
        WriteConfig {
            indent: None,
            ..WriteConfig::default()
        },
    );
    let q = parse_query(
        "multi = SELECT P WHERE <department> P:<professor> \
           <publication id=A/> <publication id=B/> </> </department> AND A != B",
    )
    .unwrap();
    let nq = normalize(&q, &dtd).unwrap();
    match CompiledQuery::compile(&nq, Some(&dtd)) {
        Err(mix::stream::Unsupported::Diseqs(1)) => {}
        other => panic!("expected a Diseqs rejection, got {other:?}"),
    }

    let fallbacks = mix::obs::global().counter("stream_queries_fallback_total");
    let before = fallbacks.get();
    let bytes = xml.clone();
    let w = StreamingWrapper::new(
        dtd.clone(),
        Box::new(move || {
            Ok(Box::new(std::io::Cursor::new(bytes.clone().into_bytes())) as Box<dyn Read + Send>)
        }),
    );
    let (answer, served) = w.answer_traced(&q).unwrap();
    assert!(matches!(served, ServedBy::Fallback(_)), "got {served:?}");
    assert!(fallbacks.get() > before, "fallback must be counted");
    let reference = evaluate(&nq, &parse_document(&xml).unwrap());
    assert_eq!(
        write_document(&answer, WriteConfig::default()),
        write_document(&reference, WriteConfig::default()),
    );
}
