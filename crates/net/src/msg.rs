//! The protocol's messages, as values.
//!
//! A [`Msg`] is the typed view of one frame: the [`crate::frame::MsgType`]
//! byte plus the payload decoded as UTF-8 text. Payloads are the *text
//! serializations* the rest of the workspace already round-trips — DTDs
//! in the paper's compact notation (`mix_dtd::parse_compact` ↔
//! `Display`), XMAS queries (`mix_xmas::parse_query` ↔ `Display`), and
//! XML documents (`mix_xml::parse_document` ↔ `write_document`) — so this
//! module never needs to know their grammars.
//!
//! The frame id travels *beside* the message, not inside it: a `Msg` is
//! the same value whether it is request 1 or request 900, so
//! [`Msg::write_to`] takes the id and [`Msg::read_from`] returns it.

use crate::error::NetError;
use crate::frame::{read_frame, write_frame, MsgType, HEADER_LEN};
use std::io::{Read, Write};

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Handshake. First frame in each direction on every connection.
    Hello,
    /// Request form (empty) and response form (the exported DTD's compact
    /// text) share the type byte; direction disambiguates.
    ExportDtd(String),
    /// An XMAS query to answer; the empty string requests the full
    /// exported document (wrapper `fetch`).
    Query(String),
    /// An answer document as XML text.
    Answer(String),
    /// A remote fault: stable kind label + human-readable detail.
    Err {
        /// Stable machine-readable fault label (`SourceError::kind()`).
        kind: String,
        /// Human-readable detail.
        msg: String,
    },
    /// Observability-snapshot exchange (what `mixctl stats` speaks).
    /// Request form (empty) and response form (a `mix-obs/1` JSON
    /// snapshot) share the type byte; direction disambiguates.
    Stats(String),
    /// Admission control shed the request before dispatching it: the
    /// client should back off at least this many milliseconds. Payload is
    /// the decimal number.
    Throttled {
        /// Suggested minimum backoff, in milliseconds.
        retry_after_ms: u64,
    },
}

impl Msg {
    /// The message's frame type byte.
    pub fn msg_type(&self) -> MsgType {
        match self {
            Msg::Hello => MsgType::Hello,
            Msg::ExportDtd(_) => MsgType::ExportDtd,
            Msg::Query(_) => MsgType::Query,
            Msg::Answer(_) => MsgType::Answer,
            Msg::Err { .. } => MsgType::Err,
            Msg::Stats(_) => MsgType::Stats,
            Msg::Throttled { .. } => MsgType::Throttled,
        }
    }

    /// Serializes the payload.
    pub(crate) fn payload(&self) -> Vec<u8> {
        match self {
            Msg::Hello => Vec::new(),
            Msg::ExportDtd(s) | Msg::Query(s) | Msg::Answer(s) | Msg::Stats(s) => {
                s.as_bytes().to_vec()
            }
            Msg::Err { kind, msg } => format!("{kind}\n{msg}").into_bytes(),
            Msg::Throttled { retry_after_ms } => retry_after_ms.to_string().into_bytes(),
        }
    }

    /// The exact number of bytes this message occupies on the wire
    /// (10-byte v2 frame header + payload) — what the traffic counters
    /// record.
    pub fn wire_size(&self) -> u64 {
        let payload = match self {
            Msg::Hello => 0,
            Msg::ExportDtd(s) | Msg::Query(s) | Msg::Answer(s) | Msg::Stats(s) => s.len(),
            Msg::Err { kind, msg } => kind.len() + 1 + msg.len(),
            Msg::Throttled { retry_after_ms } => {
                // decimal digit count, matching `payload()`
                ((*retry_after_ms).max(1).ilog10() + 1) as usize
            }
        };
        HEADER_LEN as u64 + payload as u64
    }

    /// Writes this message as one frame carrying `frame_id`.
    pub fn write_to(&self, w: &mut impl Write, frame_id: u32) -> Result<(), NetError> {
        write_frame(w, self.msg_type(), frame_id, &self.payload())
    }

    /// Encodes the message into `w` without flushing — see
    /// [`crate::frame::write_frame_buffered`]. The caller must flush
    /// before waiting for a reply.
    pub fn write_to_buffered(&self, w: &mut impl Write, frame_id: u32) -> Result<(), NetError> {
        crate::frame::write_frame_buffered(w, self.msg_type(), frame_id, &self.payload())
    }

    /// Decodes a message from an already-read frame body. This is the
    /// half of [`Msg::read_from`] the reactor uses once its ring buffer
    /// holds a complete frame.
    pub fn decode(ty: MsgType, payload: Vec<u8>) -> Result<Msg, NetError> {
        let text = String::from_utf8(payload)
            .map_err(|_| NetError::protocol("payload is not valid UTF-8"))?;
        Ok(match ty {
            MsgType::Hello => {
                if !text.is_empty() {
                    return Err(NetError::protocol("Hello carries a payload"));
                }
                Msg::Hello
            }
            MsgType::ExportDtd => Msg::ExportDtd(text),
            MsgType::Query => Msg::Query(text),
            MsgType::Answer => Msg::Answer(text),
            MsgType::Err => {
                let (kind, msg) = text.split_once('\n').unwrap_or((text.as_str(), ""));
                Msg::Err {
                    kind: kind.to_owned(),
                    msg: msg.to_owned(),
                }
            }
            MsgType::Stats => Msg::Stats(text),
            MsgType::Throttled => {
                let retry_after_ms = text
                    .parse::<u64>()
                    .map_err(|_| NetError::protocol("Throttled payload is not a decimal u64"))?;
                Msg::Throttled { retry_after_ms }
            }
        })
    }

    /// Reads one message and its frame id from the stream.
    pub fn read_from(r: &mut impl Read) -> Result<(u32, Msg), NetError> {
        let (ty, frame_id, payload) = read_frame(r)?;
        Ok((frame_id, Msg::decode(ty, payload)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(m: Msg) -> Msg {
        let mut buf = Vec::new();
        m.write_to(&mut buf, 5).unwrap();
        let (id, got) = Msg::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(id, 5);
        got
    }

    #[test]
    fn all_messages_roundtrip() {
        for m in [
            Msg::Hello,
            Msg::ExportDtd("{<r : a*> <a : PCDATA>}".into()),
            Msg::ExportDtd(String::new()),
            Msg::Query("q = SELECT X WHERE X:<a/>".into()),
            Msg::Query(String::new()),
            Msg::Answer("<r><a>1</a></r>".into()),
            Msg::Err {
                kind: "unavailable".into(),
                msg: "circuit open for 'site3'".into(),
            },
            Msg::Stats(String::new()),
            Msg::Stats(r#"{"counters":{},"schema":"mix-obs/1"}"#.into()),
            Msg::Throttled { retry_after_ms: 0 },
            Msg::Throttled { retry_after_ms: 1 },
            Msg::Throttled {
                retry_after_ms: 12_500,
            },
        ] {
            assert_eq!(roundtrip(m.clone()), m);
        }
    }

    #[test]
    fn wire_size_matches_the_encoded_frame() {
        for m in [
            Msg::Hello,
            Msg::Query("q = SELECT X WHERE X:<a/>".into()),
            Msg::Err {
                kind: "timeout".into(),
                msg: "deadline".into(),
            },
            Msg::Stats("{}".into()),
            Msg::Throttled { retry_after_ms: 0 },
            Msg::Throttled { retry_after_ms: 9 },
            Msg::Throttled { retry_after_ms: 10 },
            Msg::Throttled {
                retry_after_ms: 123_456,
            },
        ] {
            let mut buf = Vec::new();
            m.write_to(&mut buf, 1).unwrap();
            assert_eq!(m.wire_size(), buf.len() as u64, "{m:?}");
        }
    }

    #[test]
    fn malformed_throttle_payload_rejected() {
        let mut buf = Vec::new();
        crate::frame::write_frame(&mut buf, MsgType::Throttled, 1, b"soon").unwrap();
        assert!(matches!(
            Msg::read_from(&mut Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn err_detail_may_contain_newlines() {
        let m = Msg::Err {
            kind: "dtd-invalid".into(),
            msg: "line 1\nline 2".into(),
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn non_utf8_payload_rejected() {
        let mut buf = Vec::new();
        crate::frame::write_frame(&mut buf, MsgType::Answer, 1, &[0xff, 0xfe]).unwrap();
        assert!(matches!(
            Msg::read_from(&mut Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
    }
}
