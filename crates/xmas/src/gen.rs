//! Random pick-element query generation against a DTD — the query half of
//! the workload generator (DESIGN.md system #12; powers the soundness
//! property suite X2 and the benches).
//!
//! Generated queries are *schema-aware*: conditions follow the DTD's
//! parent–child structure so a useful fraction of them is satisfiable, and
//! a configurable fraction deliberately violates the schema to exercise
//! the unsatisfiable paths.

use crate::ast::{Body, Condition, NameTest, Query, Var};
use mix_dtd::{ContentModel, Dtd};
use mix_relang::symbol::Name;
use rand::Rng;

/// Knobs for [`random_query`].
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Maximum depth of the condition tree.
    pub max_depth: usize,
    /// Maximum child conditions per node.
    pub max_children: usize,
    /// Probability that a PCDATA child gets a string-equality condition.
    pub text_prob: f64,
    /// Probability that a condition node names a *random* (likely
    /// schema-violating) element instead of a schema child.
    pub chaos_prob: f64,
    /// Probability that a same-name sibling condition is duplicated with
    /// `id` variables and a `!=` constraint (the Example 4.2 pattern).
    pub dup_prob: f64,
    /// Strings used for text conditions (should overlap the document
    /// sampler's pool so conditions sometimes match).
    pub string_pool: Vec<String>,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            max_depth: 4,
            max_children: 2,
            text_prob: 0.25,
            chaos_prob: 0.05,
            dup_prob: 0.2,
            string_pool: ["CS", "EE", "Math"].iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Generates a random pick-element query rooted at `dtd`'s document type,
/// with the pick variable `P` placed on a random root-to-leaf path.
pub fn random_query(dtd: &Dtd, rng: &mut impl Rng, cfg: &QueryGenConfig) -> Query {
    let mut state = Gen {
        dtd,
        cfg,
        next_id: 0,
        diseqs: Vec::new(),
    };
    let mut root = state.condition(dtd.doc_type, cfg.max_depth, rng);
    // place the pick on a random path: walk down, then bind.
    place_pick(&mut root, rng);
    Query {
        view_name: Name::intern("view"),
        pick: Var::new("P"),
        root,
        diseqs: state.diseqs,
    }
}

struct Gen<'a, 'c> {
    dtd: &'a Dtd,
    cfg: &'c QueryGenConfig,
    next_id: u32,
    diseqs: Vec<(Var, Var)>,
}

impl Gen<'_, '_> {
    fn fresh_id_var(&mut self) -> Var {
        self.next_id += 1;
        Var::new(&format!("Id{}", self.next_id))
    }

    fn condition(&mut self, n: Name, depth: usize, rng: &mut impl Rng) -> Condition {
        let model = self.dtd.get(n);
        match model {
            Some(ContentModel::Pcdata) => {
                if rng.gen_bool(self.cfg.text_prob) && !self.cfg.string_pool.is_empty() {
                    let s = &self.cfg.string_pool[rng.gen_range(0..self.cfg.string_pool.len())];
                    Condition::text(n, s)
                } else {
                    Condition::elem(n, vec![])
                }
            }
            Some(ContentModel::Elements(r)) if depth > 0 => {
                let candidates: Vec<Name> = r.names().into_iter().collect();
                let mut children = Vec::new();
                if !candidates.is_empty() {
                    let k = rng.gen_range(0..=self.cfg.max_children.min(candidates.len()));
                    for _ in 0..k {
                        let child = if rng.gen_bool(self.cfg.chaos_prob) {
                            // a random name from the whole DTD — often not
                            // a legal child here
                            let all = self.dtd.names();
                            all[rng.gen_range(0..all.len())]
                        } else {
                            candidates[rng.gen_range(0..candidates.len())]
                        };
                        let mut c = self.condition(child, depth - 1, rng);
                        let has_inner_vars = c
                            .walk()
                            .iter()
                            .any(|x| x.var.is_some() || x.id_var.is_some());
                        if !has_inner_vars && rng.gen_bool(self.cfg.dup_prob) {
                            // duplicate with a != pair (Example 4.2 pattern)
                            let a = self.fresh_id_var();
                            let b = self.fresh_id_var();
                            let mut c2 = c.clone();
                            c.id_var = Some(a);
                            c2.id_var = Some(b);
                            self.diseqs.push((a, b));
                            children.push(c2);
                        }
                        children.push(c);
                    }
                }
                Condition::elem(n, children)
            }
            _ => Condition::elem(n, vec![]),
        }
    }
}

/// Binds `P` to a random node on a random downward path.
fn place_pick(c: &mut Condition, rng: &mut impl Rng) {
    let descend = !c.children().is_empty() && rng.gen_bool(0.6);
    if descend {
        if let Body::Children(kids) = &mut c.body {
            let i = rng.gen_range(0..kids.len());
            place_pick(&mut kids[i], rng);
            return;
        }
    }
    c.var = Some(Var::new("P"));
}

/// Generates a random user query addressed at a *view* (root test = view
/// name) — used to exercise the mediator's composition/materialization
/// paths.
pub fn random_view_query(view_dtd: &Dtd, rng: &mut impl Rng, cfg: &QueryGenConfig) -> Query {
    let mut q = random_query(view_dtd, rng, cfg);
    q.view_name = Name::intern("ans");
    // the generator roots at the view DTD's doc type, which is the view
    // name — exactly what the mediator expects
    debug_assert_eq!(q.root.test.names().first(), Some(&view_dtd.doc_type));
    q
}

/// Convenience NameTest helper used by tests.
pub fn test_of(names: &[&str]) -> NameTest {
    NameTest::Names(names.iter().map(|s| Name::intern(s)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use mix_dtd::paper::d1_department;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_queries_normalize() {
        let d = d1_department();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let q = random_query(&d, &mut rng, &QueryGenConfig::default());
            let n = normalize(&q, &d).unwrap_or_else(|e| panic!("{e} in\n{q}"));
            assert!(n.pick_path().is_some());
        }
    }

    #[test]
    fn pick_is_always_on_a_path() {
        let d = d1_department();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let q = random_query(&d, &mut rng, &QueryGenConfig::default());
            let path = q.pick_path().expect("pick bound");
            assert_eq!(path[0].test.names(), &[d.doc_type]);
        }
    }

    #[test]
    fn duplicated_conditions_carry_diseqs() {
        let d = d1_department();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = QueryGenConfig {
            dup_prob: 1.0,
            max_children: 1,
            ..QueryGenConfig::default()
        };
        let mut saw_diseq = false;
        for _ in 0..50 {
            let q = random_query(&d, &mut rng, &cfg);
            if !q.diseqs.is_empty() {
                saw_diseq = true;
                for (a, b) in &q.diseqs {
                    let vars = q.declared_vars();
                    assert!(vars.contains(a) && vars.contains(b));
                }
            }
        }
        assert!(saw_diseq);
    }

    #[test]
    fn chaos_free_generation_sticks_to_schema() {
        let d = d1_department();
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = QueryGenConfig {
            chaos_prob: 0.0,
            ..QueryGenConfig::default()
        };
        for _ in 0..50 {
            let q = random_query(&d, &mut rng, &cfg);
            // every condition name is declared in the DTD
            for c in q.root.walk() {
                for n in c.test.names() {
                    assert!(d.types.contains(*n), "undeclared {n}");
                }
            }
        }
    }
}
