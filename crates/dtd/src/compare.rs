//! Exact DTD-level tightness comparison (Definitions 3.2–3.4).
//!
//! `D1` is *tighter than* `D2` when every document satisfying `D1`
//! satisfies `D2`. The check reduces to per-name regular-language inclusion
//! *restricted to the usable alphabet of `D1`*:
//!
//! * sufficient — induction over the document tree;
//! * necessary — a counterexample word `w ∈ L₁(n)|usable \ L₂(n)` for a
//!   usable `n` extends to a witness document (reach `n` through a usable
//!   context, give it child word `w`, expand children minimally).
//!
//! Without the usable-alphabet restriction the check would be merely
//! sufficient: a type may allow child sequences whose names can never occur
//! in any finite document.

use crate::analysis::{restrict, usable};
use crate::model::{ContentModel, Dtd};
use mix_relang::is_subset;

/// The result of a tightness comparison, with a witness when `tighter` is
/// false.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tightness {
    /// Every document of the first DTD satisfies the second.
    Tighter,
    /// The first DTD describes a document the second rejects; the witness
    /// is the usable name whose restricted language escapes.
    NotTighter {
        /// Name whose type language is not included.
        at: mix_relang::Name,
    },
    /// The document types differ (and the first DTD is non-empty).
    DocTypeMismatch,
    /// A usable name of the first DTD is undeclared in the second.
    Undeclared(mix_relang::Name),
}

impl Tightness {
    /// Did the comparison succeed?
    pub fn holds(&self) -> bool {
        matches!(self, Tightness::Tighter)
    }
}

/// Is every document of `a` also a document of `b`? (Definition 3.2.)
///
/// ```
/// use mix_dtd::{parse_compact, tighter_than, strictly_tighter};
/// let tight = parse_compact("{<v : p, p+> <p : PCDATA>}").unwrap();
/// let loose = parse_compact("{<v : p+> <p : PCDATA>}").unwrap();
/// assert!(tighter_than(&tight, &loose).holds());
/// assert!(strictly_tighter(&tight, &loose));
/// ```
pub fn tighter_than(a: &Dtd, b: &Dtd) -> Tightness {
    let usable_a = usable(a);
    if usable_a.is_empty() {
        // `a` describes no documents: vacuously tighter than anything.
        return Tightness::Tighter;
    }
    if a.doc_type != b.doc_type {
        return Tightness::DocTypeMismatch;
    }
    for &n in &usable_a {
        let Some(ta) = a.get(n) else { continue };
        let Some(tb) = b.get(n) else {
            return Tightness::Undeclared(n);
        };
        match (ta, tb) {
            (ContentModel::Pcdata, ContentModel::Pcdata) => {}
            (ContentModel::Pcdata, ContentModel::Elements(_)) => {
                // a usable PCDATA element has string content, which no
                // element-content model accepts
                return Tightness::NotTighter { at: n };
            }
            (ContentModel::Elements(ra), ContentModel::Pcdata) => {
                // element content (possibly the empty sequence) never
                // satisfies PCDATA — unless `a` forbids n to have any
                // realizable content, but usability already implies some
                // realizable word exists
                let ra = restrict(ra, &usable_a);
                if !ra.is_empty_lang() {
                    return Tightness::NotTighter { at: n };
                }
            }
            (ContentModel::Elements(ra), ContentModel::Elements(rb)) => {
                let ra = restrict(ra, &usable_a);
                if !is_subset(&ra, rb) {
                    return Tightness::NotTighter { at: n };
                }
            }
        }
    }
    Tightness::Tighter
}

/// Strict tightness: `a` tighter than `b` and not vice versa.
pub fn strictly_tighter(a: &Dtd, b: &Dtd) -> bool {
    tighter_than(a, b).holds() && !tighter_than(b, a).holds()
}

/// Do `a` and `b` describe exactly the same documents?
pub fn same_documents(a: &Dtd, b: &Dtd) -> bool {
    tighter_than(a, b).holds() && tighter_than(b, a).holds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_compact;

    fn dtd(s: &str) -> Dtd {
        parse_compact(s).unwrap()
    }

    #[test]
    fn refined_cardinality_is_strictly_tighter() {
        // Example 3.1's key refinement: at least two publications.
        let tight = dtd("{<v : professor*>\
              <professor : publication, publication, publication*>\
              <publication : PCDATA>}");
        let loose = dtd("{<v : professor*>\
              <professor : publication+>\
              <publication : PCDATA>}");
        assert!(strictly_tighter(&tight, &loose));
    }

    #[test]
    fn disjunction_removal_is_strictly_tighter() {
        // Example 3.2: journal-only publications.
        let tight = dtd("{<p : title, journal> <title : PCDATA> <journal : EMPTY>}");
        let loose = dtd("{<p : title, (journal | conference)>\
              <title : PCDATA> <journal : EMPTY> <conference : EMPTY>}");
        assert!(strictly_tighter(&tight, &loose));
    }

    #[test]
    fn same_documents_modulo_regex_form() {
        let a = dtd("{<r : x*, x> <x : PCDATA>}");
        let b = dtd("{<r : x+> <x : PCDATA>}");
        assert!(same_documents(&a, &b));
    }

    #[test]
    fn doc_type_mismatch() {
        let a = dtd("{<r : x?> <x : PCDATA>}");
        let b = dtd("{<s : x?> <x : PCDATA>}");
        assert_eq!(tighter_than(&a, &b), Tightness::DocTypeMismatch);
    }

    #[test]
    fn empty_dtd_is_tighter_than_everything() {
        let empty = dtd("{<r : r>}"); // unproductive root: no documents
        let b = dtd("{<s : x> <x : PCDATA>}");
        assert!(tighter_than(&empty, &b).holds());
    }

    #[test]
    fn undeclared_usable_name_fails() {
        let a = dtd("{<r : x?> <x : PCDATA>}");
        let b = dtd("{<r : y?> <y : PCDATA>}");
        assert!(matches!(
            tighter_than(&a, &b),
            Tightness::Undeclared(_) | Tightness::NotTighter { .. }
        ));
    }

    #[test]
    fn usable_restriction_makes_check_exact() {
        // In `a`, name `b` only appears next to an unproductive `u`, so the
        // extra `b` alternative can never materialize: `a` *is* tighter.
        let a = dtd("{<r : x | (u, b)> <x : PCDATA> <u : u> <b : PCDATA>}");
        let b_dtd = dtd("{<r : x> <x : PCDATA> <u : u> <b : PCDATA>}");
        assert!(tighter_than(&a, &b_dtd).holds());
    }

    #[test]
    fn pcdata_vs_elements_mismatch() {
        let a = dtd("{<r : x> <x : PCDATA>}");
        let b = dtd("{<r : x> <x : y?> <y : PCDATA>}");
        // x is PCDATA in a but element-content in b: a's documents have
        // string-content x, which b rejects.
        assert!(!tighter_than(&a, &b).holds());
        // and vice versa: b's x has element content (possibly empty)
        assert!(!tighter_than(&b, &a).holds());
    }

    #[test]
    fn paper_d3_tighter_than_naive_publist() {
        // Example 3.2's view DTD (D3) vs a naive one keeping the
        // disjunction.
        let d3 = dtd("{<publist : publication*>\
              <publication : title, author*, journal>\
              <journal : EMPTY>}");
        let naive = dtd("{<publist : publication*>\
              <publication : title, author+, (journal | conference)>\
              <journal : EMPTY> <conference : EMPTY>}");
        // d3 with author* is NOT tighter than naive (author+ required);
        // with the paper's D1 source author+ is kept, check that variant:
        let d3_authors_plus = dtd("{<publist : publication*>\
              <publication : title, author+, journal>\
              <journal : EMPTY>}");
        assert!(strictly_tighter(&d3_authors_plus, &naive));
        assert!(!tighter_than(&d3, &naive).holds());
    }
}
