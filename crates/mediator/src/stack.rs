//! Mediator stacking (Section 1): "mediators can be stacked on top of
//! mediators. In this case it is important that the lower level mediators
//! can derive and provide their view DTDs to the higher level ones."
//!
//! [`ViewWrapper`] exports one registered view of a lower mediator as a
//! [`Wrapper`]: its DTD is the *inferred* view DTD, its document is the
//! materialized view, and it answers queries through the lower mediator's
//! query processor (simplifier + composition included).

use crate::error::SourceError;
use crate::mediator::{Mediator, MediatorError};
use crate::source::Wrapper;
use mix_dtd::Dtd;
use mix_relang::symbol::Name;
use mix_xmas::Query;
use mix_xml::Document;
use std::sync::Arc;

/// Folds a lower mediator's failure into the source fault model the
/// upper mediator understands: the wrapped view *is* a source up there.
fn as_source_error(e: MediatorError) -> SourceError {
    match e {
        MediatorError::Source { error, .. } => error,
        MediatorError::Normalize(e) => SourceError::Query(e),
        other => SourceError::Unavailable(other.to_string()),
    }
}

/// One view of a lower-level mediator, exported as a source for a
/// higher-level mediator.
pub struct ViewWrapper {
    mediator: Arc<Mediator>,
    view: Name,
}

impl ViewWrapper {
    /// Exports `view` of `mediator` (single-source or union). Returns
    /// `None` if no such view is registered.
    pub fn new(mediator: Arc<Mediator>, view: Name) -> Option<ViewWrapper> {
        mediator.view_dtd(view)?;
        Some(ViewWrapper { mediator, view })
    }
}

impl Wrapper for ViewWrapper {
    fn dtd(&self) -> &Dtd {
        self.mediator
            .view_dtd(self.view)
            .expect("checked at construction")
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        self.mediator
            .materialize(self.view)
            .map_err(as_source_error)
    }

    fn answer(&self, q: &Query) -> Result<Document, SourceError> {
        match self.mediator.query(q) {
            Ok(a) => Ok(a.document),
            // lower-source failures propagate up as source faults of this
            // wrapper, so a stacked mediator's own resilience layer can
            // retry / trip / degrade on them
            Err(e @ MediatorError::Source { .. }) | Err(e @ MediatorError::AllSourcesFailed(_)) => {
                Err(as_source_error(e))
            }
            // queries the lower mediator cannot route (e.g. root test not
            // naming the view) evaluate over the materialized document
            Err(_) => {
                let doc = self.fetch()?;
                Ok(mix_xmas::evaluate(q, &doc))
            }
        }
    }

    fn answer_batch(&self, queries: &[Query]) -> Vec<Result<Document, SourceError>> {
        self.mediator
            .answer_many(queries)
            .into_iter()
            .zip(queries)
            .map(|(r, q)| match r {
                Ok(a) => Ok(a.document),
                Err(e @ MediatorError::Source { .. })
                | Err(e @ MediatorError::AllSourcesFailed(_)) => Err(as_source_error(e)),
                Err(_) => {
                    let doc = self.fetch()?;
                    Ok(mix_xmas::evaluate(q, &doc))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::Mediator;
    use crate::source::XmlSource;
    use mix_dtd::paper::d1_department;
    use mix_relang::symbol::name;
    use mix_xmas::parse_query;
    use mix_xml::parse_document;

    fn lower() -> Arc<Mediator> {
        let mut m = Mediator::new();
        let doc = parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>a</title><author>x</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>d</title><author>x</author><journal/></publication>\
               </gradStudent></department>",
        )
        .unwrap();
        m.add_source(
            "cs",
            Arc::new(XmlSource::new(d1_department(), doc).unwrap()),
        );
        let v = parse_query(
            "withJournals = SELECT P WHERE <department> \
               P:<professor | gradStudent> <publication><journal/></publication> </> </>",
        )
        .unwrap();
        m.register_view("cs", &v).unwrap();
        Arc::new(m)
    }

    #[test]
    fn stacked_mediator_infers_from_view_dtd() {
        let low = lower();
        let wrapper = ViewWrapper::new(low.clone(), name("withJournals")).unwrap();
        // the exported DTD is the inferred view DTD
        assert_eq!(wrapper.dtd().doc_type, name("withJournals"));

        let mut upper = Mediator::new();
        upper.add_source("low", Arc::new(wrapper));
        let v2 =
            parse_query("profOnly = SELECT X WHERE <withJournals> X:<professor/> </withJournals>")
                .unwrap();
        let view2 = upper.register_view("low", &v2).unwrap();
        // the upper mediator inferred a DTD over the *view* DTD
        let root = view2
            .inferred
            .dtd
            .get(name("profOnly"))
            .unwrap()
            .regex()
            .unwrap();
        assert!(mix_relang::equivalent(
            root,
            &mix_relang::parse_regex("professor*").unwrap()
        ));
        // and querying through both levels works
        let q = parse_query("ans = SELECT F WHERE <profOnly> <professor> F:<firstName/> </> </>")
            .unwrap();
        let a = upper.query(&q).unwrap();
        assert_eq!(a.document.root.children().len(), 1);
        assert_eq!(a.document.root.children()[0].pcdata(), Some("Y"));
    }

    #[test]
    fn unknown_view_not_exported() {
        let low = lower();
        assert!(ViewWrapper::new(low, name("nope")).is_none());
    }
}
