//! Shared workload builders for the Criterion benches (one bench target
//! per experiment of `EXPERIMENTS.md`).

use mix_dtd::generate::{seeded_dtd, DtdGenConfig};
use mix_dtd::parse_compact;
use mix_dtd::sample::{DocConfig, DocSampler};
use mix_dtd::Dtd;
use mix_relang::ast::Regex;
use mix_relang::symbol::Name;
use mix_xmas::{parse_query, Query};
use mix_xml::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's department DTD (D1).
pub fn d1() -> Dtd {
    mix_dtd::paper::d1_department()
}

/// The paper's (Q2).
pub fn q2() -> Query {
    parse_query(
        "withJournals = SELECT P WHERE <department> <name>CS</name> \
           P:<professor | gradStudent> \
             <publication id=Pub1><journal/></publication> \
             <publication id=Pub2><journal/></publication> \
           </> </> AND Pub1 != Pub2",
    )
    .expect("Q2 parses")
}

/// The paper's (Q3).
pub fn q3() -> Query {
    parse_query(
        "publist = SELECT P WHERE <department> <name>CS</name> \
           <professor | gradStudent> P:<publication><journal/></publication> </> </>",
    )
    .expect("Q3 parses")
}

/// A balanced regex of roughly `size` leaves over `alphabet` names:
/// alternating concatenations of unions with scattered closures —
/// representative of real content models.
pub fn regex_of_size(size: usize, alphabet: usize, seed: u64) -> Regex {
    use rand::Rng;
    let names: Vec<Name> = (0..alphabet)
        .map(|i| Name::intern(&format!("x{i}")))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    fn build(budget: usize, names: &[Name], rng: &mut StdRng) -> Regex {
        if budget <= 1 {
            return Regex::name(names[rng.gen_range(0..names.len())]);
        }
        let split = rng.gen_range(1..budget);
        let (l, r) = (build(split, names, rng), build(budget - split, names, rng));
        let combined = if rng.gen_bool(0.5) {
            l.then(r)
        } else {
            l.or(r)
        };
        match rng.gen_range(0..4) {
            0 => Regex::star(combined),
            1 => Regex::opt(combined),
            _ => combined,
        }
    }
    build(size, &names, &mut rng)
}

/// A layered random DTD with `names` element names.
pub fn dtd_of_size(names: usize, seed: u64) -> Dtd {
    seeded_dtd(
        seed,
        &DtdGenConfig {
            names,
            ..DtdGenConfig::default()
        },
    )
}

/// A D1 department document with `professors` professors (each with two
/// journal publications and one conference publication) and as many
/// gradStudents — sized workloads for validation/evaluation benches.
pub fn department_of_size(professors: usize) -> Document {
    let mut s = String::from("<department><name>CS</name>");
    for i in 0..professors {
        s.push_str(&format!(
            "<professor><firstName>p{i}</firstName><lastName>l</lastName>\
             <publication><title>a{i}</title><author>x</author><journal/></publication>\
             <publication><title>b{i}</title><author>x</author><journal/></publication>\
             <publication><title>c{i}</title><author>x</author><conference/></publication>\
             <teaches/></professor>"
        ));
    }
    for i in 0..professors {
        s.push_str(&format!(
            "<gradStudent><firstName>g{i}</firstName><lastName>l</lastName>\
             <publication><title>d{i}</title><author>x</author><journal/></publication>\
            </gradStudent>"
        ));
    }
    s.push_str("</department>");
    mix_xml::parse_document(&s).expect("synthesized department parses")
}

/// `count` random valid documents for `dtd`.
pub fn documents_for(dtd: &Dtd, count: usize, seed: u64, max_nodes: usize) -> Vec<Document> {
    let cfg = DocConfig {
        max_nodes,
        ..DocConfig::default()
    };
    let sampler = DocSampler::new(dtd, cfg).expect("productive DTD");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| sampler.sample(&mut rng)).collect()
}

/// A deep chain DTD (`c0 : c1+ … c{k-1} : ck+, ck : PCDATA`) and a query
/// whose pick path descends all `k` levels — the InferList depth workload.
pub fn chain_workload(depth: usize) -> (Dtd, Query) {
    let mut src = String::from("{");
    for i in 0..depth {
        src.push_str(&format!("<c{i} : c{}+, other{i}?>", i + 1));
        src.push_str(&format!("<other{i} : EMPTY>"));
    }
    src.push_str(&format!("<c{depth} : PCDATA>}}"));
    let dtd = parse_compact(&src).expect("chain DTD parses");
    let mut q = String::from("v = SELECT P WHERE ");
    for i in 0..depth {
        if i == depth - 1 {
            q.push_str(&format!("P:<c{i}>"));
        } else {
            q.push_str(&format!("<c{i}>"));
        }
    }
    q.push_str(&format!("<other{}/>", depth - 1));
    for _ in 0..depth {
        q.push_str("</>");
    }
    let query = parse_query(&q).expect("chain query parses");
    (dtd, query)
}

/// The deep chain of [`chain_workload`] with every level widened by a
/// `width`-way alternation of leaf names — the regime where inference
/// cost is dominated by automata and memo work over *large* content
/// models (each level's type has `width + 2` distinct names), rather
/// than by the traversal itself.
pub fn wide_chain_workload(depth: usize, width: usize) -> (Dtd, Query) {
    let mut src = String::from("{");
    for i in 0..depth {
        let alts = (0..width)
            .map(|j| format!("a{i}_{j}"))
            .collect::<Vec<_>>()
            .join(" | ");
        src.push_str(&format!("<c{i} : ({alts})*, c{}+, other{i}?>", i + 1));
        for j in 0..width {
            src.push_str(&format!("<a{i}_{j} : EMPTY>"));
        }
        src.push_str(&format!("<other{i} : EMPTY>"));
    }
    src.push_str(&format!("<c{depth} : PCDATA>}}"));
    let dtd = parse_compact(&src).expect("wide chain DTD parses");
    let mut q = String::from("v = SELECT P WHERE ");
    for i in 0..depth {
        if i == depth - 1 {
            q.push_str(&format!("P:<c{i}>"));
        } else {
            q.push_str(&format!("<c{i}>"));
        }
    }
    q.push_str(&format!("<other{}/>", depth - 1));
    for _ in 0..depth {
        q.push_str("</>");
    }
    let query = parse_query(&q).expect("wide chain query parses");
    (dtd, query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders_work() {
        assert!(regex_of_size(64, 6, 1).size() >= 64);
        let d = dtd_of_size(20, 3);
        assert!(d.types.len() >= 20);
        let doc = department_of_size(10);
        assert!(mix_dtd::validate_document(&d1(), &doc).is_ok());
        let (cd, cq) = chain_workload(5);
        assert!(cd.undefined_names().is_empty());
        assert_eq!(cq.pick_path().unwrap().len(), 5);
        let (wd, wq) = wide_chain_workload(4, 6);
        assert!(wd.undefined_names().is_empty());
        assert_eq!(wq.pick_path().unwrap().len(), 4);
        assert!(!documents_for(&d1(), 3, 1, 80).is_empty());
    }
}
