//! The MIX mediator end to end, on the paper's running department
//! scenario: a wrapped source, a registered view with inferred DTD, the
//! DTD-based query interface, and the query processor's three execution
//! paths (simplifier-pruned / composed / materialized).
//!
//! ```sh
//! cargo run --example department_mediator
//! ```

use mix::dtd::paper::d1_department;
use mix::prelude::*;
use std::sync::Arc;

fn main() {
    // The wrapped source: a department repository exporting D1-typed XML.
    let doc = parse_document(
        "<department><name>CS</name>\
           <professor><firstName>Yannis</firstName><lastName>P</lastName>\
             <publication><title>Mediators</title><author>yp</author><journal/></publication>\
             <publication><title>MIX</title><author>yp</author><journal/></publication>\
             <teaches/></professor>\
           <professor><firstName>Victor</firstName><lastName>V</lastName>\
             <publication><title>Demo</title><author>vv</author><conference/></publication>\
             <teaches/></professor>\
           <gradStudent><firstName>Pavel</firstName><lastName>V</lastName>\
             <publication><title>DTDs</title><author>pv</author><journal/></publication>\
           </gradStudent>\
         </department>",
    )
    .expect("valid department document");
    let source = XmlSource::new(d1_department(), doc).expect("document satisfies D1");

    let mut mediator = Mediator::new();
    mediator.add_source("cs-dept", Arc::new(source));

    // The mediator administrator customizes a view: people with a journal
    // publication.
    let view_def = parse_query(
        "withJournals = SELECT P WHERE <department> <name>CS</name> \
           P:<professor | gradStudent> <publication><journal/></publication> </> </>",
    )
    .unwrap();
    let view = mediator
        .register_view("cs-dept", &view_def)
        .expect("view registers");
    println!("Registered view 'withJournals'; inferred view DTD:");
    println!("{}\n", view.inferred.dtd);

    // The DTD-based query interface shows the structure to the user.
    println!("DTD-based query interface structure summary:");
    println!("{}", render_structure(&view.inferred.dtd));

    // Path 1: the simplifier prunes a query the view DTD proves empty.
    let impossible = parse_query(
        "ans = SELECT C WHERE <withJournals> <professor> C:<course/> </> </withJournals>",
    )
    .unwrap();
    let a = mediator.query(&impossible).unwrap();
    println!(
        "query for courses inside view members → {:?} ({} results, source never contacted)",
        a.path,
        a.document.root.children().len()
    );
    assert_eq!(a.path, AnswerPath::PrunedUnsatisfiable);

    // Path 2: a member query composes with the view definition.
    let professors =
        parse_query("ans = SELECT X WHERE <withJournals> X:<professor/> </withJournals>").unwrap();
    let a = mediator.query(&professors).unwrap();
    println!(
        "query for professors in the view → {:?} ({} results)",
        a.path,
        a.document.root.children().len()
    );
    assert_eq!(a.path, AnswerPath::Composed);
    assert_eq!(a.document.root.children().len(), 1);

    // Path 3: an overlapping condition falls back to materialization.
    let titles = parse_query(
        "ans = SELECT T WHERE <withJournals> <professor | gradStudent> \
           <publication> T:<title/> </publication> </> </withJournals>",
    )
    .unwrap();
    let a = mediator.query(&titles).unwrap();
    println!(
        "query for titles in the view → {:?} ({} results)",
        a.path,
        a.document.root.children().len()
    );
    assert_eq!(a.path, AnswerPath::Materialized);
    println!(
        "\nview answer:\n{}",
        write_document(&a.document, WriteConfig::default())
    );
}
