//! Display of DTDs and s-DTDs in the paper's compact notation, which
//! [`crate::parse::parse_compact_sdtd`] parses back.

use crate::model::{ContentModel, Dtd, SDtd};
use std::fmt;

impl fmt::Display for ContentModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentModel::Pcdata => write!(f, "PCDATA"),
            ContentModel::Elements(r) => write!(f, "{r}"),
        }
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{ (document type: {})", self.doc_type)?;
        for (n, m) in self.types.iter() {
            writeln!(f, "  <{n} : {m}>")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for SDtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{ (document type: {})", self.doc_type)?;
        for (s, m) in self.types.iter() {
            writeln!(f, "  <{s} : {m}>")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::{parse_compact, parse_compact_sdtd};

    #[test]
    fn dtd_display_roundtrips() {
        let src = "{<r : a, b*> <a : PCDATA> <b : c?> <c : PCDATA>}";
        let d = parse_compact(src).unwrap();
        // the emitted "(document type: …)" annotation parses right back
        let again = parse_compact(&d.to_string()).unwrap();
        assert_eq!(d, again);
    }

    #[test]
    fn sdtd_display_shows_tags() {
        let s = parse_compact_sdtd("{<v : p^1, p*> <p : t> <p^1 : t, j> <t : PCDATA> <j : EMPTY>}")
            .unwrap();
        let shown = s.to_string();
        assert!(shown.contains("<p^1 : t, j>"));
        assert_eq!(parse_compact_sdtd(&shown).unwrap(), s);
    }
}
