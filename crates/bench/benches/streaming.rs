//! X21 — streaming evaluation of a document that dwarfs the matcher's
//! working set: generate a ≥100 MB D1 department document on disk with
//! the chunked writer, answer a journal-publication query in one pass
//! with `mix-stream`, and race the materialize-parse-evaluate path over
//! the same bytes.
//!
//! Custom harness (not Criterion): the acceptance criteria are byte-for-
//! byte answer identity plus a resident-state-to-document ratio, and the
//! machine-readable results land in `BENCH_PR8.json` at the
//! workspace root. The document size is tunable via `X21_MB` (default
//! 120) so CI can smoke the same binary at a few megabytes.

use mix_dtd::generate::{write_sized_document, ChunkedDocConfig};
use mix_stream::{stream_answer_to, CompiledQuery};
use mix_xmas::{evaluate, normalize};
use mix_xml::{parse_document, write_document, WriteConfig};
use std::io::{BufReader, BufWriter, Read};
use std::time::Instant;

fn mb_per_s(bytes: u64, secs: f64) -> f64 {
    bytes as f64 / (1 << 20) as f64 / secs
}

fn main() {
    let mb: u64 = std::env::var("X21_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let dtd = mix_bench::d1();
    let query = mix_xmas::parse_query(
        "publist = SELECT P WHERE <department> <professor | gradStudent> \
           P:<publication><journal/></publication> </> </department>",
    )
    .expect("X21 query parses");
    let nq = normalize(&query, &dtd).expect("X21 query normalizes");
    let cq = CompiledQuery::compile(&nq, Some(&dtd)).expect("X21 query is streamable");

    let path = std::env::temp_dir().join(format!("mix_x21_{}.xml", std::process::id()));
    let gen_cfg = ChunkedDocConfig {
        target_bytes: mb << 20,
        max_subtree_bytes: 64 << 10,
        ..ChunkedDocConfig::default()
    };
    let t = Instant::now();
    let doc_bytes = {
        let file = std::fs::File::create(&path).expect("create X21 document");
        let mut out = BufWriter::new(file);
        write_sized_document(&dtd, 0x21, gen_cfg, &mut out).expect("generate X21 document")
    };
    let gen_s = t.elapsed().as_secs_f64();
    println!(
        "X21: generated {:.1} MB of valid D1 department at {} ({:.0} MB/s)",
        doc_bytes as f64 / (1 << 20) as f64,
        path.display(),
        mb_per_s(doc_bytes, gen_s),
    );

    // Streaming pass: one sequential read, answer serialized as it resolves.
    let t = Instant::now();
    let mut streamed = Vec::new();
    let stats = {
        let file = std::fs::File::open(&path).expect("open X21 document");
        stream_answer_to(
            BufReader::new(file),
            &cq,
            WriteConfig::default(),
            &mut streamed,
        )
        .expect("streaming pass succeeds")
    };
    let stream_s = t.elapsed().as_secs_f64();
    let peak = stats.peak_state_bytes();
    println!(
        "X21: streamed {} bytes in {:.2} s ({:.0} MB/s): {} answers, \
         peak state {} bytes (matcher {} + reader {}), {}x smaller than the document",
        stats.bytes_read,
        stream_s,
        mb_per_s(stats.bytes_read, stream_s),
        stats.answers,
        peak,
        stats.peak_matcher_bytes,
        stats.reader_buffer_high_water,
        doc_bytes / peak.max(1) as u64,
    );

    // Materialize-parse-evaluate over the same bytes.
    let t = Instant::now();
    let mut text = String::new();
    std::fs::File::open(&path)
        .expect("open X21 document")
        .read_to_string(&mut text)
        .expect("read X21 document");
    let doc = parse_document(&text).expect("X21 document parses");
    let answer = evaluate(&nq, &doc);
    let reference = write_document(&answer, WriteConfig::default());
    let memory_s = t.elapsed().as_secs_f64();
    println!(
        "X21: in-memory read+parse+evaluate in {:.2} s ({:.0} MB/s)",
        memory_s,
        mb_per_s(doc_bytes, memory_s),
    );

    assert_eq!(
        stats.bytes_read, doc_bytes,
        "the stream must read every byte"
    );
    assert!(stats.answers > 0, "the X21 workload must produce answers");
    assert_eq!(
        streamed,
        reference.as_bytes(),
        "streamed answer must be byte-identical to the in-memory evaluator"
    );
    assert!(
        (peak as u64) * 50 < doc_bytes,
        "peak resident state ({peak} bytes) must be far below the document ({doc_bytes} bytes)"
    );
    std::fs::remove_file(&path).ok();

    let json = format!(
        "{{\n  \"experiment\": \"X21\",\n  \
         \"generated_by\": \"cargo bench -p mix-bench --bench streaming\",\n  \
         \"document\": {{ \"bytes\": {}, \"mb\": {:.1}, \"gen_mb_s\": {:.0} }},\n  \
         \"streaming\": {{ \"seconds\": {:.3}, \"mb_s\": {:.1}, \"answers\": {},\n    \
         \"peak_state_bytes\": {}, \"peak_matcher_bytes\": {}, \
         \"reader_buffer_high_water\": {},\n    \
         \"doc_to_state_ratio\": {} }},\n  \
         \"in_memory\": {{ \"seconds\": {:.3}, \"mb_s\": {:.1} }},\n  \
         \"byte_identical_answers\": true\n}}",
        doc_bytes,
        doc_bytes as f64 / (1 << 20) as f64,
        mb_per_s(doc_bytes, gen_s),
        stream_s,
        mb_per_s(doc_bytes, stream_s),
        stats.answers,
        peak,
        stats.peak_matcher_bytes,
        stats.reader_buffer_high_water,
        doc_bytes / peak.max(1) as u64,
        memory_s,
        mb_per_s(doc_bytes, memory_s),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
    std::fs::write(out, json + "\n").expect("write BENCH_PR8.json");
    println!("wrote {out}");
}
