//! Mechanical verification of the paper's Section 5 comparison between
//! dataguides and DTDs:
//!
//! * "they do not capture constraints on order and cardinality and they
//!   do not capture constraints on the siblings. In this respect they are
//!   less powerful than the DTDs" — [`find_blindness_witness`] constructs
//!   order/cardinality/sibling witnesses and the crate tests pin each
//!   case;
//! * "dataguides do not require the same type name to define the same
//!   type, so in this respect dataguides are similar to s-DTDs" —
//!   demonstrated in the crate tests and the `related_work` example.

use crate::guide::DataGuide;
use mix_dtd::validate::Validator;
use mix_dtd::Dtd;
use mix_xml::Document;

/// A pair of documents with identical dataguides but different validity
/// under `dtd` — proof that the guide cannot express a constraint the DTD
/// holds.
#[derive(Debug)]
pub struct BlindnessWitness {
    /// The document both formalisms accept.
    pub accepted: Document,
    /// The document the DTD rejects but the guide (built from `accepted`)
    /// still describes.
    pub confused: Document,
}

/// Checks whether `confused` witnesses guide-blindness of `dtd` relative
/// to the guide of `accepted`.
pub fn is_blindness_witness(dtd: &Dtd, w: &BlindnessWitness) -> bool {
    let v = Validator::new(dtd);
    let guide = DataGuide::of_document(&w.accepted);
    v.validate_document(&w.accepted).is_ok()
        && v.validate_document(&w.confused).is_err()
        && guide.describes(&w.confused)
}

/// Searches `docs` (valid under `dtd`) for an order/cardinality/sibling
/// constraint the dataguide misses: permutes and duplicates children of
/// the first valid document and returns the first variant the DTD rejects
/// but the guide describes.
pub fn find_blindness_witness(dtd: &Dtd, docs: &[Document]) -> Option<BlindnessWitness> {
    let v = Validator::new(dtd);
    for doc in docs {
        if v.validate_document(doc).is_err() {
            continue;
        }
        let guide = DataGuide::of_document(doc);
        for variant in variants(doc) {
            if v.validate_document(&variant).is_err() && guide.describes(&variant) {
                return Some(BlindnessWitness {
                    accepted: doc.clone(),
                    confused: variant,
                });
            }
        }
    }
    None
}

/// Child-list mutations that never create a new label path: reversals,
/// duplications, deletions.
fn variants(doc: &Document) -> Vec<Document> {
    use mix_xml::{Content, Element};
    fn mutate(e: &Element, out: &mut Vec<Element>) {
        if let Content::Elements(kids) = &e.content {
            if kids.len() >= 2 {
                // reverse
                let mut rev = e.clone();
                if let Content::Elements(k) = &mut rev.content {
                    k.reverse();
                }
                out.push(rev);
            }
            if !kids.is_empty() {
                // duplicate the first child
                let mut dup = e.clone();
                if let Content::Elements(k) = &mut dup.content {
                    let cloned = k[0].deep_clone_fresh();
                    k.push(cloned);
                }
                out.push(dup);
                // drop the first child
                let mut del = e.clone();
                if let Content::Elements(k) = &mut del.content {
                    k.remove(0);
                }
                out.push(del);
            }
            // recurse: mutate one child, keep the rest
            for (i, c) in kids.iter().enumerate() {
                let mut inner = Vec::new();
                mutate(c, &mut inner);
                for m in inner {
                    let mut parent = e.clone();
                    if let Content::Elements(k) = &mut parent.content {
                        k[i] = m;
                    }
                    out.push(parent);
                }
            }
        }
    }
    let mut roots = Vec::new();
    mutate(&doc.root, &mut roots);
    roots.into_iter().map(Document::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::parse_compact;
    use mix_xml::parse_document;

    #[test]
    fn order_blindness() {
        // DTD requires b before c; the guide can't see order.
        let dtd = parse_compact("{<a : b, c> <b : EMPTY> <c : EMPTY>}").unwrap();
        let accepted = parse_document("<a><b/><c/></a>").unwrap();
        let confused = parse_document("<a><c/><b/></a>").unwrap();
        let w = BlindnessWitness { accepted, confused };
        assert!(is_blindness_witness(&dtd, &w));
    }

    #[test]
    fn cardinality_blindness() {
        // DTD requires exactly one b.
        let dtd = parse_compact("{<a : b> <b : EMPTY>}").unwrap();
        let accepted = parse_document("<a><b/></a>").unwrap();
        let confused = parse_document("<a><b/><b/></a>").unwrap();
        assert!(is_blindness_witness(
            &dtd,
            &BlindnessWitness { accepted, confused }
        ));
    }

    #[test]
    fn sibling_blindness() {
        // DTD: either (b and c) or (d) — a sibling constraint.
        let dtd = parse_compact("{<a : (b, c) | d> <b : EMPTY> <c : EMPTY> <d : EMPTY>}").unwrap();
        let accepted = parse_document("<a><b/><c/></a>").unwrap();
        // b alone is describable by the guide (paths ⊆ {b,c}) but invalid
        let confused = parse_document("<a><b/></a>").unwrap();
        assert!(is_blindness_witness(
            &dtd,
            &BlindnessWitness { accepted, confused }
        ));
    }

    #[test]
    fn witness_search_finds_one_on_the_paper_dtd() {
        let dtd = mix_dtd::paper::d1_department();
        let doc = parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>G</firstName><lastName>S</lastName>\
                 <publication><title>u</title><author>a</author><conference/></publication>\
               </gradStudent></department>",
        )
        .unwrap();
        let w = find_blindness_witness(&dtd, &[doc]).expect("D1 has order constraints");
        assert!(is_blindness_witness(&dtd, &w));
    }

    #[test]
    fn guide_beats_dtd_on_context_dependence() {
        // the converse direction: one DTD type per name must union the
        // contexts, the guide keeps them separate — "similar to s-DTDs"
        let doc = parse_document("<r><x><b><c/></b></x><y><b><d/></b></y></r>").unwrap();
        let guide = DataGuide::of_document(&doc);
        // the best plain DTD for this document needs b : (c | d)? or looser
        let dtd =
            parse_compact("{<r : x, y> <x : b> <y : b> <b : (c | d)?> <c : EMPTY> <d : EMPTY>}")
                .unwrap();
        let v = Validator::new(&dtd);
        assert!(v.validate_document(&doc).is_ok());
        // the mixed-context document: DTD accepts, guide rejects
        let mixed = parse_document("<r><x><b><d/></b></x><y><b><c/></b></y></r>").unwrap();
        assert!(v.validate_document(&mixed).is_ok());
        assert!(!guide.describes(&mixed));
    }
}
