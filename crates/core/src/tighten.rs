//! The Tightening algorithm (Figure 2, Section 4.2).
//!
//! Walks a (normalized, tagged) tree condition against the source DTD,
//! refining one type per condition occurrence and collecting the refined
//! types into a specialized-DTD fragment. As a side effect it classifies
//! each condition — and the whole query — as *valid*, *satisfiable*, or
//! *unsatisfiable* with respect to the DTD (the side effect the paper
//! highlights at the end of Section 4.2, which the mediator's query
//! simplifier exploits).

use crate::refine::{refine, refine_id};
use mix_dtd::{ContentModel, Dtd, TypeMap};
use mix_relang::ast::Regex;
use mix_relang::pool::{self, ReId};
use mix_relang::symbol::{Name, Sym, Tag};
use mix_relang::{equivalent, is_subset, is_subset_id};
use mix_xmas::{Body, Condition, Query};
use std::collections::HashMap;

/// The classification of a condition (or query) against a DTD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// No document satisfying the DTD satisfies the condition; the view is
    /// certainly empty.
    Unsatisfiable,
    /// Some documents satisfy the condition, some may not.
    Satisfiable,
    /// Every document satisfying the DTD satisfies the condition.
    Valid,
}

impl Verdict {
    /// Conjunction of verdicts (the weaker one wins).
    pub fn and(self, other: Verdict) -> Verdict {
        self.min(other)
    }
}

/// Output of the tightening algorithm.
#[derive(Debug, Clone)]
pub struct Tightened {
    /// Refined type definitions, keyed by tagged name (`n^tag` holds the
    /// type refined for the condition carrying `tag`). Untagged
    /// dependencies are *not* pulled yet — the pipeline does that once the
    /// root type is known.
    pub types: TypeMap<Sym>,
    /// Overall verdict for the query's tree condition.
    pub verdict: Verdict,
    /// Verdict of each `(condition tag, element name)` pair: given an
    /// element of that name (typed by the *source* DTD), does its content
    /// always/sometimes/never satisfy the condition's subtree?
    pub per_name: HashMap<(Tag, Name), Verdict>,
    /// The *step* verdict of each condition occurrence: the verdict
    /// `apply_condition` returned for it — refine validity against the
    /// parent's (sequentially refined) type conjoined with the per-name
    /// body verdicts. `Valid` here means every parent instance certainly
    /// contains a (fresh) witness child for this condition.
    pub step: HashMap<Tag, Verdict>,
}

impl Tightened {
    /// The names of `cond.test` that can possibly satisfy `cond`'s subtree
    /// (verdict better than unsatisfiable), in test order.
    pub fn viable_names(&self, cond: &Condition) -> Vec<Name> {
        cond.test
            .names()
            .iter()
            .copied()
            .filter(|&n| {
                self.per_name
                    .get(&(cond.tag, n))
                    .is_some_and(|v| *v != Verdict::Unsatisfiable)
            })
            .collect()
    }
}

/// Runs the tightening algorithm for a normalized query against the source
/// DTD (Algorithm Tighten of Figure 2).
pub fn tighten(q: &Query, dtd: &Dtd) -> Tightened {
    let mut out = Tightened {
        types: TypeMap::new(),
        verdict: Verdict::Valid,
        per_name: HashMap::new(),
        step: HashMap::new(),
    };
    // The root condition applies to the root element, whose name is always
    // the document type.
    if !q.root.test.matches(dtd.doc_type) {
        out.verdict = Verdict::Unsatisfiable;
        return out;
    }
    let v = apply_to_name(dtd.doc_type, &q.root, dtd, &mut out);
    out.verdict = v;
    out
}

/// Applies `cond`'s *body* to an element named `n`: refines `n`'s source
/// type, stores it under `n^cond.tag`, records the per-name verdict, and
/// returns it.
fn apply_to_name(n: Name, cond: &Condition, dtd: &Dtd, out: &mut Tightened) -> Verdict {
    let v = match dtd.get(n) {
        None => Verdict::Unsatisfiable,
        Some(model) => {
            let (own, v) = tighten_body(model, &cond.body, dtd, out);
            if v != Verdict::Unsatisfiable {
                store(out, n.tagged(cond.tag), own);
            }
            v
        }
    };
    out.per_name.insert((cond.tag, n), v);
    v
}

/// Refines `model` by every child condition of `body` in turn.
fn tighten_body(
    model: &ContentModel,
    body: &Body,
    dtd: &Dtd,
    out: &mut Tightened,
) -> (ContentModel, Verdict) {
    match (model, body) {
        (ContentModel::Pcdata, Body::Text(_)) => {
            // The DTD cannot promise a specific string: satisfiable, never
            // valid.
            (ContentModel::Pcdata, Verdict::Satisfiable)
        }
        (ContentModel::Pcdata, Body::Children(conds)) if conds.is_empty() => {
            (ContentModel::Pcdata, Verdict::Valid)
        }
        (ContentModel::Pcdata, Body::Children(_)) => (ContentModel::Pcdata, Verdict::Unsatisfiable),
        (ContentModel::Elements(_), Body::Text(_)) => {
            // an element-content element never has string content
            (model.clone(), Verdict::Unsatisfiable)
        }
        (ContentModel::Elements(r), Body::Children(conds)) => {
            let mut t = r.clone();
            let mut v = Verdict::Valid;
            for c in conds {
                let (t2, vc) = apply_condition(&t, c, dtd, out);
                // a condition under a disjunctive parent is evaluated once
                // per parent name; keep the conservative minimum
                let merged = out.step.get(&c.tag).map_or(vc, |old| old.and(vc));
                out.step.insert(c.tag, merged);
                if vc == Verdict::Unsatisfiable {
                    return (model.clone(), Verdict::Unsatisfiable);
                }
                t = t2;
                v = v.and(vc);
            }
            (ContentModel::Elements(t), v)
        }
    }
}

/// One step of the tightening loop: requires `t` (the parent's current
/// refined type) to contain a child matching `c`, returning the refined
/// parent type and the step's verdict.
fn apply_condition(t: &Regex, c: &Condition, dtd: &Dtd, out: &mut Tightened) -> (Regex, Verdict) {
    // 1. which names of the test can satisfy the subtree at all?
    let mut viable: Vec<Name> = Vec::new();
    let mut child_v = Verdict::Valid;
    let mut test_names: Vec<Name> = c.test.names().to_vec();
    test_names.dedup();
    for n in test_names {
        let vn = apply_to_name(n, c, dtd, out);
        if vn != Verdict::Unsatisfiable {
            viable.push(n);
            child_v = child_v.and(vn);
        }
    }
    if viable.is_empty() {
        return (Regex::Empty, Verdict::Unsatisfiable);
    }
    // 2. refine the parent type: an (untagged) occurrence of a viable name
    //    must exist; tag the witness.
    // 3. verdict: the refinement is valid when it did not shrink the
    //    (image) language — "if the refinement included an elimination of a
    //    disjunct or a refinement of a star expression, indicate that the
    //    condition is not satisfied by all instances" (Figure 2).
    if pool::boxed_baseline() {
        let t2 = refine(t, &viable, c.tag);
        if t2.is_empty_lang() {
            return (Regex::Empty, Verdict::Unsatisfiable);
        }
        let refine_v = if is_subset(&t.image(), &t2.image()) {
            Verdict::Valid
        } else {
            Verdict::Satisfiable
        };
        return (t2, refine_v.and(child_v));
    }
    // Interned arm: the conditions loop in `tighten_body` refines the same
    // parent type repeatedly, so its image and the subset result are
    // pool/memo lookups after the first pass.
    let ti = pool::intern(t);
    let t2i = refine_id(ti, &viable, c.tag);
    if t2i == ReId::EMPTY {
        return (Regex::Empty, Verdict::Unsatisfiable);
    }
    let refine_v = if is_subset_id(pool::image_id(ti), pool::image_id(t2i)) {
        Verdict::Valid
    } else {
        Verdict::Satisfiable
    };
    (pool::to_regex(t2i), refine_v.and(child_v))
}

/// Stores a refined type, unioning content when the same tagged name is
/// refined by two different tree constraints ("we store the union of the
/// content of the refinements", Section 4.2). With normalization's
/// query-unique tags this only triggers for diamond-shaped reuse.
fn store(out: &mut Tightened, sym: Sym, model: ContentModel) {
    match (out.types.get(sym), model) {
        (None, m) => {
            out.types.insert(sym, m);
        }
        (Some(ContentModel::Elements(a)), ContentModel::Elements(b)) => {
            if !equivalent(a, &b) {
                let union = Regex::alt([a.clone(), b]);
                out.types.insert(sym, ContentModel::Elements(union));
            }
        }
        (Some(_), _) => { /* PCDATA: nothing to union */ }
    }
}

/// The side-effect API the paper advertises: classify a query against a
/// DTD without keeping the refined types.
pub fn classify_query(q: &Query, dtd: &Dtd) -> Verdict {
    tighten(q, dtd).verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::{d1_department, d9_professor};
    use mix_relang::parse_regex;
    use mix_relang::symbol::name;
    use mix_xmas::{normalize, parse_query};

    fn prep(src: &str, dtd: &Dtd) -> Query {
        normalize(&parse_query(src).unwrap(), dtd).unwrap()
    }

    #[test]
    fn q6_on_d9_refines_professor() {
        // Example 4.1: professors with a journal publication.
        let d = d9_professor();
        let q = prep(
            "answer = SELECT X WHERE X:<professor><journal/></professor>",
            &d,
        );
        let t = tighten(&q, &d);
        assert_eq!(t.verdict, Verdict::Satisfiable);
        let prof_tag = q.root.tag;
        let refined = t
            .types
            .get(name("professor").tagged(prof_tag))
            .unwrap()
            .regex()
            .unwrap();
        // image = name, (j|c)*, j, (j|c)*
        assert!(equivalent(
            &refined.image(),
            &parse_regex("name, (journal | conference)*, journal, (journal | conference)*")
                .unwrap()
        ));
    }

    #[test]
    fn verdict_valid_when_dtd_guarantees_condition() {
        let d = d1_department();
        // every department has a professor, every professor a publication
        let q = prep(
            "v = SELECT P WHERE <department> P:<professor><publication/></professor> </>",
            &d,
        );
        assert_eq!(classify_query(&q, &d), Verdict::Valid);
    }

    #[test]
    fn verdict_satisfiable_for_disjunct_removal() {
        let d = d1_department();
        let q = prep(
            "v = SELECT P WHERE <department> <professor> \
               P:<publication><journal/></publication> </> </>",
            &d,
        );
        assert_eq!(classify_query(&q, &d), Verdict::Satisfiable);
    }

    #[test]
    fn verdict_unsatisfiable_for_impossible_structure() {
        let d = d1_department();
        // departments have no direct journal children
        let q = prep(
            "v = SELECT J WHERE <department> J:<journal/> </department>",
            &d,
        );
        assert_eq!(classify_query(&q, &d), Verdict::Unsatisfiable);
        // a publication can have journal or conference but not... two
        // journals (only one (journal|conference) group):
        let q = prep(
            "v = SELECT P WHERE <department> <professor> P:<publication> \
               <journal id=A/> <journal id=B/> </publication> </> </> AND A != B",
            &d,
        );
        assert_eq!(classify_query(&q, &d), Verdict::Unsatisfiable);
    }

    #[test]
    fn root_name_mismatch_is_unsatisfiable() {
        let d = d1_department();
        let q = prep("v = SELECT P WHERE P:<professor/>", &d);
        assert_eq!(classify_query(&q, &d), Verdict::Unsatisfiable);
    }

    #[test]
    fn string_conditions_are_satisfiable_at_best() {
        let d = d1_department();
        let q = prep("v = SELECT D WHERE D:<department> <name>CS</name> </>", &d);
        assert_eq!(classify_query(&q, &d), Verdict::Satisfiable);
        // but a string condition on an element-content name is unsat
        let q = prep(
            "v = SELECT D WHERE D:<department> <professor>CS</professor> </>",
            &d,
        );
        assert_eq!(classify_query(&q, &d), Verdict::Unsatisfiable);
    }

    #[test]
    fn q2_stores_specialized_publication_types() {
        let d = d1_department();
        let q = prep(
            "withJournals = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> \
                 <publication id=Pub1><journal/></publication> \
                 <publication id=Pub2><journal/></publication> \
               </> </> AND Pub1 != Pub2",
            &d,
        );
        let t = tighten(&q, &d);
        assert_eq!(t.verdict, Verdict::Satisfiable);
        // two publication specializations with journal-only content
        let pubs: Vec<Sym> = t
            .types
            .keys()
            .filter(|s| s.name == name("publication") && !s.is_untagged())
            .collect();
        assert_eq!(pubs.len(), 2);
        for p in pubs {
            let r = t.types.get(p).unwrap().regex().unwrap();
            assert!(
                equivalent(&r.image(), &parse_regex("title, author+, journal").unwrap()),
                "unexpected refined publication type {r}"
            );
        }
        // professor refined type requires two distinct tagged publications
        let prof = t
            .types
            .keys()
            .find(|s| s.name == name("professor") && !s.is_untagged())
            .unwrap();
        let r = t.types.get(prof).unwrap().regex().unwrap();
        assert!(equivalent(
            &r.image(),
            &parse_regex(
                "firstName, lastName, publication*, publication, publication*, \
                 publication, publication*, teaches"
            )
            .unwrap()
        ));
    }

    #[test]
    fn viable_names_filters_unsatisfiable_disjuncts() {
        let d = d1_department();
        // teaches only exists under professor, so gradStudent is unviable
        let q = prep(
            "v = SELECT P WHERE <department> P:<professor | gradStudent> <teaches/> </> </>",
            &d,
        );
        let t = tighten(&q, &d);
        assert_eq!(t.verdict, Verdict::Valid);
        let pick = q.pick_node().unwrap();
        assert_eq!(t.viable_names(pick), vec![name("professor")]);
    }

    #[test]
    fn per_name_verdicts_recorded() {
        let d = d1_department();
        let q = prep(
            "v = SELECT P WHERE <department> P:<professor | gradStudent> \
               <publication><journal/></publication> </> </>",
            &d,
        );
        let t = tighten(&q, &d);
        let pick = q.pick_node().unwrap();
        assert_eq!(
            t.per_name[&(pick.tag, name("professor"))],
            Verdict::Satisfiable
        );
        assert_eq!(
            t.per_name[&(pick.tag, name("gradStudent"))],
            Verdict::Satisfiable
        );
    }

    #[test]
    fn empty_body_conditions_are_valid() {
        let d = d1_department();
        let q = prep("v = SELECT D WHERE D:<department/>", &d);
        assert_eq!(classify_query(&q, &d), Verdict::Valid);
    }
}
