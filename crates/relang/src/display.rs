//! Pretty-printing of content-model regexes in the paper's notation:
//! `,` for sequence, `|` for union, postfix `*`, `+`, `?`, with minimal
//! parentheses (`|` binds loosest, then `,`, then the postfix operators).

use crate::ast::Regex;
use std::fmt;

/// Operator precedence levels used when printing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Alt = 0,
    Concat = 1,
    Postfix = 2,
}

fn prec(r: &Regex) -> Prec {
    match r {
        Regex::Alt(_) => Prec::Alt,
        Regex::Concat(_) => Prec::Concat,
        _ => Prec::Postfix,
    }
}

fn write_at(r: &Regex, min: Prec, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let needs_parens = prec(r) < min;
    if needs_parens {
        write!(f, "(")?;
    }
    match r {
        Regex::Empty => write!(f, "∅")?,
        Regex::Epsilon => write!(f, "ε")?,
        Regex::Sym(s) => write!(f, "{s}")?,
        Regex::Concat(v) => {
            for (i, x) in v.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_at(x, Prec::Concat, f)?;
            }
        }
        Regex::Alt(v) => {
            for (i, x) in v.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write_at(x, Prec::Alt, f)?;
            }
        }
        Regex::Star(x) => {
            write_at(x, Prec::Postfix, f)?;
            write!(f, "*")?;
        }
        Regex::Plus(x) => {
            write_at(x, Prec::Postfix, f)?;
            write!(f, "+")?;
        }
        Regex::Opt(x) => {
            write_at(x, Prec::Postfix, f)?;
            write!(f, "?")?;
        }
    }
    if needs_parens {
        write!(f, ")")?;
    }
    Ok(())
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_at(self, Prec::Alt, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn r(s: &str) -> Regex {
        crate::parser::parse_regex(s).expect("test regex parses")
    }

    #[test]
    fn minimal_parens() {
        assert_eq!(r("a, b | c").to_string(), "a, b | c");
        assert_eq!(r("a, (b | c)").to_string(), "a, (b | c)");
        assert_eq!(r("(a, b)*").to_string(), "(a, b)*");
        assert_eq!(r("a*, b+").to_string(), "a*, b+");
        assert_eq!(r("(a | b)?").to_string(), "(a | b)?");
    }

    #[test]
    fn atoms() {
        assert_eq!(Regex::Empty.to_string(), "∅");
        assert_eq!(Regex::Epsilon.to_string(), "ε");
        assert_eq!(Regex::Sym(sym("x")).to_string(), "x");
    }

    #[test]
    fn roundtrip_through_parser() {
        for src in [
            "a",
            "a, b, c",
            "a | b | c",
            "(a, b) | c",
            "a, (b | c), d*",
            "((a | b)+, c?)*",
            "name, (journal | conference)*",
        ] {
            let once = r(src);
            let again = crate::parser::parse_regex(&once.to_string()).expect("reparses");
            assert_eq!(once, again, "display/parse roundtrip for {src}");
        }
    }
}
