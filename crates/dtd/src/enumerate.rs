//! Bounded exhaustive enumeration of the documents a DTD describes —
//! used by the structural-tightness experiments to find concrete
//! structures a merged view DTD admits but the view can never produce
//! (Section 3.2).
//!
//! Enumerated documents are *representatives* of structural classes
//! (Definition 3.5): every PCDATA leaf carries the same placeholder
//! string, so distinct enumerated documents are in distinct classes.

use crate::model::{ContentModel, Dtd};
use mix_relang::symbol::Name;
use mix_relang::Dfa;
use mix_xml::{Content, Document, ElemId, Element};
use std::collections::HashMap;

/// The placeholder PCDATA value used for representatives.
pub const PLACEHOLDER: &str = "s";

struct Enumerator<'d> {
    dtd: &'d Dtd,
    dfas: HashMap<Name, Dfa>,
    memo: HashMap<(Name, usize), Vec<Element>>,
    cap: usize,
}

impl Enumerator<'_> {
    /// All element shapes for `name` with at most `budget` nodes (≥ 1),
    /// capped at `self.cap` per (name, budget).
    fn gen(&mut self, name: Name, budget: usize) -> Vec<Element> {
        if budget == 0 {
            return Vec::new();
        }
        if let Some(hit) = self.memo.get(&(name, budget)) {
            // fresh IDs on every reuse, so assembled documents never
            // contain duplicate IDs
            return hit.iter().map(Element::deep_clone_fresh).collect();
        }
        let out = match self.dtd.get(name) {
            None => Vec::new(),
            Some(ContentModel::Pcdata) => vec![Element {
                name,
                id: ElemId::fresh(),
                content: Content::Text(PLACEHOLDER.to_owned()),
            }],
            Some(ContentModel::Elements(_)) => {
                let dfa = self.dfas.get(&name).expect("compiled with the DTD").clone();
                let words = dfa.enumerate_words(budget - 1, self.cap * 4);
                let mut shapes = Vec::new();
                'words: for w in words {
                    if w.len() > budget - 1 {
                        continue;
                    }
                    // cartesian product of child shapes with total ≤ budget-1
                    let mut partials: Vec<(Vec<Element>, usize)> = vec![(Vec::new(), 0)];
                    for sym in &w {
                        let mut next = Vec::new();
                        for (children, used) in &partials {
                            // reserve one node for each not-yet-placed child
                            let reserved = w.len() - children.len() - 1;
                            let remaining = (budget - 1).saturating_sub(used + reserved);
                            for child in self.gen(sym.name, remaining) {
                                let sz = child.size();
                                let mut c2: Vec<Element> =
                                    children.iter().map(Element::deep_clone_fresh).collect();
                                c2.push(child);
                                next.push((c2, used + sz));
                                if next.len() > self.cap * 4 {
                                    break;
                                }
                            }
                        }
                        partials = next;
                        if partials.is_empty() {
                            continue 'words;
                        }
                    }
                    for (children, _) in partials {
                        shapes.push(Element {
                            name,
                            id: ElemId::fresh(),
                            content: Content::Elements(children),
                        });
                        if shapes.len() >= self.cap {
                            break 'words;
                        }
                    }
                }
                shapes
            }
        };
        self.memo.insert((name, budget), out.clone());
        out
    }
}

/// Enumerates up to `cap` documents of at most `max_size` element nodes
/// satisfying `d`, smallest first (roughly).
pub fn enumerate_documents(d: &Dtd, max_size: usize, cap: usize) -> Vec<Document> {
    let mut dfas = HashMap::new();
    for (n, m) in d.types.iter() {
        if let ContentModel::Elements(r) = m {
            dfas.insert(n, Dfa::from_regex(r));
        }
    }
    let mut e = Enumerator {
        dtd: d,
        dfas,
        memo: HashMap::new(),
        cap,
    };
    let mut out: Vec<Document> = e
        .gen(d.doc_type, max_size)
        .into_iter()
        .map(Document::new)
        .collect();
    out.sort_by_key(Document::size);
    out.truncate(cap);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_documents_upto;
    use crate::parse::parse_compact;
    use crate::validate::satisfies;

    #[test]
    fn enumerated_documents_are_valid_and_distinct() {
        let d = parse_compact("{<r : (a | b)*, c?> <a : PCDATA> <b : EMPTY> <c : b*>}").unwrap();
        let docs = enumerate_documents(&d, 5, 10_000);
        for doc in &docs {
            assert!(satisfies(&d, doc), "invalid enumerated doc");
            assert!(doc.size() <= 5);
        }
        // distinct structural classes
        let mut skels: Vec<_> = docs
            .iter()
            .map(|doc| mix_xml::Skeleton::of(&doc.root))
            .collect();
        let n = skels.len();
        skels.sort_by_key(|s| format!("{s:?}"));
        skels.dedup();
        assert_eq!(skels.len(), n, "duplicate structures enumerated");
    }

    #[test]
    fn enumeration_agrees_with_counting() {
        for (src, max) in [
            ("{<r : a*> <a : PCDATA>}", 6),
            ("{<r : (a | b)*> <a : PCDATA> <b : EMPTY>}", 5),
            ("{<t : (t, t)?>}", 7),
            ("{<r : a, (b | c)> <a : PCDATA> <b : EMPTY> <c : a?>}", 6),
        ] {
            let d = parse_compact(src).unwrap();
            let counted = count_documents_upto(&d, max);
            let enumerated = enumerate_documents(&d, max, 1_000_000).len() as u128;
            assert_eq!(counted, enumerated, "count vs enumerate for {src}");
        }
    }

    #[test]
    fn cap_is_respected() {
        let d = parse_compact("{<r : (a | b)*> <a : PCDATA> <b : EMPTY>}").unwrap();
        let docs = enumerate_documents(&d, 10, 17);
        assert_eq!(docs.len(), 17);
    }

    #[test]
    fn recursive_enumeration_terminates() {
        let d = crate::paper::section_recursive();
        let docs = enumerate_documents(&d, 9, 500);
        assert!(!docs.is_empty());
        for doc in &docs {
            assert!(satisfies(&d, doc));
        }
    }
}
