//! Store engine tests: roundtrips, generation management, and the
//! adversarial pair — byte-level corruption fuzzing and crash-point
//! enumeration. The invariant under attack is always the same: loading
//! never panics and never returns an entry that differs from what cold
//! inference would compute; at worst the store degrades to cold.

use super::*;
use mix_infer::InferenceCache;
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> TempDir {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mix-store-test-{}-{label}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Canonical render of a view — "byte-identical" in the acceptance
/// criteria means these strings match exactly.
fn render(iv: &InferredView) -> String {
    let names: Vec<&str> = iv.merged_names.iter().map(|n| n.as_str()).collect();
    format!(
        "{}\n{}\n{}\n{:?}\n{}\n{:?}",
        iv.query, iv.sdtd, iv.dtd, iv.verdict, iv.list_type, names
    )
}

/// Real inference results over the paper's D1 — the entries every test
/// persists and reloads.
fn sample_views() -> Vec<(Fingerprint, InferredView)> {
    let source = mix_dtd::paper::d1_department();
    let queries = [
        "publist = SELECT P WHERE <department> <name>CS</name> \
         <professor | gradStudent> P:<publication><journal/></publication> </> </>",
        "profs = SELECT P WHERE <department> P:<professor/> </>",
        "grads = SELECT G WHERE <department> G:<gradStudent><advisor/></gradStudent> </>",
    ];
    queries
        .iter()
        .map(|src| {
            let q = mix_xmas::parse_query(src).unwrap();
            let fp = InferenceCache::fingerprint(&q, &source).unwrap();
            let iv = mix_infer::infer_view_dtd(&q, &source).unwrap();
            (fp, iv)
        })
        .collect()
}

fn open(dir: &Path) -> (Store, Registry) {
    let registry = Registry::new();
    let store = Store::open(dir, &registry).unwrap();
    (store, registry)
}

/// Asserts every loaded entry matches the cold reference for its
/// fingerprint — the "never wrong, at worst missing" invariant.
fn assert_subset_of(
    loaded: &[(Fingerprint, InferredView)],
    reference: &[(Fingerprint, InferredView)],
) {
    for (fp, iv) in loaded {
        let (_, expect) = reference
            .iter()
            .find(|(rfp, _)| rfp == fp)
            .unwrap_or_else(|| panic!("loaded a fingerprint never stored: {fp:?}"));
        assert_eq!(render(iv), render(expect), "loaded entry differs from cold");
    }
}

fn dedup_count(loaded: &[(Fingerprint, InferredView)]) -> usize {
    let mut fps: Vec<Fingerprint> = loaded.iter().map(|(fp, _)| *fp).collect();
    fps.sort_by_key(|fp| (fp.query, fp.dtd));
    fps.dedup();
    fps.len()
}

#[test]
fn wal_roundtrip_warm_starts_byte_identical() {
    let dir = TempDir::new("wal-roundtrip");
    let views = sample_views();
    {
        let (store, _) = open(dir.path());
        for (fp, iv) in &views {
            store.append_view(fp, iv);
        }
        assert_eq!(store.stats().writes, views.len() as u64);
        assert!(store.stats().bytes > 0);
    }
    let (store, _) = open(dir.path());
    let loaded = store.load();
    assert_eq!(loaded.len(), views.len());
    assert_subset_of(&loaded, &views);
    assert_eq!(store.stats().loads, views.len() as u64);
    assert_eq!(store.stats().load_skipped, 0);
}

#[test]
fn sat_verdicts_roundtrip_and_survive_compaction() {
    let dir = TempDir::new("sat-roundtrip");
    let source = mix_dtd::paper::d1_department();
    let q =
        mix_xmas::parse_query("x = SELECT C WHERE <department> <professor> C:<course/> </> </>")
            .unwrap();
    let expect = mix_infer::check_sat(&q, &source);
    assert!(expect.is_unsat(), "fixture must be unsat");
    // write-behind through the WarmStore seam
    let fp = InferenceCache::fingerprint(&q, &source).unwrap();
    {
        let (store, _) = open(dir.path());
        store.record_sat_verdict(&fp, &expect);
    }
    // wal reload
    {
        let (store, _) = open(dir.path());
        let verdicts = store.load_sat_verdicts();
        assert_eq!(verdicts, vec![(fp, expect.clone())]);
    }
    // compaction re-emits the verdicts into the snapshot
    {
        let (store, _) = open(dir.path());
        store.load();
        store.compact_now(&[]).unwrap();
    }
    let (store, _) = open(dir.path());
    assert_eq!(store.load_sat_verdicts(), vec![(fp, expect)]);
}

#[test]
fn compaction_snapshots_truncates_wal_and_drops_old_generations() {
    let dir = TempDir::new("compaction");
    let views = sample_views();
    let arcs: Vec<(Fingerprint, Arc<InferredView>)> = views
        .iter()
        .map(|(fp, iv)| (*fp, Arc::new(iv.clone())))
        .collect();
    let (store, _) = open(dir.path());
    for (fp, iv) in &views {
        store.append_view(fp, iv);
    }
    let gen = store.compact_now(&arcs).unwrap();
    assert_eq!(gen, 1);
    assert!(dir.path().join("gen-00000001.snap").exists());
    assert_eq!(
        std::fs::read(dir.path().join("wal.log")).unwrap(),
        MAGIC.to_vec(),
        "compaction must leave an empty (header-only) wal"
    );
    // a second compaction supersedes and removes the first generation
    let gen = store.compact_now(&arcs).unwrap();
    assert_eq!(gen, 2);
    assert!(!dir.path().join("gen-00000001.snap").exists());
    assert!(dir.path().join("gen-00000002.snap").exists());
    assert_eq!(store.stats().compactions, 2);

    let (fresh, _) = open(dir.path());
    let loaded = fresh.load();
    assert_subset_of(&loaded, &views);
    assert_eq!(dedup_count(&loaded), views.len());
    // the snapshot also carries pool slots + inclusions, all re-validated
    assert!(fresh.stats().loads >= views.len() as u64);
    assert_eq!(fresh.stats().load_skipped, 0);
}

#[test]
fn wal_appends_after_compaction_survive() {
    let dir = TempDir::new("wal-after-compact");
    let views = sample_views();
    let (store, _) = open(dir.path());
    let head: Vec<(Fingerprint, Arc<InferredView>)> = views[..1]
        .iter()
        .map(|(fp, iv)| (*fp, Arc::new(iv.clone())))
        .collect();
    store.compact_now(&head).unwrap();
    // post-compaction misses append to the recreated wal
    for (fp, iv) in &views[1..] {
        store.append_view(fp, iv);
    }
    let (fresh, _) = open(dir.path());
    let loaded = fresh.load();
    assert_subset_of(&loaded, &views);
    assert_eq!(dedup_count(&loaded), views.len());
}

#[test]
fn unknown_record_kinds_are_skipped_not_fatal() {
    let dir = TempDir::new("unknown-kind");
    let views = sample_views();
    let (store, _) = open(dir.path());
    store.append_view(&views[0].0, &views[0].1);
    // splice a validly-framed record of a future kind into the wal
    let mut wal = std::fs::read(dir.path().join("wal.log")).unwrap();
    wal.extend_from_slice(&frame(9, b"from a newer version"));
    std::fs::write(dir.path().join("wal.log"), &wal).unwrap();
    store.append_view(&views[1].0, &views[1].1);

    let (fresh, _) = open(dir.path());
    let loaded = fresh.load();
    assert_eq!(loaded.len(), 2);
    assert_subset_of(&loaded, &views);
    assert_eq!(fresh.stats().load_skipped, 1);
}

#[test]
fn missing_dir_contents_load_cold() {
    let dir = TempDir::new("cold");
    let (store, _) = open(dir.path());
    assert!(store.load().is_empty());
    assert_eq!(store.stats(), StoreStats::default());
}

/// The fuzz half of the corruption satellite: flip one bit at *every*
/// byte offset of a full generation snapshot. Loading must never panic
/// and must never hand back an entry that differs from cold inference.
#[test]
fn every_byte_flip_of_a_generation_loads_safely() {
    let build = TempDir::new("fuzz-build");
    let views = sample_views();
    let arcs: Vec<(Fingerprint, Arc<InferredView>)> = views
        .iter()
        .map(|(fp, iv)| (*fp, Arc::new(iv.clone())))
        .collect();
    let (builder, _) = open(build.path());
    builder.compact_now(&arcs).unwrap();
    let pristine = std::fs::read(build.path().join("gen-00000001.snap")).unwrap();

    let dir = TempDir::new("fuzz-run");
    let snap = dir.path().join("gen-00000001.snap");
    for i in 0..pristine.len() {
        let mut bad = pristine.clone();
        bad[i] ^= 0x04;
        std::fs::write(&snap, &bad).unwrap();
        let (store, _) = open(dir.path());
        let loaded = store.load();
        assert_subset_of(&loaded, &views);
        let stats = store.stats();
        assert!(
            dedup_count(&loaded) == views.len() || stats.load_skipped > 0,
            "flip at byte {i} dropped entries without counting a skip"
        );
    }
}

/// The truncation half: cut the snapshot at every length. Same invariant.
#[test]
fn every_truncation_of_a_generation_loads_safely() {
    let build = TempDir::new("trunc-build");
    let views = sample_views();
    let arcs: Vec<(Fingerprint, Arc<InferredView>)> = views
        .iter()
        .map(|(fp, iv)| (*fp, Arc::new(iv.clone())))
        .collect();
    let (builder, _) = open(build.path());
    builder.compact_now(&arcs).unwrap();
    let pristine = std::fs::read(build.path().join("gen-00000001.snap")).unwrap();

    // cuts at a frame boundary leave a well-formed shorter file — the
    // same shape a wal has after a SIGKILL mid-append — so they load
    // cleanly with fewer entries and correctly count no skip
    let mut boundaries = vec![MAGIC.len()];
    {
        let mut pos = MAGIC.len();
        while pos + 5 <= pristine.len() {
            let len = u32::from_le_bytes(pristine[pos + 1..pos + 5].try_into().unwrap()) as usize;
            pos += len + 1 + 4 + 8;
            boundaries.push(pos);
        }
    }

    let dir = TempDir::new("trunc-run");
    let snap = dir.path().join("gen-00000001.snap");
    for cut in 0..pristine.len() {
        std::fs::write(&snap, &pristine[..cut]).unwrap();
        let (store, _) = open(dir.path());
        let loaded = store.load();
        assert_subset_of(&loaded, &views);
        let stats = store.stats();
        assert!(
            dedup_count(&loaded) == views.len()
                || stats.load_skipped > 0
                || boundaries.contains(&cut),
            "cut at byte {cut} dropped entries without counting a skip"
        );
    }
}

/// Deterministic enumeration of the compaction crash windows. Each state
/// is built on disk exactly as a crash would leave it; every one must
/// load the union of generation-1 and the wal with nothing wrong.
#[test]
fn crash_points_mid_compaction_leave_the_store_loadable() {
    let views = sample_views();
    let set_a: Vec<(Fingerprint, Arc<InferredView>)> = views[..2]
        .iter()
        .map(|(fp, iv)| (*fp, Arc::new(iv.clone())))
        .collect();

    // the pre-crash state: gen-1 holds A, the wal holds B (a later miss)
    let seed = TempDir::new("crash-seed");
    let (store, _) = open(seed.path());
    store.compact_now(&set_a).unwrap();
    store.append_view(&views[2].0, &views[2].1);
    let gen1 = std::fs::read(seed.path().join("gen-00000001.snap")).unwrap();
    let wal = std::fs::read(seed.path().join("wal.log")).unwrap();
    // what the *completed* next compaction would have written
    let done = TempDir::new("crash-done");
    let (all_store, _) = open(done.path());
    let set_all: Vec<(Fingerprint, Arc<InferredView>)> = views
        .iter()
        .map(|(fp, iv)| (*fp, Arc::new(iv.clone())))
        .collect();
    all_store.compact_now(&set_all).unwrap();
    let gen2 = std::fs::read(done.path().join("gen-00000001.snap")).unwrap();

    let build = |label: &str, files: &[(&str, &[u8])]| -> TempDir {
        let dir = TempDir::new(label);
        for (name, bytes) in files {
            std::fs::write(dir.path().join(name), bytes).unwrap();
        }
        dir
    };

    let mut states: Vec<(String, TempDir)> = Vec::new();
    // crash while writing the tmp file, at every possible length: the
    // tmp is never read, so the previous generation must load untouched
    for cut in [
        0,
        1,
        gen2.len() / 2,
        gen2.len().saturating_sub(1),
        gen2.len(),
    ] {
        states.push((
            format!("tmp-cut-{cut}"),
            build(
                "crash-tmp",
                &[
                    ("gen-00000001.snap", &gen1[..]),
                    ("wal.log", &wal[..]),
                    ("gen-00000002.snap.tmp", &gen2[..cut]),
                ],
            ),
        ));
    }
    // crash after the rename, before the wal truncate: the stale wal
    // replays entries the snapshot already holds — idempotent
    states.push((
        "renamed-stale-wal".into(),
        build(
            "crash-rename",
            &[
                ("gen-00000001.snap", &gen1[..]),
                ("gen-00000002.snap", &gen2[..]),
                ("wal.log", &wal[..]),
            ],
        ),
    ));
    // crash after the wal truncate, before the old generation is removed:
    // the newest generation wins
    states.push((
        "old-gen-lingers".into(),
        build(
            "crash-unlink",
            &[
                ("gen-00000001.snap", &gen1[..]),
                ("gen-00000002.snap", &gen2[..]),
                ("wal.log", &MAGIC[..]),
            ],
        ),
    ));

    for (label, dir) in &states {
        let (store, _) = open(dir.path());
        let loaded = store.load();
        assert_subset_of(&loaded, &views);
        assert_eq!(
            dedup_count(&loaded),
            views.len(),
            "crash state {label} lost committed entries"
        );
        assert_eq!(
            store.stats().load_skipped,
            0,
            "crash state {label} should load cleanly, not by skipping"
        );
    }
}

#[test]
fn warm_store_round_trip_through_the_inference_cache() {
    let dir = TempDir::new("cache-integration");
    let source = mix_dtd::paper::d1_department();
    let q =
        mix_xmas::parse_query("profs = SELECT P WHERE <department> P:<professor/> </>").unwrap();

    // first process: miss → write-behind → clean-shutdown compaction
    let cold_render;
    {
        let registry = Registry::new();
        let store: Arc<Store> = Arc::new(Store::open(dir.path(), &registry).unwrap());
        let cache = InferenceCache::with_store(registry, Arc::clone(&store) as _);
        cold_render = render(&cache.infer(&q, &source).unwrap());
        assert_eq!(store.stats().writes, 1);
        assert!(cache.compact_store());
    }

    // second process: the entry is resident before the first lookup
    let registry = Registry::new();
    let store: Arc<Store> = Arc::new(Store::open(dir.path(), &registry).unwrap());
    let cache = InferenceCache::with_store(registry, store as _);
    let warm = cache.infer(&q, &source).unwrap();
    assert_eq!(render(&warm), cold_render);
    assert_eq!(
        cache.stats().hits,
        1,
        "the warm start must hit, not re-infer"
    );
    assert_eq!(cache.stats().misses, 0);
}
