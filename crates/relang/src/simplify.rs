//! Language-preserving regex simplification.
//!
//! The Merge algorithm (Section 4.3) produces verbose unions such as
//!
//! ```text
//! (publication*, publication, publication*, publication, publication*)
//!   | (publication*, publication, publication*, publication, publication*)
//! ```
//!
//! which the paper notes "can be simplified to the DTD (D2)". This module
//! implements that simplification step as a terminating rewrite system:
//!
//! 1. smart-constructor normalization (flattening, unit/zero laws,
//!    `r|ε → r?`, `(r+)? → r*`, …),
//! 2. *counted-factor collapse*: maximal runs of concatenation factors that
//!    share a base `b` (`b`, `b*`, `b+`, `b?`) are replaced by the minimal
//!    `{min,max}` rendering (`b, b, b*` for "at least two", …),
//! 3. common prefix/suffix factoring of unions (`(a,b) | (a,c) → a, (b|c)`),
//! 4. union-branch subsumption via exact language inclusion (bounded by
//!    regex size so pathological inputs stay cheap).
//!
//! Every rule preserves the language; `simplify` additionally
//! `debug_assert!`s equivalence with the input.

use crate::ast::Regex;
use crate::ops::{equivalent, is_subset};

/// Size bound above which the (automata-based) subsumption rule is skipped.
const SUBSUMPTION_SIZE_LIMIT: usize = 512;
/// Fixpoint iteration cap; rewriting is strictly size-reducing in practice
/// but we bound it defensively.
const MAX_PASSES: usize = 16;

/// The `(min, max)` occurrence count of a factor run; `None` = unbounded.
#[derive(Clone, Copy)]
struct Count {
    min: u32,
    max: Option<u32>,
}

/// The base and count of a single concat factor.
fn factor_base(r: &Regex) -> (&Regex, Count) {
    match r {
        Regex::Star(b) => (b, Count { min: 0, max: None }),
        Regex::Plus(b) => (b, Count { min: 1, max: None }),
        Regex::Opt(b) => (
            b,
            Count {
                min: 0,
                max: Some(1),
            },
        ),
        other => (
            other,
            Count {
                min: 1,
                max: Some(1),
            },
        ),
    }
}

fn render_counted(base: &Regex, c: Count) -> Regex {
    let mut parts: Vec<Regex> = Vec::new();
    for _ in 0..c.min {
        parts.push(base.clone());
    }
    match c.max {
        None => {
            if c.min == 0 {
                parts.push(Regex::star(base.clone()));
            } else {
                // render the last mandatory copy as b+ for compactness
                parts.pop();
                parts.push(Regex::plus(base.clone()));
            }
        }
        Some(max) => {
            for _ in c.min..max {
                parts.push(Regex::opt(base.clone()));
            }
        }
    }
    Regex::concat(parts)
}

/// Collapses runs of same-base factors inside a (already simplified) concat.
fn collapse_concat(parts: Vec<Regex>) -> Regex {
    let mut out: Vec<Regex> = Vec::new();
    let mut run: Option<(Regex, Count)> = None;
    let flush = |run: &mut Option<(Regex, Count)>, out: &mut Vec<Regex>| {
        if let Some((base, c)) = run.take() {
            out.push(render_counted(&base, c));
        }
    };
    for p in parts {
        let (base, c) = factor_base(&p);
        match &mut run {
            Some((rb, rc)) if rb == base => {
                rc.min += c.min;
                rc.max = match (rc.max, c.max) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                };
            }
            _ => {
                flush(&mut run, &mut out);
                run = Some((base.clone(), c));
            }
        }
    }
    flush(&mut run, &mut out);
    Regex::concat(out)
}

fn as_factors(r: &Regex) -> Vec<Regex> {
    match r {
        Regex::Concat(v) => v.clone(),
        Regex::Epsilon => vec![],
        other => vec![other.clone()],
    }
}

/// Factors the longest common prefix and suffix out of a union's branches
/// when *all* branches share them. `(a,b)|(a,c) → a,(b|c)`.
fn factor_union(branches: &[Regex]) -> Option<Regex> {
    if branches.len() < 2 {
        return None;
    }
    let factored: Vec<Vec<Regex>> = branches.iter().map(as_factors).collect();
    let min_len = factored.iter().map(Vec::len).min().unwrap_or(0);
    let mut prefix = 0;
    while prefix < min_len && factored.iter().all(|f| f[prefix] == factored[0][prefix]) {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < min_len - prefix
        && factored
            .iter()
            .all(|f| f[f.len() - 1 - suffix] == factored[0][factored[0].len() - 1 - suffix])
    {
        suffix += 1;
    }
    if prefix == 0 && suffix == 0 {
        return None;
    }
    let head = Regex::concat(factored[0][..prefix].iter().cloned());
    let tail = Regex::concat(factored[0][factored[0].len() - suffix..].iter().cloned());
    let middle = Regex::alt(
        factored
            .iter()
            .map(|f| Regex::concat(f[prefix..f.len() - suffix].iter().cloned())),
    );
    Some(Regex::concat([head, middle, tail]))
}

/// Drops union branches whose language is included in another branch.
fn subsume_union(branches: Vec<Regex>) -> Vec<Regex> {
    let total: usize = branches.iter().map(Regex::size).sum();
    if total > SUBSUMPTION_SIZE_LIMIT {
        return branches;
    }
    let mut keep: Vec<Regex> = Vec::new();
    'outer: for (i, b) in branches.iter().enumerate() {
        for (j, other) in branches.iter().enumerate() {
            if i == j {
                continue;
            }
            // Drop b if it is included in a *different* branch; ties (equal
            // languages) are broken by index so exactly one survives.
            if is_subset(b, other) && (!is_subset(other, b) || j < i) {
                continue 'outer;
            }
        }
        keep.push(b.clone());
    }
    if keep.is_empty() {
        branches
    } else {
        keep
    }
}

fn pass(r: &Regex) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon | Regex::Sym(_) => r.clone(),
        Regex::Concat(v) => {
            let parts: Vec<Regex> = v.iter().map(pass).collect();
            match Regex::concat(parts) {
                Regex::Concat(parts) => collapse_concat(parts),
                other => other,
            }
        }
        Regex::Alt(v) => {
            let parts: Vec<Regex> = v.iter().map(pass).collect();
            match Regex::alt(parts) {
                Regex::Alt(parts) => {
                    let parts = subsume_union(parts);
                    if let Some(f) = factor_union(&parts) {
                        return f;
                    }
                    Regex::alt(parts)
                }
                other => other,
            }
        }
        Regex::Star(x) => Regex::star(pass(x)),
        Regex::Plus(x) => Regex::plus(pass(x)),
        Regex::Opt(x) => {
            let inner = pass(x);
            // (r)? where r is nullable is just r.
            if inner.nullable() {
                inner
            } else {
                Regex::opt(inner)
            }
        }
    }
}

/// Simplifies `r` to a language-equivalent, usually smaller regex.
pub fn simplify(r: &Regex) -> Regex {
    let mut cur = r.clone();
    for _ in 0..MAX_PASSES {
        let next = pass(&cur);
        if next == cur {
            break;
        }
        cur = next;
    }
    debug_assert!(
        equivalent(r, &cur),
        "simplify changed the language of {r} into {cur}"
    );
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;

    fn s(src: &str) -> String {
        simplify(&parse_regex(src).unwrap()).to_string()
    }

    #[test]
    fn counted_collapse() {
        assert_eq!(s("p*, p, p*"), "p+");
        assert_eq!(s("p*, p, p*, p, p*"), "p, p+");
        assert_eq!(s("p?, p?"), "p?, p?"); // {0,2} has no shorter rendering
        assert_eq!(s("p, p*"), "p+");
        assert_eq!(s("p*, p*"), "p*");
        assert_eq!(s("p+, p+"), "p, p+");
        assert_eq!(s("p+, p*"), "p+");
    }

    #[test]
    fn paper_merge_output_simplifies_to_d2_type() {
        // Example 4.3: the merged professor type collapses to "≥2 publications".
        let merged = "(publication*, publication, publication*, publication, publication*) \
                      | (publication*, publication, publication*, publication, publication*)";
        assert_eq!(s(merged), "publication, publication+");
    }

    #[test]
    fn union_subsumption() {
        assert_eq!(s("a | a*"), "a*");
        assert_eq!(s("a, b | a, b"), "a, b");
        assert_eq!(s("(a | b) | a"), "a | b");
        assert_eq!(s("a+ | a*"), "a*");
    }

    #[test]
    fn union_factoring() {
        assert_eq!(s("(a, b) | (a, c)"), "a, (b | c)");
        assert_eq!(s("(x, a, y) | (x, b, y)"), "x, (a | b), y");
        assert_eq!(s("(a, b) | a"), "a, b?");
    }

    #[test]
    fn opt_of_nullable() {
        assert_eq!(s("(a*)?"), "a*");
        assert_eq!(s("(a?, b?)?"), "a?, b?");
    }

    #[test]
    fn preserves_language_on_paper_types() {
        for src in [
            "name, (journal | conference)*",
            "title, author+, (journal | conference)",
            "firstName, lastName, publication*, publication^1, publication*, teaches",
            "(name, professor+, gradStudent+, course*)?",
            "(a | b)*, (a, b)+ | c?",
        ] {
            let r = parse_regex(src).unwrap();
            let simp = simplify(&r);
            assert!(equivalent(&r, &simp), "language changed: {src} vs {simp}");
            assert!(simp.size() <= r.size(), "simplify grew {src} to {simp}");
        }
    }

    #[test]
    fn idempotent() {
        for src in ["p*, p, p*", "(a, b) | (a, c)", "a | a*", "(a?)+"] {
            let once = simplify(&parse_regex(src).unwrap());
            let twice = simplify(&once);
            assert_eq!(once, twice);
        }
    }
}
