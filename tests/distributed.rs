//! End-to-end distributed mediation over the mix-net wire protocol.
//!
//! The acceptance scenario: a mediator federates two loopback
//! `serve-source` daemons with one in-process source under a union view.
//! When a daemon is killed mid-session, the degraded answer *and* the
//! [`DegradationReport`] must be byte-identical to an all-in-process run
//! whose failing member is scripted to fail the same way. This works
//! because every transport-derived [`SourceError`] message is
//! deterministic (`"{addr}: connection refused"`, never OS error text)
//! and the resilience layer's retry/backoff accounting is virtual.
//!
//! The property test at the bottom drives a RemoteWrapper through a
//! byte-budgeted chaos proxy: whatever prefix of the session survives,
//! the wrapper either agrees with the in-process wrapper byte for byte
//! or fails with a transport-classified source fault — never a query
//! rejection, never silently wrong data.

use mix::prelude::*;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

const SITE_DTD: &str = "{<site : entry*> <entry : PCDATA>}";

fn site_doc(tag: &str, entries: usize) -> Document {
    let body: String = (0..entries)
        .map(|i| format!("<entry>{tag}{i}</entry>"))
        .collect();
    parse_document(&format!("<site>{body}</site>")).unwrap()
}

fn site_source(tag: &str, entries: usize) -> XmlSource {
    XmlSource::new(parse_compact(SITE_DTD).unwrap(), site_doc(tag, entries)).unwrap()
}

fn spawn_daemon(tag: &str, entries: usize) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        Arc::new(WrapperService::new(site_source(tag, entries))),
        ServerConfig::default(),
    )
    .expect("bind loopback")
    .spawn()
    .expect("spawn daemon")
}

fn part_query() -> Query {
    parse_query("all = SELECT X WHERE <site> X:<entry/> </site>").unwrap()
}

/// A mediator federating `alpha`/`beta`/`gamma` under the union view
/// `all` — the same shape whether the wrappers are remote or local.
fn federation(
    alpha: Arc<dyn Wrapper>,
    beta: Arc<dyn Wrapper>,
    gamma: Arc<dyn Wrapper>,
) -> Mediator {
    let mut m = Mediator::new();
    m.add_source("alpha", alpha);
    m.add_source("beta", beta);
    m.add_source("gamma", gamma);
    m.register_union_view(
        "all",
        &[
            ("alpha", part_query()),
            ("beta", part_query()),
            ("gamma", part_query()),
        ],
    )
    .expect("union view registers");
    m
}

fn render(doc: &Document) -> String {
    write_document(doc, WriteConfig::default())
}

/// An in-process wrapper whose fetches follow an explicit error script —
/// the twin of a remote source dying in a known way. Entries are consumed
/// per call (`None` = pass through); past the end every call succeeds.
struct ScriptedSource {
    inner: XmlSource,
    script: Mutex<VecDeque<Option<SourceError>>>,
}

impl ScriptedSource {
    fn new(inner: XmlSource, script: Vec<Option<SourceError>>) -> ScriptedSource {
        ScriptedSource {
            inner,
            script: Mutex::new(script.into()),
        }
    }
}

impl Wrapper for ScriptedSource {
    fn dtd(&self) -> &Dtd {
        self.inner.dtd()
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        match self.script.lock().unwrap().pop_front() {
            Some(Some(e)) => Err(e),
            _ => self.inner.fetch(),
        }
    }
}

/// The error sequence a RemoteWrapper observes after its daemon is
/// killed: the multiplexed client's reader thread sees the socket close
/// and marks the pooled link dead *before* any call touches it (the
/// tests below wait on [`RemoteWrapper::live_connections`] for exactly
/// this), so the first post-kill call prunes the corpse, redials, and is
/// refused — unavailable, not transient, hence no retry accounting in
/// the report.
fn killed_daemon_script(addr: &str) -> Vec<Option<SourceError>> {
    vec![Some(SourceError::Unavailable(format!(
        "{addr}: connection refused"
    )))]
}

/// Blocks until `remote`'s reader threads have observed the daemon
/// death — the moment post-kill behavior becomes deterministic.
fn await_death(remote: &RemoteWrapper) {
    while remote.live_connections() > 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The ISSUE acceptance scenario: two serve-source daemons plus one
/// local source federated; one daemon killed before the union view
/// materializes; answer and DegradationReport byte-identical to the
/// all-in-process twin.
#[test]
fn killed_daemon_degrades_byte_identically_to_an_in_process_twin() {
    // serve_stale off so the kill is visible in the answer itself
    let policy = ResiliencePolicy {
        serve_stale: false,
        ..ResiliencePolicy::default()
    };

    let daemon_a = spawn_daemon("a", 2);
    let daemon_b = spawn_daemon("b", 3);
    let beta_addr = daemon_b.addr().to_string();
    let alpha = RemoteWrapper::connect(&daemon_a.addr().to_string()).expect("alpha reachable");
    let beta = Arc::new(RemoteWrapper::connect(&beta_addr).expect("beta reachable"));
    let mut distributed = federation(
        Arc::new(alpha),
        Arc::clone(&beta) as Arc<dyn Wrapper>,
        Arc::new(site_source("c", 2)),
    );
    distributed.set_resilience_policy(policy);

    // the injected daemon kill: beta's listener closes and its live
    // connections (including the one pooled in the RemoteWrapper) drop
    daemon_b.shutdown();
    await_death(&beta);

    let (doc, report) = distributed
        .materialize_with_report(name("all"))
        .expect("union survives a dead member");

    // the all-in-process twin: same members, beta scripted to fail the
    // way the dead daemon does
    let mut twin = federation(
        Arc::new(site_source("a", 2)),
        Arc::new(ScriptedSource::new(
            site_source("b", 3),
            killed_daemon_script(&beta_addr),
        )),
        Arc::new(site_source("c", 2)),
    );
    twin.set_resilience_policy(policy);
    let (twin_doc, twin_report) = twin
        .materialize_with_report(name("all"))
        .expect("twin union survives");

    assert_eq!(
        render(&doc),
        render(&twin_doc),
        "degraded distributed answer diverged from the in-process twin"
    );
    assert_eq!(
        report.to_string(),
        twin_report.to_string(),
        "degradation report diverged from the in-process twin"
    );
    assert_eq!(report.failed_sources(), vec!["beta"]);
    assert!(
        !render(&doc).contains("b0"),
        "the dead member must not contribute entries"
    );

    daemon_a.shutdown();
}

/// With the default policy a healthy materialization captures snapshots,
/// so the same kill degrades to *stale* service: the degraded answer is
/// byte-identical to the healthy one, and the report still matches the
/// scripted twin.
#[test]
fn killed_daemon_serves_stale_snapshots_byte_identically() {
    let daemon_a = spawn_daemon("a", 2);
    let daemon_b = spawn_daemon("b", 3);
    let beta_addr = daemon_b.addr().to_string();
    let beta = Arc::new(RemoteWrapper::connect(&beta_addr).expect("beta reachable"));
    let distributed = federation(
        Arc::new(RemoteWrapper::connect(&daemon_a.addr().to_string()).expect("alpha reachable")),
        Arc::clone(&beta) as Arc<dyn Wrapper>,
        Arc::new(site_source("c", 2)),
    );
    let mut twin_script = killed_daemon_script(&beta_addr);
    twin_script.insert(0, None); // the healthy run's fetch passes through
    let twin = federation(
        Arc::new(site_source("a", 2)),
        Arc::new(ScriptedSource::new(site_source("b", 3), twin_script)),
        Arc::new(site_source("c", 2)),
    );

    let (healthy, healthy_report) = distributed
        .materialize_with_report(name("all"))
        .expect("healthy run");
    assert!(healthy_report.is_clean());
    let (twin_healthy, twin_healthy_report) = twin
        .materialize_with_report(name("all"))
        .expect("twin healthy");
    assert_eq!(render(&healthy), render(&twin_healthy));
    assert_eq!(healthy_report.to_string(), twin_healthy_report.to_string());

    daemon_b.shutdown();
    await_death(&beta);

    let (degraded, report) = distributed
        .materialize_with_report(name("all"))
        .expect("stale run");
    let (twin_degraded, twin_report) = twin
        .materialize_with_report(name("all"))
        .expect("twin stale run");

    assert_eq!(report.outcomes[1].status, FetchStatus::Stale);
    assert_eq!(
        render(&degraded),
        render(&healthy),
        "stale service must reproduce the last good answer"
    );
    assert_eq!(render(&degraded), render(&twin_degraded));
    assert_eq!(report.to_string(), twin_report.to_string());

    daemon_a.shutdown();
}

// ---------------------------------------------------------------------------
// Retryable vs. fatal transport faults: a peer speaking the wrong
// protocol version is a deployment problem, not source sickness.
// ---------------------------------------------------------------------------

/// A fake daemon that accepts one connection, swallows the client's
/// `Hello`, and answers with a frame stamped protocol version 9.
fn version9_daemon() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake daemon");
    let addr = listener.local_addr().expect("fake daemon addr");
    std::thread::spawn(move || {
        if let Ok((mut client, _)) = listener.accept() {
            // swallow the client's v2 Hello header so the reply is not
            // lost to a reset racing the unread input
            let mut hello = [0u8; 10];
            let _ = client.read_exact(&mut hello);
            // header: version, type (Hello), then length — the client
            // must bail on byte 0 before trusting the rest
            let _ = client.write_all(&[9, 0, 0, 0, 0, 0]);
            let _ = client.flush();
            let _ = client.shutdown(Shutdown::Both);
        }
    });
    addr
}

/// The satellite-2 pin: a protocol version mismatch maps to
/// [`SourceError::Incompatible`] — fatal, deterministic message — and is
/// *not* a source fault, unlike a refused connection (retryable,
/// breaker-counted).
#[test]
fn version_mismatch_is_fatal_and_never_counts_against_the_breaker() {
    let addr = version9_daemon().to_string();
    let err = match RemoteWrapper::connect(&addr) {
        Ok(_) => panic!("a version-9 peer must not handshake"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), "incompatible");
    assert!(
        !err.is_source_fault(),
        "a deployment mismatch must not look like source sickness"
    );
    assert_eq!(
        err.to_string(),
        format!("incompatible peer: {addr}: peer speaks protocol version 9, this build speaks 2")
    );

    // the breaker contrast, through the resilience layer itself: a source
    // erroring Incompatible never opens the breaker, one erroring
    // Unavailable opens it at the threshold
    use mix::mediator::{resilient_answer, Health, SourceInstruments};
    let policy = ResiliencePolicy {
        max_retries: 0,
        failure_threshold: 2,
        serve_stale: false,
        ..ResiliencePolicy::default()
    };
    let query = part_query();

    let incompatible = ScriptedSource::new(
        site_source("i", 1),
        vec![Some(SourceError::Incompatible("version skew".into())); 4],
    );
    let health = Mutex::new(Health::new());
    for _ in 0..4 {
        let (doc, outcome) = resilient_answer(
            "inc",
            &incompatible,
            &query,
            &policy,
            &health,
            &SourceInstruments::noop("inc"),
        );
        assert!(doc.is_none());
        assert_eq!(outcome.status, FetchStatus::Failed);
        assert_eq!(
            health.lock().unwrap().state(),
            BreakerState::Closed,
            "Incompatible must never trip the breaker"
        );
    }

    let refused = ScriptedSource::new(
        site_source("u", 1),
        vec![Some(SourceError::Unavailable("h:1: connection refused".into())); 2],
    );
    let health = Mutex::new(Health::new());
    for _ in 0..2 {
        resilient_answer(
            "ref",
            &refused,
            &query,
            &policy,
            &health,
            &SourceInstruments::noop("ref"),
        );
    }
    assert_eq!(
        health.lock().unwrap().state(),
        BreakerState::Open,
        "refused connections are retryable source faults and must count"
    );
}

// ---------------------------------------------------------------------------
// Version negotiation, both directions: an old v1 build and a new v2
// build must tell each other `incompatible` in framing the *other* side
// can read — never garbage, never a hang.
// ---------------------------------------------------------------------------

/// An old v1 peer's Hello against the new server: the reply must be a
/// *v1-framed* `Err` the old build can decode, byte-deterministic across
/// connections, followed by a clean close.
#[test]
fn v1_hello_against_new_server_gets_a_v1_framed_incompatible() {
    let daemon = spawn_daemon("v", 1);
    let addr = daemon.addr();
    let mut replies = Vec::new();
    for _ in 0..2 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // a v1 Hello: [version=1][type=Hello][len=0 x4]
        s.write_all(&[1, 0, 0, 0, 0, 0]).expect("send v1 hello");
        let mut header = [0u8; 6];
        s.read_exact(&mut header).expect("v1-framed reply header");
        assert_eq!(header[0], 1, "reply must be framed for the v1 peer");
        assert_eq!(
            header[1],
            mix::net::MsgType::Err as u8,
            "reply must be an Err frame"
        );
        let len = u32::from_be_bytes(header[2..6].try_into().unwrap()) as usize;
        let mut payload = vec![0u8; len];
        s.read_exact(&mut payload).expect("v1-framed reply payload");
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
        assert!(rest.is_empty(), "nothing may follow the incompatible fault");
        replies.push(String::from_utf8(payload).expect("fault is UTF-8"));
    }
    assert_eq!(
        replies[0],
        "incompatible\npeer speaks frame version 1; this build speaks 2"
    );
    assert_eq!(replies[0], replies[1], "negotiation must be deterministic");
    daemon.shutdown();
}

/// A v1-replying daemon — the shape of an old build on the other end of
/// a new client's dial. Swallows the 10-byte v2 Hello, answers in v1
/// framing.
fn v1_daemon() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind v1 daemon");
    let addr = listener.local_addr().expect("v1 daemon addr");
    std::thread::spawn(move || {
        if let Ok((mut client, _)) = listener.accept() {
            let mut hello = [0u8; 10];
            let _ = client.read_exact(&mut hello);
            let _ = client.write_all(&[1, 0, 0, 0, 0, 0]);
            let _ = client.flush();
            let _ = client.shutdown(Shutdown::Both);
        }
    });
    addr
}

/// The other direction: the new client dialing an old v1 server fails
/// the handshake with a deterministic `Incompatible` — breaker-neutral,
/// like every deployment mismatch.
#[test]
fn new_client_against_v1_server_is_incompatible_and_breaker_neutral() {
    let addr = v1_daemon().to_string();
    let err = match RemoteWrapper::connect(&addr) {
        Ok(_) => panic!("a v1 peer must not handshake"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), "incompatible");
    assert!(
        !err.is_source_fault(),
        "an old peer must not look like source sickness"
    );
    assert_eq!(
        err.to_string(),
        format!("incompatible peer: {addr}: peer speaks protocol version 1, this build speaks 2")
    );
}

// ---------------------------------------------------------------------------
// Slow loris: partial frames dribbled one byte at a time must neither
// stall other connections nor trip the reactor; going *silent* with
// nothing in flight is what gets a connection evicted.
// ---------------------------------------------------------------------------

#[test]
fn slow_loris_dribble_stalls_nobody_and_silence_gets_evicted() {
    const IO_TIMEOUT: Duration = Duration::from_millis(400);
    let registry = Registry::new();
    let daemon = Server::bind(
        "127.0.0.1:0",
        Arc::new(WrapperService::new(site_source("s", 3))),
        ServerConfig {
            io_timeout: IO_TIMEOUT,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
    .with_registry(&registry)
    .spawn()
    .expect("spawn daemon");
    let addr = daemon.addr();

    // the loris: a valid v2 Hello — [version][type][frame_id:4][len:4] —
    // dribbled one byte per 30ms tick, holding the handshake open for
    // ~300ms of wall time
    let loris = TcpStream::connect(addr).expect("loris connects");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let dribbler = std::thread::spawn(move || {
        let mut loris = loris;
        for b in [2u8, 0, 0, 0, 0, 1, 0, 0, 0, 0] {
            loris.write_all(&[b]).expect("dribble a byte");
            std::thread::sleep(Duration::from_millis(30));
        }
        let mut reply = [0u8; 10];
        loris
            .read_exact(&mut reply)
            .expect("a dribbled Hello still completes the handshake");
        assert_eq!(reply[0], 2, "reply is v2-framed");
        assert_eq!(reply[1], mix::net::MsgType::Hello as u8);
        loris
    });

    // meanwhile the reactor serves other connections at full speed: ten
    // full round-trips complete while the loris is still mid-header
    let remote = RemoteWrapper::connect(&addr.to_string()).expect("healthy client");
    let expected = render(&site_source("s", 3).answer(&part_query()).unwrap());
    for _ in 0..10 {
        let doc = remote
            .answer(&part_query())
            .expect("served during the dribble");
        assert_eq!(render(&doc), expected, "answers unperturbed by the loris");
    }
    // hang up the healthy client now: its pooled connection closes with
    // a FIN, so the only eviction candidate left is the loris
    drop(remote);

    let mut loris = dribbler.join().expect("dribbler thread");
    let snap = registry.snapshot();
    assert_eq!(
        snap.counters.get("net_deadline_expiries_total").copied(),
        Some(0),
        "every dribbled byte is progress — the loris must not be evicted mid-dribble"
    );

    // the loris now goes silent with nothing in flight: the io_timeout
    // eviction closes it — not sooner — and counts it
    let t = Instant::now();
    let mut rest = Vec::new();
    loris
        .read_to_end(&mut rest)
        .expect("eviction is a clean close");
    let waited = t.elapsed();
    assert!(
        waited >= IO_TIMEOUT - Duration::from_millis(100),
        "evicted after {waited:?}, before the io_timeout elapsed"
    );
    assert!(
        waited < Duration::from_secs(8),
        "eviction took {waited:?}, the reactor looks stalled"
    );
    assert_eq!(
        registry
            .snapshot()
            .counters
            .get("net_deadline_expiries_total")
            .copied(),
        Some(1),
        "the eviction must land in net_deadline_expiries_total"
    );
    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// Property: RemoteWrapper through a lossy transport agrees with the
// in-process wrapper or fails with a transport-classified fault.
// ---------------------------------------------------------------------------

/// The shared upstream daemon the chaos proxies front. One per process:
/// the property only needs its address, and its state is immutable.
fn upstream() -> SocketAddr {
    static DAEMON: OnceLock<ServerHandle> = OnceLock::new();
    DAEMON.get_or_init(|| spawn_daemon("p", 4)).addr()
}

/// Relay one direction until the shared byte budget runs out, then cut
/// *both* sockets — a mid-frame disconnect whenever the budget lands
/// inside a frame.
fn relay(mut from: TcpStream, mut to: TcpStream, remaining: Arc<AtomicI64>) {
    let mut buf = [0u8; 64];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let before = remaining.fetch_sub(n as i64, Ordering::SeqCst);
        if before < n as i64 {
            // budget exhausted inside this read: deliver the surviving
            // prefix, then drop the session
            let _ = to.write_all(&buf[..before.max(0) as usize]);
            break;
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// A single-session proxy that forwards at most `budget` bytes (both
/// directions combined) between one client and `upstream`, then
/// disconnects both sides.
fn chaos_proxy(upstream: SocketAddr, budget: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        let client = match listener.accept() {
            Ok((c, _)) => c,
            Err(_) => return,
        };
        let server = match TcpStream::connect(upstream) {
            Ok(s) => s,
            Err(_) => return,
        };
        let remaining = Arc::new(AtomicI64::new(budget as i64));
        let up = std::thread::spawn({
            let (from, to, r) = (
                client.try_clone().expect("clone"),
                server.try_clone().expect("clone"),
                Arc::clone(&remaining),
            );
            move || relay(from, to, r)
        });
        relay(server, client, remaining);
        let _ = up.join();
    });
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever prefix of the wire session a disconnect leaves standing,
    /// the RemoteWrapper either produces the in-process wrapper's exact
    /// answer bytes or a fault the resilience layer classifies as
    /// transport trouble ("transient"/"unavailable"/"timeout") — never a
    /// query rejection, never corrupted data passed off as an answer.
    #[test]
    fn remote_wrapper_agrees_with_in_process_under_mid_frame_disconnects(
        budget in 0usize..4096,
    ) {
        let reference = site_source("p", 4);
        let query = part_query();
        let expected = render(&reference.answer(&query).unwrap());

        let proxy = chaos_proxy(upstream(), budget);
        let config = ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            pool_size: 2,
            ..ClientConfig::default()
        };
        let transport_fault = |e: &SourceError| {
            matches!(e.kind(), "transient" | "unavailable" | "timeout")
        };
        match RemoteWrapper::connect_with(&proxy.to_string(), config) {
            Err(e) => prop_assert!(
                transport_fault(&e),
                "handshake failure misclassified as {}: {e}",
                e.kind()
            ),
            Ok(remote) => match remote.answer(&query) {
                Ok(doc) => prop_assert_eq!(
                    render(&doc),
                    expected.clone(),
                    "surviving session must agree byte for byte"
                ),
                Err(e) => prop_assert!(
                    transport_fault(&e),
                    "answer failure misclassified as {}: {e}",
                    e.kind()
                ),
            },
        }
    }
}
