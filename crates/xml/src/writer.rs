//! Serialization of elements back to XML text.

use crate::element::{Content, Document, Element};
use crate::parser::escape;
use std::fmt::Write;

/// Serialization options.
#[derive(Debug, Clone, Copy)]
pub struct WriteConfig {
    /// Pretty-print with this indent width; `None` writes compact XML.
    pub indent: Option<usize>,
    /// Emit `id="…"` attributes (auto-generated IDs are always skipped).
    pub write_ids: bool,
}

impl Default for WriteConfig {
    fn default() -> Self {
        WriteConfig {
            indent: Some(2),
            write_ids: true,
        }
    }
}

fn write_elem(e: &Element, cfg: WriteConfig, level: usize, out: &mut String) {
    let pad = |out: &mut String, level: usize| {
        if let Some(w) = cfg.indent {
            for _ in 0..level * w {
                out.push(' ');
            }
        }
    };
    let nl = |out: &mut String| {
        if cfg.indent.is_some() {
            out.push('\n');
        }
    };
    pad(out, level);
    let _ = write!(out, "<{}", e.name);
    if cfg.write_ids && !e.id.is_auto() {
        let _ = write!(out, " id=\"{}\"", escape(&e.id.to_string()));
    }
    match &e.content {
        Content::Elements(v) if v.is_empty() => {
            out.push_str("/>");
            nl(out);
        }
        Content::Elements(v) => {
            out.push('>');
            nl(out);
            for c in v {
                write_elem(c, cfg, level + 1, out);
            }
            pad(out, level);
            let _ = write!(out, "</{}>", e.name);
            nl(out);
        }
        Content::Text(t) => {
            let _ = write!(out, ">{}</{}>", escape(t), e.name);
            nl(out);
        }
    }
}

/// Serializes an element.
pub fn write_element(e: &Element, cfg: WriteConfig) -> String {
    let mut out = String::new();
    write_elem(e, cfg, 0, &mut out);
    if cfg.indent.is_some() {
        // drop the trailing newline for symmetric roundtrips
        out.truncate(out.trim_end().len());
    }
    out
}

/// Serializes a document.
pub fn write_document(d: &Document, cfg: WriteConfig) -> String {
    write_element(&d.root, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_element;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<professor id="p1"><firstName>Yannis</firstName><teaches/></professor>"#;
        let e = parse_element(src).unwrap();
        let cfg = WriteConfig {
            indent: None,
            write_ids: true,
        };
        let out = write_element(&e, cfg);
        assert_eq!(out, src);
        // write(parse(write(x))) == write(x)  (IDs of id-less elements are
        // freshly generated on each parse, so compare serialized forms)
        assert_eq!(write_element(&parse_element(&out).unwrap(), cfg), out);
    }

    #[test]
    fn roundtrip_pretty() {
        let src = "<a><b><c/></b><d>txt</d></a>";
        let e = parse_element(src).unwrap();
        let pretty = write_element(&e, WriteConfig::default());
        assert!(pretty.contains('\n'));
        let reparsed = parse_element(&pretty).unwrap();
        assert_eq!(write_element(&reparsed, WriteConfig::default()), pretty);
    }

    #[test]
    fn auto_ids_not_written() {
        let e = Element::new("x", vec![]);
        let out = write_element(
            &e,
            WriteConfig {
                indent: None,
                write_ids: true,
            },
        );
        assert_eq!(out, "<x/>");
    }

    #[test]
    fn text_is_escaped() {
        let e = Element::text("t", "a < b & c");
        let out = write_element(
            &e,
            WriteConfig {
                indent: None,
                write_ids: false,
            },
        );
        assert_eq!(out, "<t>a &lt; b &amp; c</t>");
        assert_eq!(parse_element(&out).unwrap().pcdata(), Some("a < b & c"));
    }
}
