//! Parser for the paper's query syntax, e.g. (Q2):
//!
//! ```text
//! withJournals = SELECT P
//! WHERE <department>
//!         <name>CS</name>
//!         P:<professor | gradStudent>
//!           <publication id=Pub1><journal/></publication>
//!           <publication id=Pub2><journal/></publication>
//!         </>
//!       </>
//! AND Pub1 != Pub2
//! ```
//!
//! Close tags may be anonymous (`</>`), element positions may be a
//! disjunction (`professor | gradStudent`) or the wildcard `*`, and
//! string-content conditions are written inline (`<name>CS</name>`).

use crate::ast::{Body, Condition, NameTest, Query, Var};
use mix_relang::symbol::Name;
use std::fmt;

/// A query parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for QueryError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> QueryError {
        QueryError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), QueryError> {
        if self.eat_str(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    /// An identifier (no ':' — those separate a variable from its
    /// condition).
    fn ident(&mut self) -> Result<&'a str, QueryError> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return Err(self.err("expected an identifier")),
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | '.' | '-'))
        {
            self.bump();
        }
        Ok(&self.src[start..self.pos])
    }

    fn keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        self.skip_ws();
        let start = self.pos;
        match self.ident() {
            Ok(w) if w.eq_ignore_ascii_case(kw) => Ok(()),
            _ => {
                self.pos = start;
                Err(self.err(format!("expected keyword '{kw}'")))
            }
        }
    }

    /// `professor | gradStudent` or `*`.
    fn nametest(&mut self) -> Result<NameTest, QueryError> {
        self.skip_ws();
        if self.peek() == Some('*') {
            self.bump();
            return Ok(NameTest::Wildcard);
        }
        let mut names = vec![Name::intern(self.ident()?)];
        while self.eat_str("|") {
            names.push(Name::intern(self.ident()?));
        }
        Ok(NameTest::Names(names))
    }

    /// `[Var ':'] '<' …`.
    fn condition(&mut self) -> Result<Condition, QueryError> {
        self.skip_ws();
        let mut var = None;
        if matches!(self.peek(), Some(c) if c.is_alphabetic() || c == '_') {
            let save = self.pos;
            let v = self.ident()?;
            self.skip_ws();
            if self.peek() == Some(':') {
                self.bump();
                self.skip_ws();
                if self.peek() == Some('<') {
                    var = Some(Var::new(v));
                } else {
                    return Err(self.err("expected '<' after 'Var:'"));
                }
            } else {
                self.pos = save;
                return Err(self.err("expected a condition ('<' or 'Var:<')"));
            }
        }
        self.expect_str("<")?;
        let test = self.nametest()?;
        let mut id_var = None;
        self.skip_ws();
        if self.eat_str("id") {
            self.expect_str("=")?;
            id_var = Some(Var::new(self.ident()?));
            self.skip_ws();
        }
        // self-closing?
        if self.eat_str("/>") {
            return Ok(Condition {
                test,
                var,
                id_var,
                tag: 0,
                body: Body::Children(vec![]),
            });
        }
        self.expect_str(">")?;
        let body = self.body(&test)?;
        Ok(Condition {
            test,
            var,
            id_var,
            tag: 0,
            body,
        })
    }

    /// Content of a condition, up to and including the close tag.
    fn body(&mut self, open: &NameTest) -> Result<Body, QueryError> {
        self.skip_ws();
        // close tag right away: no constraint
        if self.eat_str("</") {
            self.close_rest(open)?;
            return Ok(Body::Children(vec![]));
        }
        // a nested condition starts with '<' or 'Var:<'; otherwise the body
        // is a string condition
        if self.next_is_condition() {
            let mut children = Vec::new();
            loop {
                self.skip_ws();
                if self.eat_str("</") {
                    self.close_rest(open)?;
                    return Ok(Body::Children(children));
                }
                children.push(self.condition()?);
            }
        }
        // text content, up to '</'
        let start = self.pos;
        while !self.starts_with("</") {
            if self.bump().is_none() {
                return Err(self.err("unterminated string condition"));
            }
        }
        let text = self.src[start..self.pos].trim().to_owned();
        self.pos += 2;
        self.close_rest(open)?;
        Ok(Body::Text(text))
    }

    /// After `</`: `>` (anonymous close) or a repetition of the opening
    /// name test followed by `>`.
    fn close_rest(&mut self, open: &NameTest) -> Result<(), QueryError> {
        self.skip_ws();
        if self.peek() != Some('>') {
            let t = self.nametest()?;
            if &t != open {
                return Err(self.err("close tag does not repeat the opening name test"));
            }
            self.skip_ws();
        }
        self.expect_str(">")
    }

    fn next_is_condition(&self) -> bool {
        // lookahead: optional "ident :" then '<'
        let rest = self.src[self.pos..].trim_start();
        if rest.starts_with('<') {
            return true;
        }
        let ident_len = rest
            .char_indices()
            .take_while(|(i, c)| {
                if *i == 0 {
                    c.is_alphabetic() || *c == '_'
                } else {
                    c.is_alphanumeric() || matches!(c, '_' | '.' | '-')
                }
            })
            .count();
        if ident_len == 0 {
            return false;
        }
        let after: &str = rest[ident_len..].trim_start();
        after.starts_with(':') && after[1..].trim_start().starts_with('<')
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        let view_name = Name::intern(self.ident()?);
        self.expect_str("=")?;
        self.keyword("SELECT")?;
        let pick = Var::new(self.ident()?);
        self.keyword("WHERE")?;
        let root = self.condition()?;
        let mut diseqs = Vec::new();
        while self.keyword("AND").is_ok() {
            let a = Var::new(self.ident()?);
            self.expect_str("!=")?;
            let b = Var::new(self.ident()?);
            diseqs.push((a, b));
        }
        self.skip_ws();
        if self.pos < self.src.len() {
            return Err(self.err("trailing input after query"));
        }
        Ok(Query {
            view_name,
            pick,
            root,
            diseqs,
        })
    }
}

/// Parses a pick-element XMAS query.
pub fn parse_query(src: &str) -> Result<Query, QueryError> {
    P { src, pos: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_relang::symbol::name;

    /// (Q2) of the paper.
    pub const Q2: &str = "withJournals = SELECT P \
        WHERE <department> <name>CS</name> \
          P:<professor | gradStudent> \
            <publication id=Pub1><journal/></publication> \
            <publication id=Pub2><journal/></publication> \
          </> \
        </> \
        AND Pub1 != Pub2";

    #[test]
    fn parse_q2() {
        let q = parse_query(Q2).unwrap();
        assert_eq!(q.view_name, name("withJournals"));
        assert_eq!(q.pick, Var::new("P"));
        assert_eq!(q.diseqs, vec![(Var::new("Pub1"), Var::new("Pub2"))]);
        assert_eq!(q.root.test.names(), &[name("department")]);
        let kids = q.root.children();
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].body, Body::Text("CS".into()));
        let pick = &kids[1];
        assert_eq!(pick.var, Some(Var::new("P")));
        assert_eq!(pick.test.names(), &[name("professor"), name("gradStudent")]);
        assert_eq!(pick.children().len(), 2);
        assert_eq!(pick.children()[0].id_var, Some(Var::new("Pub1")));
        assert_eq!(
            pick.children()[0].children()[0].test.names(),
            &[name("journal")]
        );
    }

    #[test]
    fn parse_q3_journal_publications() {
        let q = parse_query(
            "publist = SELECT P \
             WHERE <department> <name>CS</name> \
               <professor | gradStudent> P:<publication><journal/></publication> </> \
             </>",
        )
        .unwrap();
        assert_eq!(q.pick_path().unwrap().len(), 3);
    }

    #[test]
    fn parse_q12_with_intermediate_vars() {
        let q = parse_query(
            "papers = SELECT P \
             WHERE D:<department> G:<gradStudent> X:<publication> \
               P:<title | author/> </publication> </gradStudent> </department>",
        )
        .unwrap();
        let path = q.pick_path().unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0].var, Some(Var::new("D")));
        assert_eq!(path[2].var, Some(Var::new("X")));
    }

    #[test]
    fn wildcard_nametest() {
        let q = parse_query("v = SELECT X WHERE <r> X:<*/> </r>").unwrap();
        assert_eq!(q.pick_node().unwrap().test, NameTest::Wildcard);
    }

    #[test]
    fn named_close_tags_must_reopen() {
        assert!(parse_query("v = SELECT X WHERE X:<a></b>").is_err());
        assert!(parse_query("v = SELECT X WHERE X:<a></a>").is_ok());
        // disjunctive close repeats the open test
        assert!(parse_query("v = SELECT X WHERE X:<a|b></a|b>").is_ok());
    }

    #[test]
    fn string_condition_is_trimmed() {
        let q = parse_query("v = SELECT X WHERE X:<name>  CS  </name>").unwrap();
        assert_eq!(q.root.body, Body::Text("CS".into()));
    }

    #[test]
    fn multiple_diseqs() {
        let q = parse_query(
            "v = SELECT X WHERE X:<a> <b id=B1/> <b id=B2/> <b id=B3/> </a> \
             AND B1 != B2 AND B2 != B3 AND B1 != B3",
        )
        .unwrap();
        assert_eq!(q.diseqs.len(), 3);
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("v = SELECT WHERE <a/>").is_err());
        assert!(parse_query("v = SELECT X WHERE <a>").is_err());
        assert!(parse_query("v = SELECT X WHERE <a/> garbage").is_err());
        assert!(parse_query("v = SELECT X WHERE X:<a/> AND B1 = B2").is_err());
    }

    #[test]
    fn close_tag_name_mismatch_detected() {
        // close_rest only tolerates a repetition of the *opening* test;
        // anything else fails at the '>' expectation
        assert!(parse_query("v = SELECT X WHERE X:<a><b/></c></a>").is_err());
    }
}
