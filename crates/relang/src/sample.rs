//! Random sampling of words from a regex language.
//!
//! Used by the document generator (`mix-dtd`) to produce random valid
//! documents for soundness experiments, and by the benches as a workload
//! generator. Sampling is *budget-steered*: loops prefer to stop and unions
//! prefer cheap branches once the remaining budget is low, so generation of
//! recursive structures terminates.

use crate::ast::Regex;
use crate::ops::min_word_len;
use crate::symbol::Sym;
use rand::Rng;

/// Knobs for [`sample_word`].
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Probability of taking another iteration of `*`/`+` while budget
    /// remains.
    pub loop_continue: f64,
    /// Soft limit on the sampled word length; loops stop and unions choose
    /// their cheapest branch once exceeded.
    pub max_len: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            loop_continue: 0.5,
            max_len: 32,
        }
    }
}

/// Samples a random word of `L(r)`, or `None` when the language is empty.
///
/// The word always belongs to the language; `cfg.max_len` is a soft bound
/// (mandatory structure can exceed it).
pub fn sample_word(r: &Regex, rng: &mut impl Rng, cfg: SampleConfig) -> Option<Vec<Sym>> {
    min_word_len(r)?;
    let mut out = Vec::new();
    go(r, rng, cfg, &mut out);
    Some(out)
}

fn remaining(cfg: SampleConfig, out: &[Sym]) -> usize {
    cfg.max_len.saturating_sub(out.len())
}

fn go(r: &Regex, rng: &mut impl Rng, cfg: SampleConfig, out: &mut Vec<Sym>) {
    match r {
        Regex::Empty => unreachable!("sample_word checks emptiness up front"),
        Regex::Epsilon => {}
        Regex::Sym(s) => out.push(*s),
        Regex::Concat(v) => {
            for part in v {
                go(part, rng, cfg, out);
            }
        }
        Regex::Alt(v) => {
            let viable: Vec<&Regex> = v.iter().filter(|x| min_word_len(x).is_some()).collect();
            debug_assert!(!viable.is_empty(), "nonempty alt has a viable branch");
            let budget = remaining(cfg, out);
            let affordable: Vec<&&Regex> = viable
                .iter()
                .filter(|x| min_word_len(x).unwrap_or(usize::MAX) <= budget)
                .collect();
            let pick: &Regex = if affordable.is_empty() {
                // Over budget: take the globally cheapest branch.
                viable
                    .iter()
                    .min_by_key(|x| min_word_len(x).unwrap_or(usize::MAX))
                    .expect("viable nonempty")
            } else {
                affordable[rng.gen_range(0..affordable.len())]
            };
            go(pick, rng, cfg, out);
        }
        Regex::Star(x) => {
            if min_word_len(x).is_none() {
                return;
            }
            while remaining(cfg, out) > 0 && rng.gen_bool(cfg.loop_continue) {
                go(x, rng, cfg, out);
            }
        }
        Regex::Plus(x) => {
            go(x, rng, cfg, out);
            while remaining(cfg, out) > 0 && rng.gen_bool(cfg.loop_continue) {
                go(x, rng, cfg, out);
            }
        }
        Regex::Opt(x) => {
            if min_word_len(x).is_some() && remaining(cfg, out) > 0 && rng.gen_bool(0.5) {
                go(x, rng, cfg, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matches;
    use crate::parser::parse_regex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_members() {
        let mut rng = StdRng::seed_from_u64(7);
        for src in [
            "a",
            "a*",
            "a+, b?",
            "title, author+, (journal | conference)",
            "(a, b)* | c+",
            "name, professor+, gradStudent+, course*",
        ] {
            let r = parse_regex(src).unwrap();
            for _ in 0..200 {
                let w =
                    sample_word(&r, &mut rng, SampleConfig::default()).expect("nonempty language");
                assert!(matches(&r, &w), "sampled non-member {w:?} of {src}");
            }
        }
    }

    #[test]
    fn empty_language_yields_none() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(sample_word(&Regex::Empty, &mut rng, SampleConfig::default()).is_none());
    }

    #[test]
    fn budget_steering_keeps_words_short() {
        let mut rng = StdRng::seed_from_u64(42);
        let r = parse_regex("(a | b | c)*").unwrap();
        let cfg = SampleConfig {
            loop_continue: 0.9,
            max_len: 8,
        };
        for _ in 0..100 {
            let w = sample_word(&r, &mut rng, cfg).unwrap();
            assert!(w.len() <= 8, "soft budget exceeded on a pure loop");
        }
    }

    #[test]
    fn mandatory_structure_can_exceed_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = parse_regex("a, a, a, a").unwrap();
        let cfg = SampleConfig {
            loop_continue: 0.5,
            max_len: 2,
        };
        let w = sample_word(&r, &mut rng, cfg).unwrap();
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn alt_with_one_empty_branch_avoids_it() {
        let mut rng = StdRng::seed_from_u64(3);
        // Build (∅ | a) manually — smart constructors would drop ∅.
        let r = Regex::Alt(vec![Regex::Empty, parse_regex("a").unwrap()]);
        for _ in 0..50 {
            let w = sample_word(&r, &mut rng, SampleConfig::default()).unwrap();
            assert_eq!(w.len(), 1);
        }
    }
}
