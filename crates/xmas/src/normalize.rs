//! Query normalization: the preprocessing stage of Sections 2.1 and 4.1.
//!
//! * **Wildcard expansion** — an element-name variable/wildcard that occurs
//!   nowhere else is replaced by the disjunction of all names of the source
//!   DTD ("for simplicity we replace each element name variable with a
//!   disjunction of all names in the source DTDs at a preprocessing
//!   stage").
//! * **Tag assignment** — every condition node receives a tag that is
//!   unique across the query (a strictly positive integer), so that the
//!   tightening algorithm can store each condition's refined type under
//!   `name^tag` without collisions, and so that two sibling conditions on
//!   the same name refine *different* tagged occurrences (Section 4.1,
//!   "Type Refinement When Conditions on Elements with the Same Name").
//! * **Well-formedness checks** — the pick variable is bound exactly once,
//!   `!=` constraints refer to declared id variables, and no variable is
//!   bound twice.

use crate::ast::{Body, Condition, NameTest, Query, Var};
use mix_dtd::Dtd;
use std::collections::HashSet;
use std::fmt;

/// A normalization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormalizeError {
    /// The SELECT variable is not bound by any condition.
    PickNotBound(Var),
    /// A variable is bound more than once.
    DuplicateVar(Var),
    /// A `!=` constraint mentions an unbound variable.
    UnknownDiseqVar(Var),
    /// A `!=` constraint relates a variable with itself.
    SelfDiseq(Var),
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeError::PickNotBound(v) => {
                write!(f, "pick variable {v} is not bound in the WHERE clause")
            }
            NormalizeError::DuplicateVar(v) => write!(f, "variable {v} is bound twice"),
            NormalizeError::UnknownDiseqVar(v) => {
                write!(f, "'!=' constraint mentions unbound variable {v}")
            }
            NormalizeError::SelfDiseq(v) => write!(f, "'{v} != {v}' is unsatisfiable"),
        }
    }
}

impl std::error::Error for NormalizeError {}

/// Normalizes `q` against the source DTD. Idempotent.
pub fn normalize(q: &Query, source: &Dtd) -> Result<Query, NormalizeError> {
    // checks
    let mut seen: HashSet<Var> = HashSet::new();
    for v in q.declared_vars() {
        if !seen.insert(v) {
            return Err(NormalizeError::DuplicateVar(v));
        }
    }
    if q.pick_path().is_none() {
        return Err(NormalizeError::PickNotBound(q.pick));
    }
    for &(a, b) in &q.diseqs {
        if a == b {
            return Err(NormalizeError::SelfDiseq(a));
        }
        for v in [a, b] {
            if !seen.contains(&v) {
                return Err(NormalizeError::UnknownDiseqVar(v));
            }
        }
    }
    // rewrite
    let all_names: Vec<_> = source.names();
    let mut next_tag = 1u32;
    let root = rewrite(&q.root, &all_names, &mut next_tag);
    Ok(Query {
        view_name: q.view_name,
        pick: q.pick,
        root,
        diseqs: q.diseqs.clone(),
    })
}

fn rewrite(c: &Condition, all_names: &[mix_relang::Name], next_tag: &mut u32) -> Condition {
    let test = match &c.test {
        NameTest::Wildcard => NameTest::Names(all_names.to_vec()),
        t => t.clone(),
    };
    let tag = if c.tag != 0 {
        c.tag // already normalized: keep stable
    } else {
        let t = *next_tag;
        *next_tag += 1;
        t
    };
    let body = match &c.body {
        Body::Text(s) => Body::Text(s.clone()),
        Body::Children(v) => {
            Body::Children(v.iter().map(|x| rewrite(x, all_names, next_tag)).collect())
        }
    };
    Condition {
        test,
        var: c.var,
        id_var: c.id_var,
        tag,
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use mix_dtd::paper::d1_department;

    #[test]
    fn tags_are_unique_and_positive() {
        let q = parse_query(
            "v = SELECT P WHERE <department> P:<professor> \
               <publication id=A/> <publication id=B/> </professor> </department> \
             AND A != B",
        )
        .unwrap();
        let n = normalize(&q, &d1_department()).unwrap();
        let tags: Vec<u32> = n.root.walk().iter().map(|c| c.tag).collect();
        assert!(tags.iter().all(|&t| t > 0));
        let unique: HashSet<u32> = tags.iter().copied().collect();
        assert_eq!(unique.len(), tags.len());
    }

    #[test]
    fn wildcard_expands_to_all_dtd_names() {
        let q = parse_query("v = SELECT X WHERE <department> X:<*/> </department>").unwrap();
        let d = d1_department();
        let n = normalize(&q, &d).unwrap();
        let pick = n.pick_node().unwrap();
        assert_eq!(pick.test.names().len(), d.types.len());
    }

    #[test]
    fn idempotent() {
        let q =
            parse_query("v = SELECT X WHERE <department> X:<professor/> </department>").unwrap();
        let d = d1_department();
        let once = normalize(&q, &d).unwrap();
        let twice = normalize(&once, &d).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn pick_must_be_bound() {
        let q = parse_query("v = SELECT X WHERE <department/>").unwrap();
        assert!(matches!(
            normalize(&q, &d1_department()),
            Err(NormalizeError::PickNotBound(_))
        ));
    }

    #[test]
    fn duplicate_vars_rejected() {
        let q = parse_query("v = SELECT X WHERE <a> X:<b/> X:<c/> </a>").unwrap();
        assert!(matches!(
            normalize(&q, &d1_department()),
            Err(NormalizeError::DuplicateVar(_))
        ));
    }

    #[test]
    fn diseq_checks() {
        let q = parse_query("v = SELECT X WHERE X:<a> <b id=B/> </a> AND B != C").unwrap();
        assert!(matches!(
            normalize(&q, &d1_department()),
            Err(NormalizeError::UnknownDiseqVar(_))
        ));
        let q = parse_query("v = SELECT X WHERE X:<a> <b id=B/> </a> AND B != B").unwrap();
        assert!(matches!(
            normalize(&q, &d1_department()),
            Err(NormalizeError::SelfDiseq(_))
        ));
    }
}
