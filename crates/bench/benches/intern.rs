//! X18 — the hash-consed regex pool's payoff on the inference stack.
//!
//! Three questions, one artifact (`BENCH_PR5.json`):
//!
//! 1. **Cold inference speed.** `infer_view_dtd` on the deepest paper
//!    workloads (the recursive `section` DTD of Example 3.5, D11 with Q3,
//!    and the 12-level InferList chain), memo tables cleared before every
//!    run, measured twice in the same process: once with the boxed
//!    baseline (deep `Regex` hashing in the memo keys, Moore
//!    minimization — the pre-pool seed behavior, reachable via
//!    [`mix_relang::set_boxed_baseline`]) and once interned (`ReId` keys,
//!    Hopcroft). Acceptance target: ≥ 2× on the recursive/deep-chain
//!    workloads.
//! 2. **Memory.** The memo-table footprint after the cold sweeps in each
//!    mode, plus the pool's node/byte counters and dedup ratio.
//! 3. **Hopcroft.** Per-workload DFA state counts before and after
//!    minimization, with Moore as the oracle (both compute *the* minimal
//!    DFA, so their counts must agree exactly).
//!
//! Custom harness (not Criterion): like X15–X17, the acceptance criteria
//! are ratios that must land in a committed artifact, and the
//! boxed-vs-interned comparison needs explicit mode flips around whole
//! pipeline runs.

use mix_bench::{chain_workload, q3, wide_chain_workload};
use mix_dtd::paper::{d11_department, section_recursive};
use mix_dtd::{ContentModel, Dtd};
use mix_infer::infer_view_dtd;
use mix_relang::{
    clear_memo, memo_footprint, pool_stats, set_boxed_baseline, Dfa, MemoFootprint, Nfa,
};
use mix_xmas::{parse_query, Query};
use std::time::{Duration, Instant};

const COLD_REPS: usize = 25;
const WARM_REPS: usize = 200;

/// The nested-section query over the recursive DTD of Example 3.5: the
/// pick path descends four `section` levels, so tightening re-derives the
/// recursive content model at every depth.
fn deep_section_query() -> Query {
    parse_query("deep = SELECT P WHERE <section> <section> <section> P:<section/> </> </> </>")
        .expect("deep section query parses")
}

fn workloads() -> Vec<(&'static str, Dtd, Query)> {
    let (chain_dtd, chain_q) = chain_workload(12);
    let (wide_dtd, wide_q) = wide_chain_workload(12, 32);
    vec![
        (
            "section_recursive_depth4",
            section_recursive(),
            deep_section_query(),
        ),
        ("d11_q3", d11_department(), q3()),
        ("chain_depth12", chain_dtd, chain_q),
        ("wide_chain_depth12_width32", wide_dtd, wide_q),
    ]
}

/// Best-of-`reps` duration of one memo-cold `infer_view_dtd` run.
/// `clear_memo` runs outside the timed region; the pool itself is
/// process-wide and stays warm (that *is* the design: interning is a
/// one-time cost per distinct node, the memo is the recurring one).
fn measure_cold(q: &Query, d: &Dtd, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        clear_memo();
        let t = Instant::now();
        let iv = infer_view_dtd(q, d).expect("workload infers");
        best = best.min(t.elapsed());
        assert!(!iv.sdtd.types.is_empty());
    }
    best
}

/// Best-of-`reps` duration with the memo tables left warm.
fn measure_warm(q: &Query, d: &Dtd, reps: usize) -> Duration {
    let _ = infer_view_dtd(q, d).expect("warmup infers");
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let iv = infer_view_dtd(q, d).expect("workload infers");
        best = best.min(t.elapsed());
        assert!(!iv.sdtd.types.is_empty());
    }
    best
}

/// Per-workload DFA state totals: subset-construction size,
/// Hopcroft-minimized size, Moore-minimized size (the cross-check — both
/// are minimal, so they must be equal). Counts the *source* DTD content
/// models (the automata tightening builds DFAs for — wide alternations
/// under closures give the subset construction one singleton state per
/// position, which minimization folds together) plus every inferred view
/// content model.
fn dfa_state_counts(q: &Query, d: &Dtd) -> (usize, usize, usize) {
    let iv = infer_view_dtd(q, d).expect("workload infers");
    let (mut raw, mut hopcroft, mut moore) = (0usize, 0usize, 0usize);
    let source = d.types.iter().map(|(_, m)| m);
    let view = iv.sdtd.types.iter().map(|(_, m)| m);
    for m in source.chain(view) {
        if let ContentModel::Elements(r) = m {
            // from_regex minimizes internally; the raw subset
            // construction has to be built explicitly
            let mut alpha: Vec<_> = r.syms().into_iter().collect();
            alpha.sort();
            let dfa = Dfa::from_nfa(&Nfa::from_regex(r), &alpha);
            raw += dfa.len();
            hopcroft += dfa.minimize().len();
            moore += dfa.minimize_moore().len();
        }
    }
    (raw, hopcroft, moore)
}

struct Row {
    name: &'static str,
    boxed_cold: Duration,
    interned_cold: Duration,
    interned_warm: Duration,
    raw_states: usize,
    min_states: usize,
}

fn footprint_json(f: &MemoFootprint) -> String {
    format!(
        "{{ \"dfa_entries\": {}, \"dfa_states\": {}, \"dfa_bytes\": {}, \
         \"inclusion_entries\": {} }}",
        f.dfa_entries, f.dfa_states, f.dfa_bytes, f.inclusion_entries
    )
}

fn main() {
    let ws = workloads();

    // Both modes must produce byte-identical inferences — the tentpole's
    // central invariant, asserted here on the full pipeline before any
    // timing is trusted. Compare the ordered type entries (the Debug of
    // the whole map includes a by-name index whose HashMap order is
    // nondeterministic).
    for (name, d, q) in &ws {
        set_boxed_baseline(true);
        let boxed = infer_view_dtd(q, d).expect("boxed infers");
        set_boxed_baseline(false);
        let interned = infer_view_dtd(q, d).expect("interned infers");
        let stypes = |iv: &mix_infer::InferredView| {
            iv.sdtd
                .types
                .iter()
                .map(|(s, m)| format!("{s:?}: {m:?}"))
                .collect::<Vec<_>>()
        };
        let types = |iv: &mix_infer::InferredView| {
            iv.dtd
                .types
                .iter()
                .map(|(n, m)| format!("{n:?}: {m:?}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            stypes(&boxed),
            stypes(&interned),
            "{name}: boxed and interned s-DTDs diverge"
        );
        assert_eq!(
            types(&boxed),
            types(&interned),
            "{name}: boxed and interned merged DTDs diverge"
        );
    }

    println!("X18 cold/warm inference, boxed baseline vs interned pool:");
    let mut rows = Vec::new();
    let mut boxed_fp_total = 0usize;
    let mut interned_fp_total = 0usize;
    let mut boxed_fp = MemoFootprint::default();
    let mut interned_fp = MemoFootprint::default();
    for (name, d, q) in &ws {
        // boxed first: its legacy tables are the only ones populated, so
        // the footprint snapshot is attributable
        set_boxed_baseline(true);
        let boxed_cold = measure_cold(q, d, COLD_REPS);
        let _ = infer_view_dtd(q, d).expect("boxed footprint run");
        let bf = memo_footprint();
        boxed_fp_total += bf.dfa_bytes;
        boxed_fp = bf;

        set_boxed_baseline(false);
        let interned_cold = measure_cold(q, d, COLD_REPS);
        let interned_warm = measure_warm(q, d, WARM_REPS);
        let inf = memo_footprint();
        interned_fp_total += inf.dfa_bytes;
        interned_fp = inf;

        let (raw, hopcroft, moore) = dfa_state_counts(q, d);
        assert_eq!(
            hopcroft, moore,
            "{name}: Hopcroft and Moore disagree on the minimal DFA size"
        );
        let speedup = boxed_cold.as_secs_f64() / interned_cold.as_secs_f64().max(1e-12);
        println!(
            "  {name}: boxed cold {:.3} ms, interned cold {:.3} ms ({speedup:.2}x), \
             interned warm {:.4} ms; DFA states {raw} -> {hopcroft} (Hopcroft = Moore)",
            boxed_cold.as_secs_f64() * 1e3,
            interned_cold.as_secs_f64() * 1e3,
            interned_warm.as_secs_f64() * 1e3,
        );
        rows.push(Row {
            name,
            boxed_cold,
            interned_cold,
            interned_warm,
            raw_states: raw,
            min_states: hopcroft,
        });
    }

    let ps = pool_stats();
    println!(
        "  pool: {} nodes, {} bytes, dedup ratio {:.3} ({} hits / {} misses)",
        ps.nodes,
        ps.bytes,
        ps.dedup_ratio(),
        ps.intern_hits,
        ps.intern_misses
    );
    println!(
        "  memo footprint (last workload): boxed {} B vs interned {} B",
        boxed_fp.dfa_bytes, interned_fp.dfa_bytes
    );

    // Smoke-level sanity: on at least one recursive/deep-chain workload
    // the interned cold path must be decisively faster. The committed
    // artifact carries the full measured ratios; this assert only guards
    // against regressions that erase the win entirely.
    let best_speedup = rows
        .iter()
        .map(|r| r.boxed_cold.as_secs_f64() / r.interned_cold.as_secs_f64().max(1e-12))
        .fold(0.0f64, f64::max);
    assert!(
        best_speedup >= 1.2,
        "interning no longer pays for itself: best cold speedup {best_speedup:.2}x"
    );

    let row_json = rows
        .iter()
        .map(|r| {
            let speedup = r.boxed_cold.as_secs_f64() / r.interned_cold.as_secs_f64().max(1e-12);
            format!(
                "      {{ \"workload\": \"{}\", \"boxed_cold_ms\": {:.4}, \
                 \"interned_cold_ms\": {:.4}, \"cold_speedup\": {:.2}, \
                 \"interned_warm_ms\": {:.4}, \"dfa_states_subset\": {}, \
                 \"dfa_states_hopcroft\": {} }}",
                r.name,
                r.boxed_cold.as_secs_f64() * 1e3,
                r.interned_cold.as_secs_f64() * 1e3,
                speedup,
                r.interned_warm.as_secs_f64() * 1e3,
                r.raw_states,
                r.min_states
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"X18\",\n  \
         \"generated_by\": \"cargo bench -p mix-bench --bench intern\",\n  \
         \"cold_speedup_target\": 2.0,\n  \
         \"workloads\": [\n{row_json}\n    ],\n  \
         \"memo_footprint\": {{\n    \"boxed_dfa_bytes_total\": {boxed_fp_total},\n    \
         \"interned_dfa_bytes_total\": {interned_fp_total},\n    \
         \"last_boxed\": {},\n    \"last_interned\": {}\n  }},\n  \
         \"pool\": {{ \"nodes\": {}, \"bytes\": {}, \"intern_hits\": {}, \
         \"intern_misses\": {}, \"dedup_ratio\": {:.4} }}\n}}",
        footprint_json(&boxed_fp),
        footprint_json(&interned_fp),
        ps.nodes,
        ps.bytes,
        ps.intern_hits,
        ps.intern_misses,
        ps.dedup_ratio()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    std::fs::write(out, json + "\n").expect("write BENCH_PR5.json");
    println!("wrote {out}");
}
