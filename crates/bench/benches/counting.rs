//! X1's instrument under the microscope: exact document counting for
//! plain DTDs and (subset-construction) s-DTDs, plus the doc samplers —
//! the cost of the quantitative tightness metrics themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mix_bench::{d1, dtd_of_size, q2};
use mix_dtd::sample::{DocConfig, DocSampler};
use mix_dtd::{count_documents_by_size, count_sdocuments_by_size};
use mix_infer::infer_view_dtd;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_counting(c: &mut Criterion) {
    let mut g = c.benchmark_group("counting");
    g.sample_size(15).measurement_time(Duration::from_secs(2));

    let iv = infer_view_dtd(&q2(), &d1()).expect("infers");
    for max_size in [10usize, 16, 22] {
        g.bench_with_input(
            BenchmarkId::new("count_plain_d2", max_size),
            &max_size,
            |b, &s| b.iter(|| count_documents_by_size(&iv.dtd, s)),
        );
        g.bench_with_input(
            BenchmarkId::new("count_sdtd_d4", max_size),
            &max_size,
            |b, &s| b.iter(|| count_sdocuments_by_size(&iv.sdtd, s)),
        );
    }

    for names in [8usize, 16, 32] {
        let dtd = dtd_of_size(names, 11);
        g.bench_with_input(
            BenchmarkId::new("count_random_dtd_≤14", names),
            &names,
            |b, _| b.iter(|| count_documents_by_size(&dtd, 14)),
        );
        g.bench_with_input(BenchmarkId::new("sample_doc", names), &names, |b, _| {
            let sampler = DocSampler::new(&dtd, DocConfig::default()).expect("productive");
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| sampler.sample(&mut rng).size())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
