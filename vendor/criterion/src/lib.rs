//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of the Criterion API this workspace's benches
//! use — groups, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — with
//! a real wall-clock measurement loop (calibrated batching, median of
//! sampled batches) so `cargo bench` still produces usable numbers, just
//! without upstream Criterion's statistics, plots, and history.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported measurement hint; only recorded for display.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function-name/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id with no parameter component.
    pub fn from_function(function: impl Into<String>) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

/// The per-benchmark timing driver handed to measurement closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    target_sample_time: Duration,
    sample_count: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // calibrate: how many iterations fit in one sample window
        let calibration = Instant::now();
        let mut calls = 0u64;
        while calibration.elapsed() < self.target_sample_time / 4 {
            std::hint::black_box(routine());
            calls += 1;
            if calls >= 1_000_000 {
                break;
            }
        }
        let per_call = calibration.elapsed().as_nanos().max(1) / u128::from(calls.max(1));
        self.iters_per_sample =
            (self.target_sample_time.as_nanos() / per_call.max(1)).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(&self) -> String {
        if self.samples.is_empty() {
            return "no samples".to_owned();
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        format!(
            "time: [{} {} {}] ({} iter/sample, {} samples)",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi),
            self.iters_per_sample,
            sorted.len()
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_count: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut (),
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Records the throughput hint for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` with `input` passed by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        self.print(&id.to_string(), &b);
        self
    }

    /// Benchmarks `f` under a plain string id.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        self.print(id, &b);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            // measurement budget is split across the samples
            target_sample_time: self.measurement_time / self.sample_count as u32,
            sample_count: self.sample_count,
        }
    }

    fn print(&self, id: &str, b: &Bencher) {
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!(" [{n} elems/iter]"),
            Some(Throughput::Bytes(n)) => format!(" [{n} bytes/iter]"),
            None => String::new(),
        };
        println!("{}/{id}{tp}  {}", self.name, b.report());
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    unit: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
            _criterion: &mut self.unit,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevents the optimizer from eliding a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_loop_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 1), &1u64, |b, &n| {
            b.iter(|| {
                ran += n;
                ran
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_function("g").to_string(), "g");
    }
}
