//! Property suites for the hash-consed regex pool: interning must be
//! lossless, id equality must be a sound proxy for language equality,
//! the attribute-based inclusion fast paths must agree with the uncached
//! automata procedure, and Hopcroft minimization must match the seed
//! Moore pass state-for-state and word-for-word.

use mix::prelude::*;
use mix::relang::dfa::Dfa;
use mix::relang::nfa::Nfa;
use mix::relang::pool;
use mix::relang::{equivalent_uncached, is_subset_uncached, Sym};
use proptest::prelude::*;

/// Random content-model regexes built through the smart constructors
/// (the shape everything downstream of the parser sees).
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        4 => prop::sample::select(vec!["a", "b", "c"]).prop_map(|s| Regex::Sym(sym(s))),
        1 => Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::opt),
        ]
    })
}

/// Random *raw* regexes assembled from the enum constructors directly —
/// nested `Empty`, empty concatenations/alternations, unnormalized
/// closures. The pool must intern these verbatim and still compute
/// language-exact attributes for them.
fn arb_raw_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        3 => prop::sample::select(vec!["a", "b", "c"]).prop_map(|s| Regex::Sym(sym(s))),
        1 => Just(Regex::Epsilon),
        1 => Just(Regex::Empty),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Regex::Concat),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Regex::Alt),
            inner.clone().prop_map(|r| Regex::Star(Box::new(r))),
            inner.clone().prop_map(|r| Regex::Plus(Box::new(r))),
            inner.prop_map(|r| Regex::Opt(Box::new(r))),
        ]
    })
}

fn alphabet() -> Vec<Sym> {
    vec![sym("a"), sym("b"), sym("c")]
}

/// All words over {a,b,c} of length ≤ 4.
fn all_words() -> Vec<Vec<Sym>> {
    let alpha = alphabet();
    let mut out: Vec<Vec<Sym>> = vec![vec![]];
    let mut layer: Vec<Vec<Sym>> = vec![vec![]];
    for _ in 0..4 {
        let mut next = Vec::new();
        for w in &layer {
            for &s in &alpha {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        layer = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `to_regex(intern(r))` reproduces `r` byte-for-byte — interning is
    /// a verbatim bijection on structure, which subsumes language
    /// equality. Checked on smart-constructed and raw shapes alike.
    #[test]
    fn intern_roundtrip_is_lossless(r in arb_regex(), raw in arb_raw_regex()) {
        for r in [r, raw] {
            let back = pool::to_regex(pool::intern(&r));
            prop_assert_eq!(&back, &r, "roundtrip changed {}", r);
            prop_assert!(equivalent(&back, &r));
        }
    }

    /// Interned ids are a *sound* equality proxy: equal ids after
    /// simplification mean the originals are language-equal (the
    /// simplify corpus is where the id fast path replaces language
    /// checks in `collapse_equivalent`).
    #[test]
    fn id_equality_is_sound_on_simplified_forms(a in arb_regex(), b in arb_regex()) {
        // include permuted alternations so id collisions actually occur
        let x = Regex::alt(vec![a.clone(), b.clone()]);
        let y = Regex::alt(vec![b.clone(), a.clone()]);
        for (p, q) in [(&a, &b), (&x, &y)] {
            if pool::intern(&simplify(p)) == pool::intern(&simplify(q)) {
                prop_assert!(
                    equivalent_uncached(p, q),
                    "ids collide but languages differ: {} vs {}", p, q
                );
            }
        }
    }

    /// The pool's language-exact attributes agree with the automata:
    /// emptiness, nullability, and the live alphabet/first sets (checked
    /// one-sidedly by brute force — every accepted word draws only on
    /// live symbols and starts with a live first).
    #[test]
    fn cached_attributes_are_language_exact(r in arb_raw_regex()) {
        let id = pool::intern(&r);
        let nfa = Nfa::from_regex(&r);
        prop_assert_eq!(pool::nullable(id), nfa.accepts(&[]), "nullability of {}", r);
        let mut any_word = nfa.accepts(&[]);
        let live_alpha = pool::live_alphabet(id);
        let live_first = pool::live_first(id);
        for w in all_words() {
            if !nfa.accepts(&w) {
                continue;
            }
            any_word = true;
            prop_assert!(
                w.iter().all(|s| live_alpha.contains(s)),
                "{:?} ∈ L({}) uses a symbol outside live_alphabet", w, r
            );
            if let Some(first) = w.first() {
                prop_assert!(
                    live_first.contains(first),
                    "{:?} ∈ L({}) starts outside live_first", w, r
                );
            }
        }
        if any_word {
            prop_assert!(!pool::empty_lang(id), "L({}) inhabited but marked empty", r);
        }
        // `Regex::is_empty_lang` is structural (exact only after the
        // smart constructors float Empty to the top); the pool attribute
        // must match the exact automata-based emptiness check instead.
        prop_assert_eq!(
            pool::empty_lang(id),
            mix::relang::language_is_empty(&r),
            "emptiness of {}", r
        );
        if pool::empty_lang(id) {
            prop_assert!(live_alpha.is_empty() && live_first.is_empty());
        }
    }

    /// The memoized id-keyed decision procedures (attribute refutations,
    /// raw-DFA reachability walk) answer exactly like the uncached
    /// product/complement construction.
    #[test]
    fn memoized_inclusion_agrees_with_uncached(a in arb_raw_regex(), b in arb_raw_regex()) {
        prop_assert_eq!(
            is_subset(&a, &b),
            is_subset_uncached(&a, &b),
            "inclusion fast path diverged on {} ⊆ {}", a, b
        );
        prop_assert_eq!(
            equivalent(&a, &b),
            equivalent_uncached(&a, &b),
            "equivalence fast path diverged on {} = {}", a, b
        );
    }

    /// Hopcroft and the seed Moore pass both compute *the* minimal DFA:
    /// identical state counts, identical language.
    #[test]
    fn hopcroft_matches_moore(r in arb_regex()) {
        let raw = Dfa::from_nfa(&Nfa::from_regex(&r), &alphabet());
        let hopcroft = raw.minimize();
        let moore = raw.minimize_moore();
        prop_assert_eq!(hopcroft.len(), moore.len(), "minimal sizes differ for {}", r);
        prop_assert!(hopcroft.len() <= raw.len());
        for w in all_words() {
            prop_assert_eq!(raw.accepts(&w), hopcroft.accepts(&w), "{:?} of {}", w, r);
            prop_assert_eq!(raw.accepts(&w), moore.accepts(&w), "{:?} of {}", w, r);
        }
    }
}
