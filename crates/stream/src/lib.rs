//! # mix-stream — event-driven streaming XMAS evaluation
//!
//! The in-memory pipeline (`mix-xml` parse → `mix-xmas` evaluate) holds
//! the whole source document resident, which caps the mediator at
//! documents that fit in RAM. This crate evaluates the streamable
//! fragment of XMAS — pick-element queries without `!=` constraints —
//! in one pass over the raw XML bytes:
//!
//! * [`reader`] pulls open/text/close events from any [`std::io::Read`]
//!   with a bounded buffer, accepting and rejecting exactly the same
//!   documents as `mix_xml::parse_document`;
//! * [`compile`] flattens a normalized query into pattern nodes plus
//!   per-node DTD feasibility sets — the hash-consed content-model
//!   pool's emptiness/first/alphabet attributes prune descents that
//!   could never satisfy the pattern in a DTD-valid document;
//! * [`matcher`] runs a stack of active pattern states over the events,
//!   emitting answer elements incrementally in document order with
//!   `O(depth × pattern)` live state (plus any answers whose ancestor
//!   conditions are still unresolved).
//!
//! Answers are byte-identical to `mix_xmas::evaluate`. Queries outside
//! the fragment are rejected at compile time ([`Unsupported`]), so a
//! caller — the mediator's `StreamingWrapper` — can fall back to the
//! in-memory evaluator.
//!
//! ```
//! use mix_stream::{stream_answer, CompiledQuery};
//! let q = mix_xmas::parse_query(
//!     "profs = SELECT P WHERE <department> P:<professor/> </>",
//! ).unwrap();
//! let cq = CompiledQuery::compile(&q, None).unwrap();
//! let xml = "<department><professor id='p1'><teaches/></professor></department>";
//! let (answer, stats) = stream_answer(xml.as_bytes(), &cq).unwrap();
//! assert_eq!(answer.root.children().len(), 1);
//! assert!(stats.peak_state_bytes() > 0);
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod matcher;
pub mod reader;

pub use compile::{CompiledQuery, Unsupported, MAX_SIBLING_CONDS};
pub use matcher::{stream_answer, stream_answer_to, stream_eval, StreamStats};
pub use reader::{EventReader, StreamError, XmlEvent};
