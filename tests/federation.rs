//! End-to-end tests for the sharded, replica-aware federation tier.
//!
//! The chaos scenario: a 2-shard × 2-replica cluster of loopback
//! `serve-source` daemons serves a federated union view in a batch loop;
//! one replica is killed mid-batch. Every answer — before, at, and after
//! the kill — must be byte-identical to a fault-free single-node run
//! over the same sources, because the replica set fails over inside the
//! member call and the member still serves fresh.
//!
//! The property test is the sharding-invisibility contract for the *view
//! DTD*: composing per-shard union inferences ([`compose_union_views`])
//! over any random sharding of a source set yields the same inference a
//! single node computes over the whole set.

use mix::infer::infer_union_view_dtd;
use mix::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const SITE_DTD: &str = "{<site : entry*> <entry : PCDATA>}";

fn site_doc(tag: &str, entries: usize) -> Document {
    let body: String = (0..entries)
        .map(|i| format!("<entry>{tag}{i}</entry>"))
        .collect();
    parse_document(&format!("<site>{body}</site>")).unwrap()
}

fn site_source(tag: &str, entries: usize) -> XmlSource {
    XmlSource::new(parse_compact(SITE_DTD).unwrap(), site_doc(tag, entries)).unwrap()
}

fn spawn_daemon(tag: &str, entries: usize) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        Arc::new(WrapperService::new(site_source(tag, entries))),
        ServerConfig::default(),
    )
    .expect("bind loopback")
    .spawn()
    .expect("spawn daemon")
}

fn part_query() -> Query {
    parse_query("all = SELECT X WHERE <site> X:<entry/> </site>").unwrap()
}

fn render(doc: &Document) -> String {
    write_document(doc, WriteConfig::default())
}

/// The ISSUE chaos scenario, in process: 2 shards × 2 replicas, one
/// replica killed mid-batch, every answer byte-identical to the
/// fault-free single-node run.
#[test]
fn replica_kill_mid_batch_is_invisible_in_the_answer_bytes() {
    // the fault-free single-node reference
    let mut single = Mediator::new();
    let mut parts_single = Vec::new();
    for i in 0..4 {
        let s = format!("site{i}");
        single.add_source(&s, Arc::new(site_source(&s, i + 2)));
        parts_single.push((s, part_query()));
    }
    let refs: Vec<(&str, Query)> = parts_single
        .iter()
        .map(|(s, q)| (s.as_str(), q.clone()))
        .collect();
    single.register_union_view("all", &refs).unwrap();
    let (single_doc, single_report) = single.materialize_with_report(name("all")).unwrap();
    assert!(single_report.is_clean());
    let expected = render(&single_doc);

    // the cluster: every source served by two replica daemons (Option so
    // the chaos kill can move the handle out mid-batch)
    let mut daemons: Vec<Vec<Option<ServerHandle>>> = Vec::new();
    for i in 0..4 {
        let s = format!("site{i}");
        daemons.push(vec![
            Some(spawn_daemon(&s, i + 2)),
            Some(spawn_daemon(&s, i + 2)),
        ]);
    }
    let registry = Registry::new();
    let parts: Vec<FederationPart> = (0..4)
        .map(|i| {
            let s = format!("site{i}");
            let replicas: Vec<Arc<dyn Wrapper>> = daemons[i]
                .iter()
                .map(|d| {
                    let addr = d.as_ref().expect("daemon alive").addr().to_string();
                    Arc::new(RemoteWrapper::connect(&addr).expect("replica reachable"))
                        as Arc<dyn Wrapper>
                })
                .collect();
            let set = ReplicaSet::new(
                &s,
                replicas,
                ReplicaPolicy::default(),
                ReplicaInstruments::new(&registry, &s, 2),
            )
            .expect("replica DTDs agree");
            FederationPart {
                source: s,
                wrapper: Arc::new(set),
                query: part_query(),
            }
        })
        .collect();
    let fed = Federation::build("all", parts, 2, registry.clone()).unwrap();
    assert!(
        fed.shards().len() >= 2,
        "4 sources across 2 nodes should occupy both"
    );

    const BATCH: usize = 6;
    for k in 0..BATCH {
        if k == BATCH / 2 {
            // the chaos event: replica 0 of site2 dies mid-batch, taking
            // its pooled connection down with it
            daemons[2][0].take().expect("not yet killed").shutdown();
        }
        let (doc, report) = fed.materialize_with_report().expect("cluster serves");
        assert_eq!(
            render(&doc),
            expected,
            "batch answer {k} diverged from the fault-free single-node run"
        );
        assert!(
            report.is_clean(),
            "failover must keep the report clean (batch {k}): {report}"
        );
    }

    let snap = registry.snapshot();
    assert!(
        snap.counters[r#"replica_failovers_total{source="site2"}"#] >= 1,
        "the kill must be visible as failover traffic in mix-obs"
    );
    assert_eq!(
        snap.counters
            .get(r#"replica_exhausted_total{source="site2"}"#)
            .copied()
            .unwrap_or(0),
        0,
        "the surviving replica must keep the set un-exhausted"
    );

    for replicas in &mut daemons {
        for d in replicas.iter_mut().filter_map(Option::take) {
            d.shutdown();
        }
    }
}

/// All replicas of one source down → that member degrades exactly like a
/// single dead source in a plain federation (partial answer, failed
/// member in the report), while the other shards keep serving fresh.
#[test]
fn all_replicas_down_degrades_like_a_single_dead_source() {
    let policy = ResiliencePolicy {
        serve_stale: false,
        ..ResiliencePolicy::default()
    };
    let registry = Registry::new();
    let mut parts = Vec::new();
    let mut doomed = Vec::new();
    for i in 0..3 {
        let s = format!("site{i}");
        let wrapper: Arc<dyn Wrapper> = if i == 1 {
            // both replicas of site1 are daemons we kill before the run
            let d0 = spawn_daemon(&s, 3);
            let d1 = spawn_daemon(&s, 3);
            let replicas: Vec<Arc<dyn Wrapper>> = vec![
                Arc::new(RemoteWrapper::connect(&d0.addr().to_string()).unwrap()),
                Arc::new(RemoteWrapper::connect(&d1.addr().to_string()).unwrap()),
            ];
            doomed.push(d0);
            doomed.push(d1);
            Arc::new(
                ReplicaSet::new(
                    &s,
                    replicas,
                    ReplicaPolicy::default(),
                    ReplicaInstruments::new(&registry, &s, 2),
                )
                .unwrap(),
            )
        } else {
            Arc::new(site_source(&s, 3))
        };
        parts.push(FederationPart {
            source: s,
            wrapper,
            query: part_query(),
        });
    }
    let mut fed = Federation::build("all", parts, 2, registry.clone()).unwrap();
    fed.set_resilience_policy(policy);
    for d in doomed {
        d.shutdown();
    }
    let (doc, report) = fed
        .materialize_with_report()
        .expect("partial answer served");
    assert!(!report.is_clean());
    assert_eq!(report.failed_sources(), vec!["site1"]);
    assert!(report.union_dtd_covers_survivors);
    let text = render(&doc);
    assert!(text.contains("site00"), "live members must still serve");
    assert!(
        !text.contains("site10"),
        "the dead member must contribute nothing"
    );
    let snap = registry.snapshot();
    assert!(snap.counters[r#"replica_exhausted_total{source="site1"}"#] >= 1);
    assert_eq!(snap.gauges[r#"replica_healthy{source="site1"}"#], 0);
}

// ---------------------------------------------------------------------------
// Property: per-shard union inference composes to the single-node
// inference under any sharding (satellite 1).
// ---------------------------------------------------------------------------

/// The member pool: paper DTDs (D1, D9, D11) with known-good member
/// queries of different shapes (deep pick under a disjunctive filter,
/// whole-subtree pick, leaf pick).
fn member_pool() -> Vec<(Query, Dtd)> {
    let d1 = mix::dtd::paper::d1_department();
    let d9 = mix::dtd::paper::d9_professor();
    let d11 = mix::dtd::paper::d11_department();
    let q = |text: &str| parse_query(text).unwrap();
    vec![
        (
            q("m = SELECT P WHERE <department> <professor | gradStudent> \
               P:<publication><journal/></publication> </> </>"),
            d1.clone(),
        ),
        (
            q("m = SELECT P WHERE <department> P:<professor/> </>"),
            d1.clone(),
        ),
        (
            q("m = SELECT G WHERE <department> G:<gradStudent/> </>"),
            d11.clone(),
        ),
        (
            q("m = SELECT P WHERE <department> <gradStudent> P:<publication/> </> </>"),
            d11,
        ),
        (q("m = SELECT J WHERE <professor> J:<journal/> </>"), d9),
        (q("m = SELECT N WHERE <department> N:<name/> </>"), d1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sharding of any member multiset: composing the per-shard
    /// inferred union views yields the single-node inference — same
    /// member list types, same merged DTD (as a language), same
    /// PCDATA/element kind conflicts, same verdict.
    #[test]
    fn sharded_union_inference_composes_to_the_single_node_inference(
        picks in prop::collection::vec(0usize..6, 1..7),
        assign in prop::collection::vec(0usize..4, 6..7),
        nodes in 1usize..=4,
    ) {
        let pool = member_pool();
        let members: Vec<&(Query, Dtd)> = picks.iter().map(|&i| &pool[i]).collect();

        let all: Vec<(&Query, &Dtd)> = members.iter().map(|(q, d)| (q, d)).collect();
        let single = infer_union_view_dtd(name("all"), &all).unwrap();

        // the random sharding: member i -> node assign[i] % nodes
        let mut shard_positions: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        for (i, _) in members.iter().enumerate() {
            shard_positions[assign[i] % nodes].push(i);
        }
        let mut shard_views = Vec::new();
        for positions in shard_positions.iter().filter(|p| !p.is_empty()) {
            let local: Vec<(&Query, &Dtd)> =
                positions.iter().map(|&i| (&members[i].0, &members[i].1)).collect();
            shard_views.push((infer_union_view_dtd(name("all"), &local).unwrap(), positions));
        }
        let refs: Vec<(&InferredUnionView, &[usize])> = shard_views
            .iter()
            .map(|(v, p)| (v, p.as_slice()))
            .collect();
        let composed = compose_union_views(name("all"), &refs);

        prop_assert_eq!(composed.verdict, single.verdict);
        prop_assert!(
            same_documents(&composed.dtd, &single.dtd),
            "composed merged DTD diverged:\n{}\nvs\n{}",
            composed.dtd,
            single.dtd
        );
        let key = |names: &[mix::relang::symbol::Name]| {
            let mut v: Vec<&str> = names.iter().map(|n| n.as_str()).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(key(&composed.kind_conflicts), key(&single.kind_conflicts));
        // per-member list types match up to specialized-name renumbering
        // (the subscripts are arbitrary labels; composition renumbers
        // them, so compare the base-name skeletons)
        prop_assert_eq!(composed.part_list_types.len(), single.part_list_types.len());
        let skeleton = |r: &Regex| {
            r.syms_in_order()
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
        };
        for (c, s) in composed.part_list_types.iter().zip(&single.part_list_types) {
            prop_assert_eq!(
                skeleton(c),
                skeleton(s),
                "member list type diverged: {} vs {}",
                c,
                s
            );
        }
    }
}
