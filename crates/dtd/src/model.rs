//! DTDs (Definition 2.2) and specialized DTDs (Definition 3.8).

use mix_relang::symbol::{Name, Sym};
use mix_relang::Regex;
use std::collections::HashMap;
use std::hash::Hash;

/// The type of an element name: `PCDATA` or a regular expression over
/// (tagged) names (Definition 2.2 / 3.8).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ContentModel {
    /// Character content.
    Pcdata,
    /// Element content described by a content-model regex.
    Elements(Regex),
}

impl ContentModel {
    /// The regex, if this is element content.
    pub fn regex(&self) -> Option<&Regex> {
        match self {
            ContentModel::Elements(r) => Some(r),
            ContentModel::Pcdata => None,
        }
    }

    /// Is this `PCDATA`?
    pub fn is_pcdata(&self) -> bool {
        matches!(self, ContentModel::Pcdata)
    }
}

/// An insertion-ordered map from (tagged) names to content models.
///
/// Order matters for display and for deterministic iteration in
/// experiments; lookups go through a side index.
#[derive(Clone, Debug, Default)]
pub struct TypeMap<K: Copy + Eq + Hash> {
    entries: Vec<(K, ContentModel)>,
    index: HashMap<K, usize>,
}

impl<K: Copy + Eq + Hash> TypeMap<K> {
    /// An empty map.
    pub fn new() -> Self {
        TypeMap {
            entries: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Inserts or replaces the type of `k`; returns the previous model.
    pub fn insert(&mut self, k: K, m: ContentModel) -> Option<ContentModel> {
        match self.index.get(&k) {
            Some(&i) => Some(std::mem::replace(&mut self.entries[i].1, m)),
            None => {
                self.index.insert(k, self.entries.len());
                self.entries.push((k, m));
                None
            }
        }
    }

    /// Looks up the type of `k`.
    pub fn get(&self, k: K) -> Option<&ContentModel> {
        self.index.get(&k).map(|&i| &self.entries[i].1)
    }

    /// Does the map define `k`?
    pub fn contains(&self, k: K) -> bool {
        self.index.contains_key(&k)
    }

    /// Number of type definitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &ContentModel)> {
        self.entries.iter().map(|(k, m)| (*k, m))
    }

    /// All keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.entries.iter().map(|(k, _)| *k)
    }

    /// Removes `k` (order of the rest is preserved).
    pub fn remove(&mut self, k: K) -> Option<ContentModel> {
        let i = self.index.remove(&k)?;
        let (_, m) = self.entries.remove(i);
        for (j, (key, _)) in self.entries.iter().enumerate().skip(i) {
            self.index.insert(*key, j);
        }
        Some(m)
    }
}

impl<K: Copy + Eq + Hash> PartialEq for TypeMap<K> {
    /// Structural equality *ignoring insertion order*.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|(k, m)| other.get(k) == Some(m))
    }
}

impl<K: Copy + Eq + Hash> Eq for TypeMap<K> {}

/// A DTD: a document type plus one type definition per element name
/// (Definitions 2.2 and 2.4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dtd {
    /// The document type `d_root` — the required name of the root element.
    pub doc_type: Name,
    /// The type definitions.
    pub types: TypeMap<Name>,
}

impl Dtd {
    /// A DTD with the given document type and no definitions yet.
    pub fn new(doc_type: Name) -> Dtd {
        Dtd {
            doc_type,
            types: TypeMap::new(),
        }
    }

    /// Adds a type definition (builder style).
    pub fn with(mut self, name: Name, m: ContentModel) -> Dtd {
        self.types.insert(name, m);
        self
    }

    /// Looks up a type definition.
    pub fn get(&self, n: Name) -> Option<&ContentModel> {
        self.types.get(n)
    }

    /// The set of names defined by the DTD (`N` of Definition 2.2).
    pub fn names(&self) -> Vec<Name> {
        self.types.keys().collect()
    }

    /// Checks internal consistency: the document type and every name used
    /// inside a content model must be defined. Returns the missing names.
    pub fn undefined_names(&self) -> Vec<Name> {
        let mut missing = Vec::new();
        if !self.types.contains(self.doc_type) {
            missing.push(self.doc_type);
        }
        for (_, m) in self.types.iter() {
            if let ContentModel::Elements(r) = m {
                for s in r.syms() {
                    if !self.types.contains(s.name) && !missing.contains(&s.name) {
                        missing.push(s.name);
                    }
                }
            }
        }
        missing
    }
}

/// A specialized DTD (Definition 3.8): type definitions keyed by *tagged*
/// names, with tagged regular expressions as content models.
///
/// `n^0` is written plainly as `n`; the document type is a single tagged
/// name (the view's top element type).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SDtd {
    /// The (tagged) document type.
    pub doc_type: Sym,
    /// The type definitions over `N^+`.
    pub types: TypeMap<Sym>,
}

impl SDtd {
    /// An s-DTD with the given document type and no definitions yet.
    pub fn new(doc_type: Sym) -> SDtd {
        SDtd {
            doc_type,
            types: TypeMap::new(),
        }
    }

    /// Adds a type definition (builder style).
    pub fn with(mut self, s: Sym, m: ContentModel) -> SDtd {
        self.types.insert(s, m);
        self
    }

    /// Looks up a type definition.
    pub fn get(&self, s: Sym) -> Option<&ContentModel> {
        self.types.get(s)
    }

    /// The specializations of a given name, in insertion order.
    pub fn specializations(&self, n: Name) -> Vec<Sym> {
        self.types.keys().filter(|s| s.name == n).collect()
    }

    /// `spec(n)` of Definition 3.8: the largest tag defined for `n`.
    pub fn spec(&self, n: Name) -> Option<mix_relang::Tag> {
        self.specializations(n).iter().map(|s| s.tag).max()
    }

    /// Every plain DTD is an s-DTD with all tags zero.
    pub fn from_dtd(d: &Dtd) -> SDtd {
        let mut s = SDtd::new(d.doc_type.untagged());
        for (n, m) in d.types.iter() {
            s.types.insert(n.untagged(), m.clone());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_relang::parse_regex;
    use mix_relang::symbol::name;

    fn model(s: &str) -> ContentModel {
        ContentModel::Elements(parse_regex(s).unwrap())
    }

    #[test]
    fn typemap_insert_get_replace() {
        let mut m: TypeMap<Name> = TypeMap::new();
        assert!(m.insert(name("a"), ContentModel::Pcdata).is_none());
        assert_eq!(m.get(name("a")), Some(&ContentModel::Pcdata));
        let old = m.insert(name("a"), model("b"));
        assert_eq!(old, Some(ContentModel::Pcdata));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn typemap_preserves_insertion_order() {
        let mut m: TypeMap<Name> = TypeMap::new();
        for n in ["z", "a", "m"] {
            m.insert(name(n), ContentModel::Pcdata);
        }
        let keys: Vec<&str> = m.keys().map(|k| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn typemap_remove_keeps_index_consistent() {
        let mut m: TypeMap<Name> = TypeMap::new();
        for n in ["a", "b", "c"] {
            m.insert(name(n), ContentModel::Pcdata);
        }
        m.remove(name("a"));
        assert_eq!(m.len(), 2);
        assert!(m.get(name("b")).is_some());
        assert!(m.get(name("c")).is_some());
        m.insert(name("c"), model("x"));
        assert_eq!(m.get(name("c")), Some(&model("x")));
    }

    #[test]
    fn typemap_eq_ignores_order() {
        let mut m1: TypeMap<Name> = TypeMap::new();
        m1.insert(name("a"), ContentModel::Pcdata);
        m1.insert(name("b"), model("a"));
        let mut m2: TypeMap<Name> = TypeMap::new();
        m2.insert(name("b"), model("a"));
        m2.insert(name("a"), ContentModel::Pcdata);
        assert_eq!(m1, m2);
    }

    #[test]
    fn dtd_undefined_names() {
        let d = Dtd::new(name("root")).with(name("root"), model("a, b"));
        let missing = d.undefined_names();
        assert_eq!(missing.len(), 2);
        let d = d
            .with(name("a"), ContentModel::Pcdata)
            .with(name("b"), ContentModel::Pcdata);
        assert!(d.undefined_names().is_empty());
    }

    #[test]
    fn sdtd_specializations() {
        let p = name("publication");
        let s = SDtd::new(name("v").untagged())
            .with(name("v").untagged(), model("publication^1, publication*"))
            .with(p.untagged(), model("title"))
            .with(p.tagged(1), model("title, journal"))
            .with(name("title").untagged(), ContentModel::Pcdata)
            .with(name("journal").untagged(), model("ε"));
        assert_eq!(s.specializations(p).len(), 2);
        assert_eq!(s.spec(p), Some(1));
        assert_eq!(s.spec(name("title")), Some(0));
        assert_eq!(s.spec(name("nope")), None);
    }

    #[test]
    fn sdtd_from_dtd_is_all_untagged() {
        let d = Dtd::new(name("r"))
            .with(name("r"), model("x*"))
            .with(name("x"), ContentModel::Pcdata);
        let s = SDtd::from_dtd(&d);
        assert_eq!(s.doc_type, name("r").untagged());
        assert!(s.types.keys().all(|k| k.is_untagged()));
        assert_eq!(s.types.len(), 2);
    }
}
