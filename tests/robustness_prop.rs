//! Robustness properties: no parser in the workspace may panic on
//! arbitrary input, and the exact counters must agree with brute force
//! (enumerate + accept) on random s-DTDs.

use mix::dtd::enumerate::enumerate_documents;
use mix::dtd::generate::{seeded_dtd, DtdGenConfig};
use mix::dtd::sdtd::SAcceptor;
use mix::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The regex parser returns Ok or Err — never panics, and successful
    /// parses display+reparse to the same AST.
    #[test]
    fn regex_parser_total(input in "\\PC{0,60}") {
        if let Ok(r) = parse_regex(&input) {
            let shown = r.to_string();
            let again = parse_regex(&shown)
                .unwrap_or_else(|e| panic!("display of {input:?} unparseable: {e}"));
            prop_assert_eq!(r, again);
        }
    }

    /// Same for the XML parser.
    #[test]
    fn xml_parser_total(input in "\\PC{0,120}") {
        let _ = parse_document(&input);
    }

    /// And for structured-ish XML-like inputs built from tag fragments.
    #[test]
    fn xml_parser_total_on_taglike(parts in prop::collection::vec(
        prop::sample::select(vec![
            "<a>", "</a>", "<b/>", "<a id=\"x\">", "text", "&amp;", "<", ">", "</",
            "<!--", "-->", "<?xml?>", "\"", "id=", " ",
        ]),
        0..24,
    )) {
        let input: String = parts.concat();
        if let Ok(doc) = parse_document(&input) {
            // anything accepted must re-serialize and re-parse
            let text = write_document(&doc, WriteConfig::default());
            prop_assert!(parse_document(&text).is_ok(), "reserialization broke: {text}");
        }
    }

    /// The query parser is total too.
    #[test]
    fn query_parser_total(input in "\\PC{0,120}") {
        if let Ok(q) = parse_query(&input) {
            let shown = q.to_string();
            prop_assert!(parse_query(&shown).is_ok(), "display unparseable:\n{shown}");
        }
    }

    /// DTD parsers (both syntaxes) are total.
    #[test]
    fn dtd_parsers_total(input in "\\PC{0,120}") {
        let _ = parse_compact(&input);
        let _ = parse_compact_sdtd(&input);
        let _ = parse_xml_dtd(&input);
    }
}

/// The subset-construction s-DTD counter agrees with brute force:
/// enumerate every document of the *merged* DTD and count how many the
/// s-DTD accepts.
#[test]
fn sdtd_counting_agrees_with_enumeration() {
    use mix::xmas::gen::{random_query, QueryGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut checked = 0;
    for seed in 0..40u64 {
        let source = seeded_dtd(
            seed,
            &DtdGenConfig {
                names: 6,
                regex_depth: 2,
                ..DtdGenConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&source, &mut rng, &QueryGenConfig::default());
        let iv = infer_view_dtd(&q, &source).expect("normalizes");
        let max = 7;
        // brute force: all merged-DTD documents, filtered by s-DTD acceptance
        let docs = enumerate_documents(&iv.dtd, max, 400_000);
        if docs.len() >= 400_000 {
            continue; // enumeration capped: comparison not exact
        }
        let acceptor = SAcceptor::new(&iv.sdtd);
        let brute = docs
            .iter()
            .filter(|d| acceptor.document_satisfies(d))
            .count() as u128;
        let counted: u128 = count_sdocuments_by_size(&iv.sdtd, max).iter().sum();
        assert_eq!(
            counted, brute,
            "s-DTD counting mismatch (seed {seed})\nquery:\n{q}\ns-DTD:\n{}",
            iv.sdtd
        );
        checked += 1;
    }
    assert!(checked >= 30, "too few exact comparisons ran: {checked}");
}

/// The dataguide counter agrees with brute force on guide-conforming
/// documents drawn from a DTD enumeration.
#[test]
fn dataguide_counting_agrees_with_enumeration() {
    use mix::dataguide::DataGuide;
    for seed in 0..20u64 {
        let dtd = seeded_dtd(
            seed,
            &DtdGenConfig {
                names: 5,
                regex_depth: 2,
                ..DtdGenConfig::default()
            },
        );
        let docs = mix::dtd::sample::sample_documents(&dtd, 5, seed, Default::default());
        let Some(guide) = DataGuide::of_documents(&docs) else {
            continue;
        };
        // truly independent brute force: enumerate *all* element trees of
        // size ≤ max over the guide's label alphabet (with and without
        // text leaves) and count those `describes` accepts
        let max = 4;
        let counted: u128 = guide.count_conforming_by_size(max).iter().sum();
        let alphabet: Vec<mix::relang::Name> = {
            let mut v: Vec<_> = guide.paths().into_iter().flatten().collect();
            v.sort();
            v.dedup();
            v
        };
        if alphabet.len() > 6 {
            continue; // keep the exponential brute force tiny
        }
        let mut brute = 0u128;
        for s in 1..=max {
            for t in all_trees(guide.root_name, &alphabet, s) {
                if guide.describes(&mix::xml::Document::new(t)) {
                    brute += 1;
                }
            }
        }
        assert_eq!(counted, brute, "seed {seed}\nguide:\n{guide}");
    }
}

/// All element trees with the given root name and exactly `size` nodes,
/// with inner labels drawn from `alphabet`. Leaves come in two shapes:
/// empty-element and text.
fn all_trees(
    root: mix::relang::Name,
    alphabet: &[mix::relang::Name],
    size: usize,
) -> Vec<mix::xml::Element> {
    use mix::xml::{Content, ElemId, Element};
    if size == 0 {
        return vec![];
    }
    if size == 1 {
        return vec![
            Element {
                name: root,
                id: ElemId::fresh(),
                content: Content::Elements(vec![]),
            },
            Element {
                name: root,
                id: ElemId::fresh(),
                content: Content::Text("s".to_owned()),
            },
        ];
    }
    // sequences of subtrees totalling size-1 nodes
    fn seqs(
        alphabet: &[mix::relang::Name],
        budget: usize,
    ) -> Vec<Vec<mix::xml::Element>> {
        if budget == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for &first_name in alphabet {
            for k in 1..=budget {
                for first in all_trees(first_name, alphabet, k) {
                    for rest in seqs(alphabet, budget - k) {
                        let mut v = vec![first.deep_clone_fresh()];
                        v.extend(rest);
                        out.push(v);
                    }
                }
            }
        }
        out
    }
    seqs(alphabet, size - 1)
        .into_iter()
        .map(|children| mix::xml::Element {
            name: root,
            id: mix::xml::ElemId::fresh(),
            content: mix::xml::Content::Elements(children),
        })
        .collect()
}
