//! Hash-consed regex pool: every structurally-canonical regex node is
//! interned once into a process-wide arena and addressed by a `u32`
//! [`ReId`], so structural equality and hashing become single integer
//! compares (the classic technique of Owens/Reppy/Turon,
//! "Regular-expression derivatives re-examined").
//!
//! The pool caches per-node attributes at intern time — nullability,
//! size, the sorted symbol alphabet, the first-set, and a content-stable
//! fingerprint — so the derivative, determinism, simplification, and
//! inference layers stop recomputing them on every visit. Smart
//! constructors ([`concat_ids`], [`alt_ids`], [`star_id`], [`plus_id`],
//! [`opt_id`]) perform **exactly** the normalizations of the boxed
//! [`Regex`] constructors, which gives the central invariant:
//!
//! > `ReId` equality ⟺ structural equality of the externed regexes, and
//! > every id-level rewrite mirrors its boxed twin node-for-node.
//!
//! [`intern`] maps a boxed [`Regex`] into the pool *verbatim* (no
//! re-normalization) and [`to_regex`] rebuilds the identical structure,
//! so the conversion is lossless in both directions and the boxed type
//! remains the parse/display/public-API boundary.
//!
//! The pool is append-only: ids are never invalidated, entries are never
//! moved, and the arena is shared by every thread behind a `parking_lot`
//! lock (the same pattern as the [`crate::symbol`] interner). Node
//! count, approximate bytes, and intern hit/miss counters are exported
//! as `relang_pool_*` instruments of [`mix_obs::global()`].
//!
//! [`set_boxed_baseline`] flips the whole crate (and the inference stack
//! above it) back onto the pre-intern boxed code paths; it exists solely
//! so the X18 benchmark can measure "boxed baseline vs interned" in one
//! process and must not be enabled in production serving.

use crate::ast::Regex;
use crate::symbol::Sym;
use mix_obs::{Counter, Gauge};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// A handle to one interned regex node. Copy, 4 bytes; equality and
/// hashing are integer operations, and two ids are equal iff the regexes
/// they denote are structurally equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReId(u32);

impl ReId {
    /// The id of [`Regex::Empty`] (the paper's `fail`), pre-seeded at slot 0.
    pub const EMPTY: ReId = ReId(0);
    /// The id of [`Regex::Epsilon`], pre-seeded at slot 1.
    pub const EPSILON: ReId = ReId(1);

    /// The raw arena index (dense, allocation order).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for ReId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReId({} = {})", self.0, to_regex(*self))
    }
}

/// The shape of one pool node: the [`Regex`] enum with every child
/// replaced by its [`ReId`]. Sequence children are shared `Arc` slices so
/// reading a node out of the pool never deep-copies.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ReNode {
    /// The empty language.
    Empty,
    /// The empty sequence `ε`.
    Epsilon,
    /// A single tagged name.
    Sym(Sym),
    /// Concatenation (children in order).
    Concat(Arc<[ReId]>),
    /// Union (children in order).
    Alt(Arc<[ReId]>),
    /// Kleene closure.
    Star(ReId),
    /// One-or-more.
    Plus(ReId),
    /// Zero-or-one.
    Opt(ReId),
}

/// One arena slot: the node plus every attribute computed at intern time.
///
/// `alphabet`/`first` are *structural* (they may over-approximate the
/// language on non-normalized regexes that nest `Empty`); `empty_lang`,
/// `live_first`, and `live_alpha` are *language-exact* for every input —
/// the inclusion memo uses them to refute `L(a) ⊆ L(b)` in O(|Σ|)
/// without touching an automaton.
struct Entry {
    node: ReNode,
    nullable: bool,
    fp: u64,
    size: u32,
    alphabet: Arc<[Sym]>,
    first: Arc<[Sym]>,
    empty_lang: bool,
    live_first: Arc<[Sym]>,
    live_alpha: Arc<[Sym]>,
}

struct Inner {
    entries: Vec<Entry>,
    index: HashMap<ReNode, u32>,
    /// Memoized [`image_id`] results (tag-projection is *hot* in tighten).
    images: HashMap<ReId, ReId>,
    /// Interned sorted alphabets: the DFA memo keys automata by
    /// `(ReId, alphabet id)` instead of cloning `Vec<Sym>` per probe.
    alphabets: Vec<Arc<[Sym]>>,
    alphabet_index: HashMap<Arc<[Sym]>, u32>,
    /// Bytes held in child slices / alphabets / first-sets (approximate).
    aux_bytes: usize,
}

struct Pool {
    inner: RwLock<Inner>,
    hits: Counter,
    misses: Counter,
    nodes_gauge: Gauge,
    bytes_gauge: Gauge,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let obs = mix_obs::global();
        let empty_syms: Arc<[Sym]> = Arc::from(Vec::new());
        let entries = vec![
            Entry {
                node: ReNode::Empty,
                nullable: false,
                fp: mix(0, 1),
                size: 1,
                alphabet: Arc::clone(&empty_syms),
                first: Arc::clone(&empty_syms),
                empty_lang: true,
                live_first: Arc::clone(&empty_syms),
                live_alpha: Arc::clone(&empty_syms),
            },
            Entry {
                node: ReNode::Epsilon,
                nullable: true,
                fp: mix(0, 2),
                size: 1,
                alphabet: Arc::clone(&empty_syms),
                first: Arc::clone(&empty_syms),
                empty_lang: false,
                live_first: Arc::clone(&empty_syms),
                live_alpha: empty_syms,
            },
        ];
        let mut index = HashMap::new();
        index.insert(ReNode::Empty, 0);
        index.insert(ReNode::Epsilon, 1);
        Pool {
            inner: RwLock::new(Inner {
                entries,
                index,
                images: HashMap::new(),
                alphabets: Vec::new(),
                alphabet_index: HashMap::new(),
                aux_bytes: 0,
            }),
            hits: obs.counter("relang_pool_intern_hits_total"),
            misses: obs.counter("relang_pool_intern_misses_total"),
            nodes_gauge: obs.gauge("relang_pool_nodes"),
            bytes_gauge: obs.gauge("relang_pool_bytes"),
        }
    })
}

/// SplitMix64 finalizer over a running combine — the same stable mixer as
/// the inference cache, so fingerprints are process-independent (they
/// bottom out in [`Sym::stable_hash`], never in intern indices).
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h.wrapping_add(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sorted dedup-merge of already-sorted symbol sets, reusing an input
/// `Arc` when the merge adds nothing.
fn merge_syms(sets: &[&Arc<[Sym]>]) -> Arc<[Sym]> {
    let mut nonempty: Vec<&Arc<[Sym]>> = sets.iter().copied().filter(|s| !s.is_empty()).collect();
    match nonempty.len() {
        0 => Arc::from(Vec::new()),
        1 => Arc::clone(nonempty.pop().expect("len checked")),
        _ => {
            let mut out: Vec<Sym> = Vec::new();
            for set in nonempty {
                out.extend(set.iter().copied());
            }
            out.sort();
            out.dedup();
            Arc::from(out)
        }
    }
}

/// Every cached attribute of one node, computed before insertion.
struct Attrs {
    nullable: bool,
    fp: u64,
    size: u32,
    alphabet: Arc<[Sym]>,
    first: Arc<[Sym]>,
    empty_lang: bool,
    live_first: Arc<[Sym]>,
    live_alpha: Arc<[Sym]>,
}

/// Computes every cached attribute of `node` from its (already interned)
/// children. Called with a read guard on the arena.
///
/// The `live_*` sets are language-exact for arbitrary (even
/// non-normalized) structures because they are threaded through
/// `empty_lang`: a child with an empty language contributes nothing, and
/// an empty-language parent has empty live sets.
fn compute_attrs(inner: &Inner, node: &ReNode) -> Attrs {
    let e = |id: ReId| &inner.entries[id.0 as usize];
    let empty_syms = || -> Arc<[Sym]> { Arc::from(Vec::new()) };
    match node {
        ReNode::Empty | ReNode::Epsilon => unreachable!("seeded at pool construction"),
        ReNode::Sym(s) => {
            let one: Arc<[Sym]> = Arc::from(vec![*s]);
            Attrs {
                nullable: false,
                fp: mix(mix(0, 3), s.stable_hash()),
                size: 1,
                alphabet: Arc::clone(&one),
                first: Arc::clone(&one),
                empty_lang: false,
                live_first: Arc::clone(&one),
                live_alpha: one,
            }
        }
        ReNode::Concat(v) => {
            let nullable = v.iter().all(|&c| e(c).nullable);
            let fp = v.iter().fold(mix(0, 4), |h, &c| mix(h, e(c).fp));
            let size = 1 + v.iter().map(|&c| e(c).size).sum::<u32>();
            let alpha = merge_syms(&v.iter().map(|&c| &e(c).alphabet).collect::<Vec<_>>());
            // first = union of children first-sets up to and including the
            // first non-nullable child
            let mut firsts: Vec<&Arc<[Sym]>> = Vec::new();
            for &c in v.iter() {
                firsts.push(&e(c).first);
                if !e(c).nullable {
                    break;
                }
            }
            let first = merge_syms(&firsts);
            // a concatenation is empty iff any factor is; when nonempty,
            // every factor is nonempty so the live unions are plain
            let empty_lang = v.iter().any(|&c| e(c).empty_lang);
            let (live_first, live_alpha) = if empty_lang {
                (empty_syms(), empty_syms())
            } else {
                let la = merge_syms(&v.iter().map(|&c| &e(c).live_alpha).collect::<Vec<_>>());
                let mut lfs: Vec<&Arc<[Sym]>> = Vec::new();
                for &c in v.iter() {
                    lfs.push(&e(c).live_first);
                    if !e(c).nullable {
                        break;
                    }
                }
                (merge_syms(&lfs), la)
            };
            Attrs {
                nullable,
                fp,
                size,
                alphabet: alpha,
                first,
                empty_lang,
                live_first,
                live_alpha,
            }
        }
        ReNode::Alt(v) => {
            let nullable = v.iter().any(|&c| e(c).nullable);
            let fp = v.iter().fold(mix(0, 5), |h, &c| mix(h, e(c).fp));
            let size = 1 + v.iter().map(|&c| e(c).size).sum::<u32>();
            let alpha = merge_syms(&v.iter().map(|&c| &e(c).alphabet).collect::<Vec<_>>());
            let first = merge_syms(&v.iter().map(|&c| &e(c).first).collect::<Vec<_>>());
            // empty-language branches have empty live sets, so plain
            // unions are already the exact live sets of the union
            let empty_lang = v.iter().all(|&c| e(c).empty_lang);
            let live_first = merge_syms(&v.iter().map(|&c| &e(c).live_first).collect::<Vec<_>>());
            let live_alpha = merge_syms(&v.iter().map(|&c| &e(c).live_alpha).collect::<Vec<_>>());
            Attrs {
                nullable,
                fp,
                size,
                alphabet: alpha,
                first,
                empty_lang,
                live_first,
                live_alpha,
            }
        }
        ReNode::Star(x) | ReNode::Plus(x) | ReNode::Opt(x) => {
            let tag = match node {
                ReNode::Star(_) => 6,
                ReNode::Plus(_) => 7,
                _ => 8,
            };
            let c = e(*x);
            let nullable = match node {
                ReNode::Plus(_) => c.nullable,
                _ => true,
            };
            // `g*` and `g?` always contain ε; `g+` is empty iff `g` is.
            // In every case the live sets coincide with the child's.
            let empty_lang = match node {
                ReNode::Plus(_) => c.empty_lang,
                _ => false,
            };
            Attrs {
                nullable,
                fp: mix(mix(0, tag), c.fp),
                size: 1 + c.size,
                alphabet: Arc::clone(&c.alphabet),
                first: Arc::clone(&c.first),
                empty_lang,
                live_first: Arc::clone(&c.live_first),
                live_alpha: Arc::clone(&c.live_alpha),
            }
        }
    }
}

fn aux_bytes_of(node: &ReNode, attrs: &Attrs) -> usize {
    let child_bytes = match node {
        ReNode::Concat(v) | ReNode::Alt(v) => std::mem::size_of_val(&v[..]),
        _ => 0,
    };
    // symbol sets are shared Arcs; count them once via strong-count 1
    let set_bytes = |s: &Arc<[Sym]>| {
        if Arc::strong_count(s) <= 2 {
            std::mem::size_of_val(&s[..])
        } else {
            0
        }
    };
    child_bytes
        + set_bytes(&attrs.alphabet)
        + set_bytes(&attrs.first)
        + set_bytes(&attrs.live_first)
        + set_bytes(&attrs.live_alpha)
}

/// Interns a fully-formed node (children must already be pool ids).
fn intern_node(node: ReNode) -> ReId {
    let p = pool();
    {
        let g = p.inner.read();
        if let Some(&i) = g.index.get(&node) {
            p.hits.inc();
            return ReId(i);
        }
    }
    let attrs = {
        let g = p.inner.read();
        compute_attrs(&g, &node)
    };
    let mut g = p.inner.write();
    if let Some(&i) = g.index.get(&node) {
        p.hits.inc();
        return ReId(i);
    }
    let i = g.entries.len() as u32;
    g.aux_bytes += aux_bytes_of(&node, &attrs);
    g.index.insert(node.clone(), i);
    g.entries.push(Entry {
        node,
        nullable: attrs.nullable,
        fp: attrs.fp,
        size: attrs.size,
        alphabet: attrs.alphabet,
        first: attrs.first,
        empty_lang: attrs.empty_lang,
        live_first: attrs.live_first,
        live_alpha: attrs.live_alpha,
    });
    p.misses.inc();
    p.nodes_gauge.set(g.entries.len() as i64);
    p.bytes_gauge.set(approx_bytes(&g) as i64);
    ReId(i)
}

fn approx_bytes(g: &Inner) -> usize {
    g.entries.len() * (std::mem::size_of::<Entry>() + std::mem::size_of::<(ReNode, u32)>())
        + g.aux_bytes
        + g.alphabets
            .iter()
            .map(|a| std::mem::size_of_val(&a[..]))
            .sum::<usize>()
}

// ---------------------------------------------------------------------
// Smart constructors — each mirrors its boxed Regex twin exactly.
// ---------------------------------------------------------------------

/// The interned [`Regex::Sym`] leaf.
pub fn sym_id(s: Sym) -> ReId {
    intern_node(ReNode::Sym(s))
}

/// Smart concatenation over ids: flattens, drops `ε`, propagates `Empty`
/// (mirrors [`Regex::concat`]).
pub fn concat_ids(parts: impl IntoIterator<Item = ReId>) -> ReId {
    // collect first: the iterator may intern on the fly, and holding the
    // read guard across a re-entrant write would deadlock
    let parts: Vec<ReId> = parts.into_iter().collect();
    let mut out: Vec<ReId> = Vec::new();
    {
        let g = pool().inner.read();
        for id in parts {
            match &g.entries[id.0 as usize].node {
                ReNode::Empty => return ReId::EMPTY,
                ReNode::Epsilon => {}
                ReNode::Concat(v) => out.extend(v.iter().copied()),
                _ => out.push(id),
            }
        }
    }
    match out.len() {
        0 => ReId::EPSILON,
        1 => out[0],
        _ => intern_node(ReNode::Concat(out.into())),
    }
}

/// Smart union over ids: flattens, drops `Empty`, deduplicates (id
/// equality *is* the structural dedup of [`Regex::alt`]), and
/// canonicalizes an `ε` branch into `?`.
pub fn alt_ids(parts: impl IntoIterator<Item = ReId>) -> ReId {
    let parts: Vec<ReId> = parts.into_iter().collect();
    let mut out: Vec<ReId> = Vec::new();
    let mut has_epsilon = false;
    {
        let g = pool().inner.read();
        for id in parts {
            match &g.entries[id.0 as usize].node {
                ReNode::Empty => {}
                ReNode::Epsilon => has_epsilon = true,
                ReNode::Alt(v) => {
                    for &x in v.iter() {
                        if !out.contains(&x) {
                            out.push(x);
                        }
                    }
                }
                _ => {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
    }
    let core = match out.len() {
        0 => {
            return if has_epsilon {
                ReId::EPSILON
            } else {
                ReId::EMPTY
            }
        }
        1 => out[0],
        _ => intern_node(ReNode::Alt(out.into())),
    };
    if has_epsilon {
        opt_id(core)
    } else {
        core
    }
}

/// Smart Kleene star (mirrors [`Regex::star`]).
pub fn star_id(r: ReId) -> ReId {
    match node(r) {
        ReNode::Empty | ReNode::Epsilon => ReId::EPSILON,
        ReNode::Star(_) => r,
        ReNode::Plus(inner) | ReNode::Opt(inner) => intern_node(ReNode::Star(inner)),
        _ => intern_node(ReNode::Star(r)),
    }
}

/// Smart `+` (mirrors [`Regex::plus`]).
pub fn plus_id(r: ReId) -> ReId {
    match node(r) {
        ReNode::Empty => ReId::EMPTY,
        ReNode::Epsilon => ReId::EPSILON,
        ReNode::Star(_) | ReNode::Plus(_) => r,
        ReNode::Opt(inner) => intern_node(ReNode::Star(inner)),
        _ => intern_node(ReNode::Plus(r)),
    }
}

/// Smart `?` (mirrors [`Regex::opt`]).
pub fn opt_id(r: ReId) -> ReId {
    match node(r) {
        ReNode::Empty | ReNode::Epsilon => ReId::EPSILON,
        ReNode::Star(_) | ReNode::Opt(_) => r,
        ReNode::Plus(inner) => intern_node(ReNode::Star(inner)),
        _ => intern_node(ReNode::Opt(r)),
    }
}

// ---------------------------------------------------------------------
// Conversions and accessors
// ---------------------------------------------------------------------

/// Interns a boxed regex *verbatim* — no re-normalization, so
/// [`to_regex`]`(intern(r))` is structurally identical to `r` for every
/// input, normalized or not.
pub fn intern(r: &Regex) -> ReId {
    match r {
        Regex::Empty => ReId::EMPTY,
        Regex::Epsilon => ReId::EPSILON,
        Regex::Sym(s) => sym_id(*s),
        Regex::Concat(v) => {
            let kids: Vec<ReId> = v.iter().map(intern).collect();
            intern_node(ReNode::Concat(kids.into()))
        }
        Regex::Alt(v) => {
            let kids: Vec<ReId> = v.iter().map(intern).collect();
            intern_node(ReNode::Alt(kids.into()))
        }
        Regex::Star(x) => intern_node(ReNode::Star(intern(x))),
        Regex::Plus(x) => intern_node(ReNode::Plus(intern(x))),
        Regex::Opt(x) => intern_node(ReNode::Opt(intern(x))),
    }
}

/// Rebuilds the boxed regex denoted by `id` (the lossless inverse of
/// [`intern`]).
pub fn to_regex(id: ReId) -> Regex {
    match node(id) {
        ReNode::Empty => Regex::Empty,
        ReNode::Epsilon => Regex::Epsilon,
        ReNode::Sym(s) => Regex::Sym(s),
        ReNode::Concat(v) => Regex::Concat(v.iter().map(|&c| to_regex(c)).collect()),
        ReNode::Alt(v) => Regex::Alt(v.iter().map(|&c| to_regex(c)).collect()),
        ReNode::Star(x) => Regex::Star(Box::new(to_regex(x))),
        ReNode::Plus(x) => Regex::Plus(Box::new(to_regex(x))),
        ReNode::Opt(x) => Regex::Opt(Box::new(to_regex(x))),
    }
}

/// The node stored at `id` (cheap: children are shared `Arc` slices).
pub fn node(id: ReId) -> ReNode {
    pool().inner.read().entries[id.0 as usize].node.clone()
}

/// Cached nullability (does `L(id)` contain the empty sequence?).
pub fn nullable(id: ReId) -> bool {
    pool().inner.read().entries[id.0 as usize].nullable
}

/// Cached content-stable fingerprint: a process-independent structural
/// hash built from [`Sym::stable_hash`] leaves. Equal fingerprints are a
/// (collision-improbable) witness of structural equality across
/// processes; within one process use `ReId` equality instead.
pub fn fingerprint(id: ReId) -> u64 {
    pool().inner.read().entries[id.0 as usize].fp
}

/// Cached AST node count.
pub fn size(id: ReId) -> usize {
    pool().inner.read().entries[id.0 as usize].size as usize
}

/// Cached sorted distinct symbols of the regex.
pub fn alphabet(id: ReId) -> Arc<[Sym]> {
    Arc::clone(&pool().inner.read().entries[id.0 as usize].alphabet)
}

/// Cached first-set: the symbols that can start a word of `L(id)` (an
/// over-approximation only for non-normalized regexes that nest `Empty`).
pub fn first_set(id: ReId) -> Arc<[Sym]> {
    Arc::clone(&pool().inner.read().entries[id.0 as usize].first)
}

/// Cached, language-exact emptiness: `L(id) = ∅`? Exact for every input,
/// normalized or not.
pub fn empty_lang(id: ReId) -> bool {
    pool().inner.read().entries[id.0 as usize].empty_lang
}

/// Cached, language-exact first-set: exactly the symbols that start some
/// word of `L(id)`.
pub fn live_first(id: ReId) -> Arc<[Sym]> {
    Arc::clone(&pool().inner.read().entries[id.0 as usize].live_first)
}

/// Cached, language-exact alphabet: exactly the symbols occurring in some
/// word of `L(id)`.
pub fn live_alphabet(id: ReId) -> Arc<[Sym]> {
    Arc::clone(&pool().inner.read().entries[id.0 as usize].live_alpha)
}

/// `a ⊆ b` over sorted symbol sets (a linear merge walk).
pub fn syms_subset(a: &[Sym], b: &[Sym]) -> bool {
    let mut i = 0;
    for &s in a {
        while i < b.len() && b[i] < s {
            i += 1;
        }
        if i >= b.len() || b[i] != s {
            return false;
        }
    }
    true
}

/// The sorted union of two cached alphabets (the shared alphabet of a
/// product construction), reusing `a`'s set when it already covers `b`.
pub fn shared_alphabet_ids(a: ReId, b: ReId) -> Arc<[Sym]> {
    let (sa, sb) = {
        let g = pool().inner.read();
        (
            Arc::clone(&g.entries[a.0 as usize].alphabet),
            Arc::clone(&g.entries[b.0 as usize].alphabet),
        )
    };
    merge_syms(&[&sa, &sb])
}

/// Interns a sorted alphabet and returns its dense id — the second half
/// of the DFA memo key.
pub fn intern_alphabet(alpha: &[Sym]) -> u32 {
    let p = pool();
    {
        let g = p.inner.read();
        if let Some(&i) = g.alphabet_index.get(alpha) {
            return i;
        }
    }
    let mut g = p.inner.write();
    if let Some(&i) = g.alphabet_index.get(alpha) {
        return i;
    }
    let arc: Arc<[Sym]> = alpha.into();
    let i = g.alphabets.len() as u32;
    g.alphabets.push(Arc::clone(&arc));
    g.alphabet_index.insert(arc, i);
    i
}

/// The alphabet interned under `i` (see [`intern_alphabet`]).
pub fn alphabet_by_index(i: u32) -> Arc<[Sym]> {
    Arc::clone(&pool().inner.read().alphabets[i as usize])
}

/// Rebuilds `id` with every leaf replaced by `f(leaf)` — the id-level
/// [`Regex::map_syms`].
pub fn map_syms_id(id: ReId, f: &mut impl FnMut(Sym) -> ReId) -> ReId {
    match node(id) {
        ReNode::Empty => ReId::EMPTY,
        ReNode::Epsilon => ReId::EPSILON,
        ReNode::Sym(s) => f(s),
        ReNode::Concat(v) => concat_ids(v.iter().map(|&c| map_syms_id(c, f)).collect::<Vec<_>>()),
        ReNode::Alt(v) => alt_ids(v.iter().map(|&c| map_syms_id(c, f)).collect::<Vec<_>>()),
        ReNode::Star(x) => star_id(map_syms_id(x, f)),
        ReNode::Plus(x) => plus_id(map_syms_id(x, f)),
        ReNode::Opt(x) => opt_id(map_syms_id(x, f)),
    }
}

/// Memoized image (Definition 3.9): every `n^T` becomes `n^0`. Tighten
/// asks for the same images over and over; the pool remembers each.
pub fn image_id(id: ReId) -> ReId {
    if let Some(&img) = pool().inner.read().images.get(&id) {
        return img;
    }
    let img = map_syms_id(id, &mut |s| sym_id(s.name.untagged()));
    pool().inner.write().images.insert(id, img);
    img
}

// ---------------------------------------------------------------------
// Portable arena export / import (the mix-store warm-start surface)
// ---------------------------------------------------------------------

/// One node of a portable arena export: the [`ReNode`] shape with every
/// child replaced by its *export index* and symbols spelled out as
/// `(name string, tag)` pairs. Intern indices are process-local, so a
/// portable encoding must bottom out in content, never in ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortableNode {
    /// The empty language.
    Empty,
    /// The empty sequence `ε`.
    Epsilon,
    /// A single tagged name, by content.
    Sym {
        /// The element name, spelled out.
        name: String,
        /// The specialization tag (`0` = untagged).
        tag: crate::symbol::Tag,
    },
    /// Concatenation (children as export indices).
    Concat(Vec<u32>),
    /// Union (children as export indices).
    Alt(Vec<u32>),
    /// Kleene closure.
    Star(u32),
    /// One-or-more.
    Plus(u32),
    /// Zero-or-one.
    Opt(u32),
}

/// One exported arena slot: the portable node plus the content-stable
/// fingerprint cached at intern time. [`import_arena`] re-interns the
/// node and re-verifies the fingerprint; a mismatch disqualifies the
/// slot (and everything reachable through it) instead of trusting it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableEntry {
    /// The node, children as indices into the same export.
    pub node: PortableNode,
    /// The [`fingerprint`] recorded when the node was interned.
    pub fp: u64,
}

/// The outcome of [`import_arena`]: a dense map from export indices to
/// the (re-)interned ids of this process, with holes where a slot failed
/// re-validation.
#[derive(Clone, Debug, Default)]
pub struct ImportedArena {
    /// `ids[i]` is the local id of export slot `i`, or `None` if the slot
    /// (or a child it depends on) failed fingerprint re-validation.
    pub ids: Vec<Option<ReId>>,
    /// Slots re-interned and fingerprint-verified.
    pub imported: usize,
    /// Slots dropped (bad child reference or fingerprint mismatch).
    pub skipped: usize,
}

impl ImportedArena {
    /// The local id of export slot `i`, if it survived re-validation.
    pub fn id(&self, i: u32) -> Option<ReId> {
        self.ids.get(i as usize).copied().flatten()
    }
}

/// Exports the whole arena in allocation order. Children always precede
/// parents (a node is interned only after its children), so an export is
/// importable by a single forward pass. The export index of a slot is
/// exactly its [`ReId::index`] at export time.
pub fn export_arena() -> Vec<PortableEntry> {
    let g = pool().inner.read();
    g.entries
        .iter()
        .map(|e| {
            let node = match &e.node {
                ReNode::Empty => PortableNode::Empty,
                ReNode::Epsilon => PortableNode::Epsilon,
                ReNode::Sym(s) => PortableNode::Sym {
                    name: s.name.as_str().to_owned(),
                    tag: s.tag,
                },
                ReNode::Concat(v) => PortableNode::Concat(v.iter().map(|c| c.0).collect()),
                ReNode::Alt(v) => PortableNode::Alt(v.iter().map(|c| c.0).collect()),
                ReNode::Star(x) => PortableNode::Star(x.0),
                ReNode::Plus(x) => PortableNode::Plus(x.0),
                ReNode::Opt(x) => PortableNode::Opt(x.0),
            };
            PortableEntry { node, fp: e.fp }
        })
        .collect()
}

/// Re-interns an exported arena into this process's pool, re-validating
/// every slot: children must resolve to already-imported slots (exports
/// are in allocation order, so a forward reference is corruption), and
/// the recomputed fingerprint must equal the recorded one. A failed slot
/// becomes a hole; slots referencing a hole become holes themselves, so
/// corruption never poisons anything downstream — ids stay dense because
/// interning goes through the ordinary hash-consing path.
pub fn import_arena(entries: &[PortableEntry]) -> ImportedArena {
    use crate::symbol::Name;
    let mut out = ImportedArena {
        ids: Vec::with_capacity(entries.len()),
        ..ImportedArena::default()
    };
    for entry in entries {
        // resolve children against the slots imported so far; any miss
        // (forward/out-of-range reference or an earlier hole) skips this
        // slot too
        let child = |i: &u32| out.ids.get(*i as usize).copied().flatten();
        let id = match &entry.node {
            PortableNode::Empty => Some(ReId::EMPTY),
            PortableNode::Epsilon => Some(ReId::EPSILON),
            PortableNode::Sym { name, tag } => Some(sym_id(Sym {
                name: Name::intern(name),
                tag: *tag,
            })),
            PortableNode::Concat(v) => v
                .iter()
                .map(child)
                .collect::<Option<Vec<ReId>>>()
                .map(|kids| intern_node(ReNode::Concat(kids.into()))),
            PortableNode::Alt(v) => v
                .iter()
                .map(child)
                .collect::<Option<Vec<ReId>>>()
                .map(|kids| intern_node(ReNode::Alt(kids.into()))),
            PortableNode::Star(x) => child(x).map(|k| intern_node(ReNode::Star(k))),
            PortableNode::Plus(x) => child(x).map(|k| intern_node(ReNode::Plus(k))),
            PortableNode::Opt(x) => child(x).map(|k| intern_node(ReNode::Opt(k))),
        };
        // content-addressing check: the fingerprint recomputed from the
        // re-interned structure must match the recorded one
        let id = id.filter(|&i| fingerprint(i) == entry.fp);
        match id {
            Some(_) => out.imported += 1,
            None => out.skipped += 1,
        }
        out.ids.push(id);
    }
    out
}

// ---------------------------------------------------------------------
// Baseline mode and statistics
// ---------------------------------------------------------------------

static BOXED_BASELINE: AtomicBool = AtomicBool::new(false);

/// Switches the relang decision procedures (and everything mode-aware
/// above them) onto the pre-intern boxed code paths. **Benchmark-only**:
/// the X18 harness uses it to measure the boxed baseline and the interned
/// hot path in the same process. Not intended for concurrent flipping.
pub fn set_boxed_baseline(on: bool) {
    BOXED_BASELINE.store(on, Ordering::SeqCst);
}

/// Whether the boxed-baseline benchmark mode is active.
pub fn boxed_baseline() -> bool {
    BOXED_BASELINE.load(Ordering::Relaxed)
}

/// A snapshot of the pool's size and dedup counters (a typed view over
/// the `relang_pool_*` instruments of [`mix_obs::global()`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Interned nodes currently resident (the arena never shrinks).
    pub nodes: u64,
    /// Approximate bytes held by the arena, hash-cons index, and cached
    /// attribute sets.
    pub bytes: u64,
    /// Constructor calls answered by an existing node.
    pub intern_hits: u64,
    /// Constructor calls that allocated a fresh node.
    pub intern_misses: u64,
}

impl PoolStats {
    /// Fraction of intern probes deduplicated onto an existing node.
    pub fn dedup_ratio(&self) -> f64 {
        let total = self.intern_hits + self.intern_misses;
        if total == 0 {
            0.0
        } else {
            self.intern_hits as f64 / total as f64
        }
    }
}

/// Current pool statistics.
pub fn pool_stats() -> PoolStats {
    let p = pool();
    let g = p.inner.read();
    PoolStats {
        nodes: g.entries.len() as u64,
        bytes: approx_bytes(&g) as u64,
        intern_hits: p.hits.get(),
        intern_misses: p.misses.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use crate::symbol::{name, sym};

    fn r(s: &str) -> Regex {
        parse_regex(s).unwrap()
    }

    #[test]
    fn intern_is_lossless_and_idempotent() {
        for src in [
            "a",
            "a, b",
            "(a | b)*, c",
            "title, author+, (journal | conference)",
            "(a?, b)*",
            "j^1, (j | c)*",
        ] {
            let re = r(src);
            let id = intern(&re);
            assert_eq!(to_regex(id), re, "{src} did not round-trip");
            assert_eq!(intern(&re), id, "{src} re-interned to a new id");
        }
        assert_eq!(intern(&Regex::Empty), ReId::EMPTY);
        assert_eq!(intern(&Regex::Epsilon), ReId::EPSILON);
    }

    #[test]
    fn id_equality_is_structural_equality() {
        let a = intern(&r("x, (y | z)*"));
        let b = intern(&r("x, (y | z)*"));
        let c = intern(&r("x, (z | y)*"));
        assert_eq!(a, b);
        assert_ne!(a, c, "branch order is structural");
    }

    #[test]
    fn smart_ctors_mirror_boxed_twins() {
        let a = Regex::Sym(sym("a"));
        let b = Regex::Sym(sym("b"));
        let ia = intern(&a);
        let ib = intern(&b);
        // concat laws
        assert_eq!(concat_ids([ReId::EPSILON, ia]), ia);
        assert_eq!(concat_ids([ReId::EMPTY, ia]), ReId::EMPTY);
        assert_eq!(concat_ids([] as [ReId; 0]), ReId::EPSILON);
        assert_eq!(
            to_regex(concat_ids([concat_ids([ia, ib]), ia])),
            Regex::concat([a.clone().then(b.clone()), a.clone()])
        );
        // alt laws
        assert_eq!(alt_ids([ReId::EMPTY, ia]), ia);
        assert_eq!(alt_ids([ia, ia]), ia);
        assert_eq!(alt_ids([] as [ReId; 0]), ReId::EMPTY);
        assert_eq!(
            to_regex(alt_ids([ReId::EPSILON, ia])),
            Regex::alt([Regex::Epsilon, a.clone()])
        );
        // star/plus/opt collapses
        assert_eq!(star_id(ReId::EPSILON), ReId::EPSILON);
        assert_eq!(star_id(star_id(ia)), star_id(ia));
        assert_eq!(star_id(plus_id(ia)), star_id(ia));
        assert_eq!(plus_id(opt_id(ia)), star_id(ia));
        assert_eq!(opt_id(plus_id(ia)), star_id(ia));
        assert_eq!(opt_id(opt_id(ia)), opt_id(ia));
        assert_eq!(plus_id(ReId::EMPTY), ReId::EMPTY);
        assert_eq!(opt_id(ReId::EMPTY), ReId::EPSILON);
        let _ = b;
    }

    #[test]
    fn cached_attributes_agree_with_boxed() {
        for src in [
            "a",
            "a?, b",
            "(a | b)*, c",
            "title, author+, (journal | conference)",
            "(prolog, (prolog | conclusion)*, conclusion)?",
        ] {
            let re = r(src);
            let id = intern(&re);
            assert_eq!(nullable(id), re.nullable(), "{src} nullable");
            assert_eq!(size(id), re.size(), "{src} size");
            let expect: Vec<Sym> = re.syms().into_iter().collect();
            assert_eq!(&alphabet(id)[..], &expect[..], "{src} alphabet");
        }
    }

    #[test]
    fn first_sets() {
        let id = intern(&r("a?, b, c"));
        let f = first_set(id);
        assert_eq!(&f[..], &[sym("a"), sym("b")]);
        let id = intern(&r("(a | b)*, c"));
        let f = first_set(id);
        assert_eq!(&f[..], &[sym("a"), sym("b"), sym("c")]);
        assert!(first_set(ReId::EPSILON).is_empty());
    }

    #[test]
    fn language_exact_attributes() {
        // empty_lang is exact even on non-normalized structures that the
        // smart constructors would have collapsed
        let dead = intern(&Regex::Concat(vec![
            Regex::Sym(sym("a")),
            Regex::Empty,
            Regex::Sym(sym("b")),
        ]));
        assert!(empty_lang(dead));
        assert!(live_first(dead).is_empty());
        assert!(live_alphabet(dead).is_empty());
        // … while the structural sets over-approximate on such inputs
        assert!(!alphabet(dead).is_empty());

        let hollow = intern(&Regex::Star(Box::new(Regex::Empty)));
        assert!(!empty_lang(hollow), "L(∅*) = {{ε}}");
        assert!(live_alphabet(hollow).is_empty());

        let mixed = intern(&Regex::Alt(vec![
            Regex::Concat(vec![Regex::Sym(sym("a")), Regex::Empty]),
            Regex::Sym(sym("b")),
        ]));
        assert!(!empty_lang(mixed));
        assert_eq!(&live_first(mixed)[..], &[sym("b")]);
        assert_eq!(&live_alphabet(mixed)[..], &[sym("b")]);

        // on normalized regexes live and structural sets coincide
        let norm = intern(&parse_regex("a?, b, (c | d)+").unwrap());
        assert!(!empty_lang(norm));
        assert_eq!(&live_first(norm)[..], &first_set(norm)[..]);
        assert_eq!(&live_alphabet(norm)[..], &alphabet(norm)[..]);
    }

    #[test]
    fn syms_subset_is_set_inclusion() {
        let (a, b, c) = (sym("a"), sym("b"), sym("c"));
        assert!(syms_subset(&[], &[a]));
        assert!(syms_subset(&[a, c], &[a, b, c]));
        assert!(!syms_subset(&[a, b], &[a, c]));
        assert!(!syms_subset(&[a], &[]));
    }

    #[test]
    fn fingerprints_are_structural() {
        assert_eq!(
            fingerprint(intern(&r("a, b"))),
            fingerprint(intern(&r("a, b")))
        );
        assert_ne!(
            fingerprint(intern(&r("a, b"))),
            fingerprint(intern(&r("b, a")))
        );
        assert_ne!(fingerprint(intern(&r("a*"))), fingerprint(intern(&r("a+"))));
        assert_ne!(
            fingerprint(intern(&r("j^1"))),
            fingerprint(intern(&r("j^2")))
        );
    }

    #[test]
    fn image_is_memoized_and_correct() {
        let re = r("j^1, (j | c)*, j^2");
        let id = intern(&re);
        let img = image_id(id);
        assert_eq!(to_regex(img), re.image());
        assert_eq!(image_id(id), img);
    }

    #[test]
    fn map_syms_mirrors_boxed() {
        let re = r("x, (y | z)+");
        let n = name("w");
        let boxed = re.map_syms(&mut |s| {
            if s.name == name("y") {
                Regex::Sym(n.untagged())
            } else {
                Regex::Sym(s)
            }
        });
        let id = map_syms_id(intern(&re), &mut |s| {
            if s.name == name("y") {
                sym_id(n.untagged())
            } else {
                sym_id(s)
            }
        });
        assert_eq!(to_regex(id), boxed);
    }

    #[test]
    fn alphabet_interning_is_stable() {
        let alpha = vec![sym("a"), sym("b")];
        let i = intern_alphabet(&alpha);
        assert_eq!(intern_alphabet(&alpha), i);
        assert_eq!(&alphabet_by_index(i)[..], &alpha[..]);
    }

    #[test]
    fn export_import_roundtrips_the_arena() {
        let a = intern(&r("exp1, (exp2 | exp3)*"));
        let b = intern(&r("exp4^2, exp1+"));
        let exported = export_arena();
        let back = import_arena(&exported);
        assert_eq!(back.skipped, 0);
        assert_eq!(back.imported, exported.len());
        // importing into the same process maps every slot onto itself
        assert_eq!(back.id(a.index()), Some(a));
        assert_eq!(back.id(b.index()), Some(b));
        assert_eq!(back.id(ReId::EMPTY.index()), Some(ReId::EMPTY));
    }

    #[test]
    fn import_skips_tampered_slots_and_their_dependents() {
        let parent = intern(&r("tam1, tam2"));
        let mut exported = export_arena();
        // find tam1's leaf slot and corrupt its recorded fingerprint
        let leaf = exported
            .iter()
            .position(|e| matches!(&e.node, PortableNode::Sym { name, .. } if name == "tam1"))
            .expect("leaf exported");
        exported[leaf].fp ^= 1;
        let back = import_arena(&exported);
        assert!(back.skipped >= 1);
        assert_eq!(back.id(leaf as u32), None, "tampered slot must not map");
        assert_eq!(
            back.id(parent.index()),
            None,
            "a node over a tampered child must not map"
        );
        // untouched slots still import
        assert_eq!(back.id(ReId::EPSILON.index()), Some(ReId::EPSILON));
    }

    #[test]
    fn import_skips_forward_references() {
        let exported = vec![PortableEntry {
            // child index 7 does not exist yet at slot 0: corruption
            node: PortableNode::Star(7),
            fp: 0,
        }];
        let back = import_arena(&exported);
        assert_eq!(back.imported, 0);
        assert_eq!(back.skipped, 1);
        assert_eq!(back.id(0), None);
    }

    #[test]
    fn pool_stats_move() {
        let before = pool_stats();
        let _ = intern(&r("statsprobe1, statsprobe2*"));
        let after = pool_stats();
        assert!(after.nodes > before.nodes);
        assert!(after.bytes > 0);
        assert!(after.intern_misses > before.intern_misses);
        let _ = intern(&r("statsprobe1, statsprobe2*"));
        let third = pool_stats();
        assert!(third.intern_hits > after.intern_hits);
        assert!(third.dedup_ratio() > 0.0);
    }
}
