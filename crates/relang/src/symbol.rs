//! Interned element names and tagged names.
//!
//! The paper's model (Definition 2.2) works with a finite set `N` of element
//! names; specialized DTDs (Definition 3.8) extend it to tagged names
//! `n^i` where the *tag* `i` is a non-negative integer and `n^0` is written
//! simply `n`. Names are hot: every regex leaf, every automaton transition,
//! every DTD lookup touches them, so we intern them once into a global table
//! and pass around a `u32` index.

use parking_lot::RwLock;
use std::fmt;
use std::sync::OnceLock;

/// An interned element name (the `n` of the paper).
///
/// Two `Name`s are equal iff the underlying strings are equal; comparison and
/// hashing are integer operations on the intern index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(u32);

/// The tag of a specialized name: `0` means "untagged" (`n` is shorthand for
/// `n^0`, Section 3.3).
pub type Tag = u32;

/// A tagged name `n^T` — a member of the set `N^+` of Definition 3.8.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym {
    /// The underlying element name `n`.
    pub name: Name,
    /// The specialization tag `T` (`0` = untagged).
    pub tag: Tag,
}

struct Interner {
    names: Vec<&'static str>,
    // FNV-1a of the string, computed once at intern time so fingerprinting
    // a whole DTD/query costs one table lookup per name instead of a
    // re-hash of its characters (intern indices themselves are not stable
    // across processes, so they cannot serve as persistent cache keys).
    stable_hashes: Vec<u64>,
    index: std::collections::HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            stable_hashes: Vec::new(),
            index: std::collections::HashMap::new(),
        })
    })
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Name {
    /// Interns `s` and returns its `Name`. Idempotent.
    pub fn intern(s: &str) -> Name {
        {
            let g = interner().read();
            if let Some(&i) = g.index.get(s) {
                return Name(i);
            }
        }
        let mut g = interner().write();
        if let Some(&i) = g.index.get(s) {
            return Name(i);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let i = g.names.len() as u32;
        g.names.push(leaked);
        g.stable_hashes.push(fnv1a(leaked.as_bytes()));
        g.index.insert(leaked, i);
        Name(i)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// The raw intern index (useful as a dense array key).
    pub fn index(self) -> u32 {
        self.0
    }

    /// This name as an untagged symbol (`n^0`).
    pub fn untagged(self) -> Sym {
        Sym { name: self, tag: 0 }
    }

    /// This name with tag `t`.
    pub fn tagged(self, t: Tag) -> Sym {
        Sym { name: self, tag: t }
    }

    /// A process-independent 64-bit hash of the underlying string,
    /// precomputed at intern time. Equal strings hash equal in every
    /// process, which makes this the building block for the inference
    /// cache's stable fingerprints (the intern *index* is only stable
    /// within one process).
    pub fn stable_hash(self) -> u64 {
        interner().read().stable_hashes[self.0 as usize]
    }
}

impl Sym {
    /// Whether this is an untagged symbol (`n^0`).
    pub fn is_untagged(self) -> bool {
        self.tag == 0
    }

    /// The *image* of this symbol: the name with the tag projected out
    /// (Definition 3.9).
    pub fn image(self) -> Name {
        self.name
    }

    /// Process-independent hash of the tagged name (see
    /// [`Name::stable_hash`]); the tag is mixed in with a SplitMix64-style
    /// finalizer so `n^1` and `n^2` scatter.
    pub fn stable_hash(self) -> u64 {
        let mut z = self
            .name
            .stable_hash()
            .wrapping_add((self.tag as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tag == 0 {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}^{}", self.name, self.tag)
        }
    }
}

impl From<Name> for Sym {
    fn from(n: Name) -> Sym {
        n.untagged()
    }
}

/// Convenience: intern a name.
pub fn name(s: &str) -> Name {
    Name::intern(s)
}

/// Convenience: intern a name as an untagged symbol.
pub fn sym(s: &str) -> Sym {
    Name::intern(s).untagged()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Name::intern("professor");
        let b = Name::intern("professor");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "professor");
    }

    #[test]
    fn distinct_strings_distinct_names() {
        assert_ne!(Name::intern("journal"), Name::intern("conference"));
    }

    #[test]
    fn tags_distinguish_syms() {
        let n = Name::intern("publication");
        assert_ne!(n.untagged(), n.tagged(1));
        assert_eq!(n.tagged(1).image(), n);
        assert!(n.untagged().is_untagged());
        assert!(!n.tagged(2).is_untagged());
    }

    #[test]
    fn stable_hashes_depend_only_on_content() {
        let a = Name::intern("stable-hash-probe");
        let b = Name::intern("stable-hash-probe");
        assert_eq!(a.stable_hash(), b.stable_hash());
        assert_ne!(
            Name::intern("journal").stable_hash(),
            Name::intern("conference").stable_hash()
        );
        // FNV-1a is a fixed function of the bytes: pin one value so a
        // accidental algorithm change (which would orphan any persisted
        // fingerprints) fails loudly.
        assert_eq!(Name::intern("a").stable_hash(), 0xaf63_dc4c_8601_ec8c);
        let n = Name::intern("publication");
        assert_ne!(n.tagged(1).stable_hash(), n.tagged(2).stable_hash());
        assert_ne!(n.untagged().stable_hash(), n.tagged(1).stable_hash());
    }

    #[test]
    fn display_forms() {
        let n = Name::intern("pub");
        assert_eq!(n.untagged().to_string(), "pub");
        assert_eq!(n.tagged(3).to_string(), "pub^3");
    }

    #[test]
    fn concurrent_interning() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut v = Vec::new();
                    for k in 0..100 {
                        v.push(Name::intern(&format!("name-{}", (i * 7 + k) % 50)));
                    }
                    v
                })
            })
            .collect();
        let all: Vec<Vec<Name>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same string interned from different threads must agree.
        for row in &all {
            for n in row {
                assert_eq!(Name::intern(n.as_str()), *n);
            }
        }
    }
}
