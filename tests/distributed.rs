//! End-to-end distributed mediation over the mix-net wire protocol.
//!
//! The acceptance scenario: a mediator federates two loopback
//! `serve-source` daemons with one in-process source under a union view.
//! When a daemon is killed mid-session, the degraded answer *and* the
//! [`DegradationReport`] must be byte-identical to an all-in-process run
//! whose failing member is scripted to fail the same way. This works
//! because every transport-derived [`SourceError`] message is
//! deterministic (`"{addr}: connection refused"`, never OS error text)
//! and the resilience layer's retry/backoff accounting is virtual.
//!
//! The property test at the bottom drives a RemoteWrapper through a
//! byte-budgeted chaos proxy: whatever prefix of the session survives,
//! the wrapper either agrees with the in-process wrapper byte for byte
//! or fails with a transport-classified source fault — never a query
//! rejection, never silently wrong data.

use mix::prelude::*;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

const SITE_DTD: &str = "{<site : entry*> <entry : PCDATA>}";

fn site_doc(tag: &str, entries: usize) -> Document {
    let body: String = (0..entries)
        .map(|i| format!("<entry>{tag}{i}</entry>"))
        .collect();
    parse_document(&format!("<site>{body}</site>")).unwrap()
}

fn site_source(tag: &str, entries: usize) -> XmlSource {
    XmlSource::new(parse_compact(SITE_DTD).unwrap(), site_doc(tag, entries)).unwrap()
}

fn spawn_daemon(tag: &str, entries: usize) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        Arc::new(WrapperService::new(site_source(tag, entries))),
        ServerConfig::default(),
    )
    .expect("bind loopback")
    .spawn()
    .expect("spawn daemon")
}

fn part_query() -> Query {
    parse_query("all = SELECT X WHERE <site> X:<entry/> </site>").unwrap()
}

/// A mediator federating `alpha`/`beta`/`gamma` under the union view
/// `all` — the same shape whether the wrappers are remote or local.
fn federation(
    alpha: Arc<dyn Wrapper>,
    beta: Arc<dyn Wrapper>,
    gamma: Arc<dyn Wrapper>,
) -> Mediator {
    let mut m = Mediator::new();
    m.add_source("alpha", alpha);
    m.add_source("beta", beta);
    m.add_source("gamma", gamma);
    m.register_union_view(
        "all",
        &[
            ("alpha", part_query()),
            ("beta", part_query()),
            ("gamma", part_query()),
        ],
    )
    .expect("union view registers");
    m
}

fn render(doc: &Document) -> String {
    write_document(doc, WriteConfig::default())
}

/// An in-process wrapper whose fetches follow an explicit error script —
/// the twin of a remote source dying in a known way. Entries are consumed
/// per call (`None` = pass through); past the end every call succeeds.
struct ScriptedSource {
    inner: XmlSource,
    script: Mutex<VecDeque<Option<SourceError>>>,
}

impl ScriptedSource {
    fn new(inner: XmlSource, script: Vec<Option<SourceError>>) -> ScriptedSource {
        ScriptedSource {
            inner,
            script: Mutex::new(script.into()),
        }
    }
}

impl Wrapper for ScriptedSource {
    fn dtd(&self) -> &Dtd {
        self.inner.dtd()
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        match self.script.lock().unwrap().pop_front() {
            Some(Some(e)) => Err(e),
            _ => self.inner.fetch(),
        }
    }
}

/// The error sequence a RemoteWrapper observes after its daemon is
/// killed: the pooled connection dies mid-exchange (a transport fault,
/// transient), then every redial is refused (unavailable). Only the
/// *final* error lands in the report, so the transient message is not
/// part of the byte-identical contract — the refusal message is.
fn killed_daemon_script(addr: &str) -> Vec<Option<SourceError>> {
    vec![
        Some(SourceError::Transient(format!(
            "{addr}: transport fault (connection reset)"
        ))),
        Some(SourceError::Unavailable(format!(
            "{addr}: connection refused"
        ))),
    ]
}

/// The ISSUE acceptance scenario: two serve-source daemons plus one
/// local source federated; one daemon killed before the union view
/// materializes; answer and DegradationReport byte-identical to the
/// all-in-process twin.
#[test]
fn killed_daemon_degrades_byte_identically_to_an_in_process_twin() {
    // serve_stale off so the kill is visible in the answer itself
    let policy = ResiliencePolicy {
        serve_stale: false,
        ..ResiliencePolicy::default()
    };

    let daemon_a = spawn_daemon("a", 2);
    let daemon_b = spawn_daemon("b", 3);
    let beta_addr = daemon_b.addr().to_string();
    let alpha = RemoteWrapper::connect(&daemon_a.addr().to_string()).expect("alpha reachable");
    let beta = RemoteWrapper::connect(&beta_addr).expect("beta reachable");
    let mut distributed = federation(
        Arc::new(alpha),
        Arc::new(beta),
        Arc::new(site_source("c", 2)),
    );
    distributed.set_resilience_policy(policy);

    // the injected daemon kill: beta's listener closes and its live
    // connections (including the one pooled in the RemoteWrapper) drop
    daemon_b.shutdown();

    let (doc, report) = distributed
        .materialize_with_report(name("all"))
        .expect("union survives a dead member");

    // the all-in-process twin: same members, beta scripted to fail the
    // way the dead daemon does
    let mut twin = federation(
        Arc::new(site_source("a", 2)),
        Arc::new(ScriptedSource::new(
            site_source("b", 3),
            killed_daemon_script(&beta_addr),
        )),
        Arc::new(site_source("c", 2)),
    );
    twin.set_resilience_policy(policy);
    let (twin_doc, twin_report) = twin
        .materialize_with_report(name("all"))
        .expect("twin union survives");

    assert_eq!(
        render(&doc),
        render(&twin_doc),
        "degraded distributed answer diverged from the in-process twin"
    );
    assert_eq!(
        report.to_string(),
        twin_report.to_string(),
        "degradation report diverged from the in-process twin"
    );
    assert_eq!(report.failed_sources(), vec!["beta"]);
    assert!(
        !render(&doc).contains("b0"),
        "the dead member must not contribute entries"
    );

    daemon_a.shutdown();
}

/// With the default policy a healthy materialization captures snapshots,
/// so the same kill degrades to *stale* service: the degraded answer is
/// byte-identical to the healthy one, and the report still matches the
/// scripted twin.
#[test]
fn killed_daemon_serves_stale_snapshots_byte_identically() {
    let daemon_a = spawn_daemon("a", 2);
    let daemon_b = spawn_daemon("b", 3);
    let beta_addr = daemon_b.addr().to_string();
    let distributed = federation(
        Arc::new(RemoteWrapper::connect(&daemon_a.addr().to_string()).expect("alpha reachable")),
        Arc::new(RemoteWrapper::connect(&beta_addr).expect("beta reachable")),
        Arc::new(site_source("c", 2)),
    );
    let mut twin_script = killed_daemon_script(&beta_addr);
    twin_script.insert(0, None); // the healthy run's fetch passes through
    let twin = federation(
        Arc::new(site_source("a", 2)),
        Arc::new(ScriptedSource::new(site_source("b", 3), twin_script)),
        Arc::new(site_source("c", 2)),
    );

    let (healthy, healthy_report) = distributed
        .materialize_with_report(name("all"))
        .expect("healthy run");
    assert!(healthy_report.is_clean());
    let (twin_healthy, twin_healthy_report) = twin
        .materialize_with_report(name("all"))
        .expect("twin healthy");
    assert_eq!(render(&healthy), render(&twin_healthy));
    assert_eq!(healthy_report.to_string(), twin_healthy_report.to_string());

    daemon_b.shutdown();

    let (degraded, report) = distributed
        .materialize_with_report(name("all"))
        .expect("stale run");
    let (twin_degraded, twin_report) = twin
        .materialize_with_report(name("all"))
        .expect("twin stale run");

    assert_eq!(report.outcomes[1].status, FetchStatus::Stale);
    assert_eq!(
        render(&degraded),
        render(&healthy),
        "stale service must reproduce the last good answer"
    );
    assert_eq!(render(&degraded), render(&twin_degraded));
    assert_eq!(report.to_string(), twin_report.to_string());

    daemon_a.shutdown();
}

// ---------------------------------------------------------------------------
// Retryable vs. fatal transport faults: a peer speaking the wrong
// protocol version is a deployment problem, not source sickness.
// ---------------------------------------------------------------------------

/// A fake daemon that accepts one connection, swallows the client's
/// `Hello`, and answers with a frame stamped protocol version 9.
fn version9_daemon() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake daemon");
    let addr = listener.local_addr().expect("fake daemon addr");
    std::thread::spawn(move || {
        if let Ok((mut client, _)) = listener.accept() {
            let mut hello = [0u8; 6];
            let _ = client.read_exact(&mut hello);
            // header: version, type (Hello), 4-byte big-endian length
            let _ = client.write_all(&[9, 0, 0, 0, 0, 0]);
            let _ = client.flush();
            let _ = client.shutdown(Shutdown::Both);
        }
    });
    addr
}

/// The satellite-2 pin: a protocol version mismatch maps to
/// [`SourceError::Incompatible`] — fatal, deterministic message — and is
/// *not* a source fault, unlike a refused connection (retryable,
/// breaker-counted).
#[test]
fn version_mismatch_is_fatal_and_never_counts_against_the_breaker() {
    let addr = version9_daemon().to_string();
    let err = match RemoteWrapper::connect(&addr) {
        Ok(_) => panic!("a version-9 peer must not handshake"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), "incompatible");
    assert!(
        !err.is_source_fault(),
        "a deployment mismatch must not look like source sickness"
    );
    assert_eq!(
        err.to_string(),
        format!("incompatible peer: {addr}: peer speaks protocol version 9, this build speaks 1")
    );

    // the breaker contrast, through the resilience layer itself: a source
    // erroring Incompatible never opens the breaker, one erroring
    // Unavailable opens it at the threshold
    use mix::mediator::{resilient_answer, Health, SourceInstruments};
    let policy = ResiliencePolicy {
        max_retries: 0,
        failure_threshold: 2,
        serve_stale: false,
        ..ResiliencePolicy::default()
    };
    let query = part_query();

    let incompatible = ScriptedSource::new(
        site_source("i", 1),
        vec![Some(SourceError::Incompatible("version skew".into())); 4],
    );
    let health = Mutex::new(Health::new());
    for _ in 0..4 {
        let (doc, outcome) = resilient_answer(
            "inc",
            &incompatible,
            &query,
            &policy,
            &health,
            &SourceInstruments::noop("inc"),
        );
        assert!(doc.is_none());
        assert_eq!(outcome.status, FetchStatus::Failed);
        assert_eq!(
            health.lock().unwrap().state(),
            BreakerState::Closed,
            "Incompatible must never trip the breaker"
        );
    }

    let refused = ScriptedSource::new(
        site_source("u", 1),
        vec![Some(SourceError::Unavailable("h:1: connection refused".into())); 2],
    );
    let health = Mutex::new(Health::new());
    for _ in 0..2 {
        resilient_answer(
            "ref",
            &refused,
            &query,
            &policy,
            &health,
            &SourceInstruments::noop("ref"),
        );
    }
    assert_eq!(
        health.lock().unwrap().state(),
        BreakerState::Open,
        "refused connections are retryable source faults and must count"
    );
}

// ---------------------------------------------------------------------------
// Property: RemoteWrapper through a lossy transport agrees with the
// in-process wrapper or fails with a transport-classified fault.
// ---------------------------------------------------------------------------

/// The shared upstream daemon the chaos proxies front. One per process:
/// the property only needs its address, and its state is immutable.
fn upstream() -> SocketAddr {
    static DAEMON: OnceLock<ServerHandle> = OnceLock::new();
    DAEMON.get_or_init(|| spawn_daemon("p", 4)).addr()
}

/// Relay one direction until the shared byte budget runs out, then cut
/// *both* sockets — a mid-frame disconnect whenever the budget lands
/// inside a frame.
fn relay(mut from: TcpStream, mut to: TcpStream, remaining: Arc<AtomicI64>) {
    let mut buf = [0u8; 64];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let before = remaining.fetch_sub(n as i64, Ordering::SeqCst);
        if before < n as i64 {
            // budget exhausted inside this read: deliver the surviving
            // prefix, then drop the session
            let _ = to.write_all(&buf[..before.max(0) as usize]);
            break;
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// A single-session proxy that forwards at most `budget` bytes (both
/// directions combined) between one client and `upstream`, then
/// disconnects both sides.
fn chaos_proxy(upstream: SocketAddr, budget: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        let client = match listener.accept() {
            Ok((c, _)) => c,
            Err(_) => return,
        };
        let server = match TcpStream::connect(upstream) {
            Ok(s) => s,
            Err(_) => return,
        };
        let remaining = Arc::new(AtomicI64::new(budget as i64));
        let up = std::thread::spawn({
            let (from, to, r) = (
                client.try_clone().expect("clone"),
                server.try_clone().expect("clone"),
                Arc::clone(&remaining),
            );
            move || relay(from, to, r)
        });
        relay(server, client, remaining);
        let _ = up.join();
    });
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever prefix of the wire session a disconnect leaves standing,
    /// the RemoteWrapper either produces the in-process wrapper's exact
    /// answer bytes or a fault the resilience layer classifies as
    /// transport trouble ("transient"/"unavailable"/"timeout") — never a
    /// query rejection, never corrupted data passed off as an answer.
    #[test]
    fn remote_wrapper_agrees_with_in_process_under_mid_frame_disconnects(
        budget in 0usize..4096,
    ) {
        let reference = site_source("p", 4);
        let query = part_query();
        let expected = render(&reference.answer(&query).unwrap());

        let proxy = chaos_proxy(upstream(), budget);
        let config = ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            pool_size: 2,
            ..ClientConfig::default()
        };
        let transport_fault = |e: &SourceError| {
            matches!(e.kind(), "transient" | "unavailable" | "timeout")
        };
        match RemoteWrapper::connect_with(&proxy.to_string(), config) {
            Err(e) => prop_assert!(
                transport_fault(&e),
                "handshake failure misclassified as {}: {e}",
                e.kind()
            ),
            Ok(remote) => match remote.answer(&query) {
                Ok(doc) => prop_assert_eq!(
                    render(&doc),
                    expected.clone(),
                    "surviving session must agree byte for byte"
                ),
                Err(e) => prop_assert!(
                    transport_fault(&e),
                    "answer failure misclassified as {}: {e}",
                    e.kind()
                ),
            },
        }
    }
}
