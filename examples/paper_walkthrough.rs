//! Re-derives every worked example of the paper mechanically, printing
//! paper artefact vs. computed result — the executable companion to
//! `EXPERIMENTS.md` (experiments E1–E11).
//!
//! ```sh
//! cargo run --example paper_walkthrough
//! ```

use mix::dtd::paper::{d11_department, d1_department, d9_professor, section_recursive};
use mix::infer::metrics::non_tight_witnesses;
use mix::infer::refine::refine1;
use mix::prelude::*;

fn heading(id: &str, title: &str) {
    println!("\n━━━ {id} — {title} ━━━");
}

fn main() {
    let d1 = d1_department();

    heading("E1", "queries Q1/Q2 parse and evaluate (Section 2.1)");
    let q2 = parse_query(
        "withJournals = SELECT P WHERE <department> <name>CS</name> \
           P:<professor | gradStudent> \
             <publication id=Pub1><journal/></publication> \
             <publication id=Pub2><journal/></publication> \
           </> </> AND Pub1 != Pub2",
    )
    .unwrap();
    let doc = parse_document(
        "<department><name>CS</name>\
           <professor><firstName>Yannis</firstName><lastName>P</lastName>\
             <publication><title>a</title><author>x</author><journal/></publication>\
             <publication><title>b</title><author>x</author><journal/></publication>\
             <teaches/></professor>\
           <gradStudent><firstName>Pavel</firstName><lastName>V</lastName>\
             <publication><title>c</title><author>x</author><journal/></publication>\
           </gradStudent></department>",
    )
    .unwrap();
    let nq = normalize(&q2, &d1).unwrap();
    let out = evaluate(&nq, &doc);
    println!(
        "Q2 over a sample department: {} member(s) — only the two-journal professor",
        out.root.children().len()
    );
    assert_eq!(out.root.children().len(), 1);

    heading("E2", "Example 3.1 — naive vs tightest view DTD (D2)");
    let iv = infer_view_dtd(&q2, &d1).unwrap();
    let naive = naive_view_dtd(&iv.query, &d1, NaiveMode::Sound);
    println!("naive view DTD:\n{naive}");
    println!("tightest merged view DTD (reconstructed D2):\n{}", iv.dtd);
    assert!(mix::dtd::strictly_tighter(&iv.dtd, &naive));
    println!("tight ⊊ naive confirmed by automata inclusion ✓");

    heading("E3", "Example 3.2 — disjunction removal (Q3 → D3)");
    let q3 = parse_query(
        "publist = SELECT P WHERE <department> <name>CS</name> \
           <professor | gradStudent> P:<publication><journal/></publication> </> </>",
    )
    .unwrap();
    let iv3 = infer_view_dtd(&q3, &d1).unwrap();
    println!("{}", iv3.dtd);
    assert_eq!(
        iv3.dtd.get(name("publication")).unwrap().to_string(),
        "title, author+, journal"
    );

    heading("E4", "Section 3.2 — D2 is not structurally tight");
    let witnesses = non_tight_witnesses(&iv, 14, 40_000);
    println!(
        "structures admitted by D2 but impossible as view content (size ≤ 14): {}",
        witnesses.len()
    );
    if let Some(w) = witnesses.first() {
        println!(
            "smallest witness:\n{}",
            write_document(w, WriteConfig::default())
        );
    }
    assert!(!witnesses.is_empty());

    heading("E5", "Example 3.4 — the tight specialized DTD (D4)");
    println!("{}", iv.sdtd);
    let bad = parse_document(
        "<withJournals><professor><firstName>N</firstName><lastName>N</lastName>\
           <publication><title>a</title><author>x</author><conference/></publication>\
           <publication><title>b</title><author>x</author><conference/></publication>\
           <teaches/></professor></withJournals>",
    )
    .unwrap();
    assert!(validate_document(&iv.dtd, &bad).is_ok());
    assert!(!sdtd_satisfies(&iv.sdtd, &bad));
    println!("conference-only professor: D2 accepts, D4 rejects ✓");

    heading(
        "E6",
        "Example 3.5 — no tightest DTD for the recursive view (T6 ⊋ T7 ⊋ T8)",
    );
    let _sections = section_recursive();
    let t6 = parse_regex("(prolog | conclusion)*").unwrap();
    let t7 = parse_regex("(prolog, (prolog | conclusion)*, conclusion)?").unwrap();
    let t8 = parse_regex("(prolog, (prolog, (prolog | conclusion)*, conclusion)?, conclusion)?")
        .unwrap();
    assert!(is_subset(&t7, &t6) && !is_subset(&t6, &t7));
    assert!(is_subset(&t8, &t7) && !is_subset(&t7, &t8));
    println!("T8 ⊊ T7 ⊊ T6 verified — the chain never reaches a tightest type");

    heading("E7", "Example 4.1 — refine(n,(j|c)*, j)");
    let d9 = d9_professor();
    let prof = d9.get(name("professor")).unwrap().regex().unwrap();
    let refined = refine1(prof, name("journal"), 0);
    println!("refine({prof}, journal) = {}", simplify(&refined));
    assert!(equivalent(
        &refined,
        &parse_regex("name, (journal | conference)*, journal, (journal | conference)*").unwrap()
    ));

    heading(
        "E8",
        "Example 4.2 — tagged refinement for two distinct journals",
    );
    let step1 = refine1(prof, name("journal"), 1);
    let step2 = refine1(&step1, name("journal"), 2);
    println!("after j^1, j^2: {}", simplify(&step2));
    let j1 = name("journal").tagged(1);
    let j2 = name("journal").tagged(2);
    let n = name("name").untagged();
    assert!(mix::relang::matches(&step2, &[n, j1, j2]));
    assert!(mix::relang::matches(&step2, &[n, j2, j1]));
    assert!(!mix::relang::matches(&step2, &[n, j1]));
    println!("both witness orders accepted, single journal rejected ✓");

    heading("E9", "Example 4.3 — Merge (D4 → D10 → simplified D2)");
    let merged = merge(&iv.sdtd);
    println!(
        "merge signalled on: {:?}",
        merged
            .merged_names
            .iter()
            .map(|x| x.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "professor after merge+simplify: {}",
        merged.dtd.get(name("professor")).unwrap()
    );

    heading("E10", "Example 4.4 — InferList on (D11)/(Q12)");
    let d11 = d11_department();
    let q12 = parse_query(
        "papers = SELECT P WHERE D:<department> G:<gradStudent> \
           X:<publication> P:<title | author/> </> </> </>",
    )
    .unwrap();
    let iv12 = infer_view_dtd(&q12, &d11).unwrap();
    println!("inferred list type: {}", iv12.list_type.image());
    assert!(equivalent(
        &iv12.list_type.image(),
        &parse_regex("(title, author*)*").unwrap()
    ));

    heading("E11", "Figure 2's side effect — query classification");
    for (label, src, expect) in [
        (
            "valid",
            "v = SELECT P WHERE <department> P:<professor><publication/></professor> </>",
            Verdict::Valid,
        ),
        (
            "satisfiable",
            "v = SELECT P WHERE <department> <professor> \
               P:<publication><journal/></publication> </> </>",
            Verdict::Satisfiable,
        ),
        (
            "unsatisfiable",
            "v = SELECT J WHERE <department> J:<journal/> </>",
            Verdict::Unsatisfiable,
        ),
    ] {
        let q = normalize(&parse_query(src).unwrap(), &d1).unwrap();
        let v = classify_query(&q, &d1);
        println!("{label:>14}: {v:?}");
        assert_eq!(v, expect);
    }

    println!("\nAll paper artefacts re-derived successfully.");
}
