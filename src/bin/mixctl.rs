//! `mixctl` — command-line front end for the MIX view-DTD inference
//! library.
//!
//! ```text
//! mixctl infer      --dtd D1.dtd --query Q2.xmas     infer the view DTDs
//! mixctl classify   --dtd D1.dtd --query Q2.xmas     valid/satisfiable/unsat
//! mixctl validate   --dtd D1.dtd --doc dept.xml      validate a document
//! mixctl eval       --dtd D1.dtd --doc dept.xml --query Q2.xmas
//! mixctl structure  --dtd D1.dtd                     query-interface summary
//! mixctl tightness  --dtd D1.dtd --query Q2.xmas --max-size 16
//! mixctl union      --part D1.dtd:Q3.xmas --part D1b.dtd:Q3.xmas
//! mixctl federate   --dtd D1.dtd --query Q3.xmas --doc a.xml --doc b.xml \
//!                   --fail-rate 0.3 --fault-seed 7
//! ```
//!
//! DTD files may use real `<!ELEMENT …>` syntax or the paper's compact
//! `<name : model>` notation (auto-detected).

use mix::infer::metrics::tightness_counts;
use mix::prelude::*;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: mixctl <infer|classify|validate|eval|structure|tightness|union|federate> \
         [--dtd FILE] [--query FILE] [--doc FILE] [--max-size N]\n\
         run `mixctl help` for details"
    );
    std::process::exit(2)
}

struct Args {
    command: String,
    dtd: Option<String>,
    query: Option<String>,
    docs: Vec<String>,
    parts: Vec<(String, String)>,
    name: String,
    max_size: usize,
    fail_rate: f64,
    fault_seed: u64,
    retries: u32,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| usage());
    let mut args = Args {
        command,
        dtd: None,
        query: None,
        docs: Vec::new(),
        parts: Vec::new(),
        name: "view".to_owned(),
        max_size: 16,
        fail_rate: 0.0,
        fault_seed: 0,
        retries: 2,
    };
    while let Some(flag) = argv.next() {
        let mut grab = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--dtd" => args.dtd = Some(grab()),
            "--query" => args.query = Some(grab()),
            "--doc" => args.docs.push(grab()),
            "--max-size" => {
                args.max_size = grab().parse().unwrap_or_else(|_| usage());
            }
            "--fail-rate" => {
                args.fail_rate = grab().parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&args.fail_rate) {
                    eprintln!("mixctl: --fail-rate must be in [0, 1]");
                    std::process::exit(2)
                }
            }
            "--fault-seed" => {
                args.fault_seed = grab().parse().unwrap_or_else(|_| usage());
            }
            "--retries" => {
                args.retries = grab().parse().unwrap_or_else(|_| usage());
            }
            "--name" => args.name = grab(),
            "--part" => {
                let spec = grab();
                match spec.split_once(':') {
                    Some((d, q)) => args.parts.push((d.to_owned(), q.to_owned())),
                    None => usage(),
                }
            }
            _ => usage(),
        }
    }
    args
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("mixctl: cannot read '{path}': {e}");
        std::process::exit(1)
    })
}

fn load_dtd_path(path: &str) -> Dtd {
    let text = read(path);
    let parsed = if text.trim_start().starts_with("<!") {
        parse_xml_dtd(&text)
    } else {
        parse_compact(&text)
    };
    parsed.unwrap_or_else(|e| {
        eprintln!("mixctl: {path}: {e}");
        std::process::exit(1)
    })
}

fn load_dtd(args: &Args) -> Dtd {
    load_dtd_path(args.dtd.as_deref().unwrap_or_else(|| usage()))
}

fn load_query(args: &Args) -> Query {
    let path = args.query.as_deref().unwrap_or_else(|| usage());
    parse_query(&read(path)).unwrap_or_else(|e| {
        eprintln!("mixctl: {path}: {e}");
        std::process::exit(1)
    })
}

fn load_doc_path(path: &str) -> Document {
    parse_document(&read(path)).unwrap_or_else(|e| {
        eprintln!("mixctl: {path}: {e}");
        std::process::exit(1)
    })
}

fn load_doc(args: &Args) -> Document {
    load_doc_path(
        args.docs
            .first()
            .map(String::as_str)
            .unwrap_or_else(|| usage()),
    )
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.command.as_str() {
        "help" | "--help" | "-h" => {
            println!(
                "mixctl — view DTD inference for XML mediators (ICDE 1999)\n\n\
                 commands:\n\
                 \x20 infer      --dtd F --query F   infer the specialized + merged view DTDs\n\
                 \x20 classify   --dtd F --query F   valid | satisfiable | unsatisfiable\n\
                 \x20 validate   --dtd F --doc F     validate a document (exit 1 on failure)\n\
                 \x20 eval       --dtd F --doc F --query F   run the query, print the view\n\
                 \x20 structure  --dtd F             the DTD-based query-interface summary\n\
                 \x20 tightness  --dtd F --query F [--max-size N]   exact tightness counts\n\
                 \x20 union      [--name N] --part DTD:QUERY …      infer a union view DTD\n\
                 \x20 federate   --dtd F --query F --doc F … [--fail-rate R] [--fault-seed S]\n\
                 \x20            [--retries N]    union the docs as N sources under injected\n\
                 \x20            faults; print the (partial) answer + degradation report"
            );
            ExitCode::SUCCESS
        }
        "infer" => {
            let dtd = load_dtd(&args);
            let q = load_query(&args);
            match infer_view_dtd(&q, &dtd) {
                Ok(iv) => {
                    println!("verdict: {:?}\n", iv.verdict);
                    println!("specialized view DTD:\n{}\n", iv.sdtd);
                    println!("merged view DTD:\n{}", iv.dtd);
                    if !iv.merged_names.is_empty() {
                        println!(
                            "\nnon-tightness introduced by merging on: {}",
                            iv.merged_names
                                .iter()
                                .map(|n| n.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    let nondet = mix::dtd::nondeterministic_names(&iv.dtd);
                    if !nondet.is_empty() {
                        println!(
                            "note: content models of {} are not 1-unambiguous \
                             (XML 1.0 determinism rule)",
                            nondet
                                .iter()
                                .map(|n| n.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "classify" => {
            let dtd = load_dtd(&args);
            let q = load_query(&args);
            match normalize(&q, &dtd) {
                Ok(nq) => {
                    println!("{:?}", classify_query(&nq, &dtd));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "validate" => {
            let dtd = load_dtd(&args);
            let doc = load_doc(&args);
            match validate_document(&dtd, &doc) {
                Ok(()) => {
                    println!("valid");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    println!("invalid: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "eval" => {
            let dtd = load_dtd(&args);
            let doc = load_doc(&args);
            let q = load_query(&args);
            match normalize(&q, &dtd) {
                Ok(nq) => {
                    let out = evaluate(&nq, &doc);
                    println!("{}", write_document(&out, WriteConfig::default()));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "structure" => {
            let dtd = load_dtd(&args);
            print!("{}", render_structure(&dtd));
            ExitCode::SUCCESS
        }
        "union" => {
            if args.parts.is_empty() {
                usage();
            }
            let mut loaded = Vec::new();
            for (dtd_path, query_path) in &args.parts {
                let dtd = load_dtd_path(dtd_path);
                let q = parse_query(&read(query_path)).unwrap_or_else(|e| {
                    eprintln!("mixctl: {query_path}: {e}");
                    std::process::exit(1)
                });
                loaded.push((q, dtd));
            }
            let refs: Vec<(&Query, &Dtd)> = loaded.iter().map(|(q, d)| (q, d)).collect();
            match mix::infer::infer_union_view_dtd(name(&args.name), &refs) {
                Ok(u) => {
                    println!("verdict: {:?}\n", u.verdict);
                    println!("specialized union view DTD:\n{}\n", u.sdtd);
                    println!("merged union view DTD:\n{}", u.dtd);
                    if !u.kind_conflicts.is_empty() {
                        println!(
                            "\nWARNING: {} mix PCDATA and element content across sites; \
                             the merged plain DTD is not sound for them (use the s-DTD)",
                            u.kind_conflicts
                                .iter()
                                .map(|n| n.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "federate" => {
            let dtd = load_dtd(&args);
            let q = load_query(&args);
            if args.docs.is_empty() {
                usage();
            }
            let mut m = Mediator::new();
            m.set_resilience_policy(ResiliencePolicy {
                max_retries: args.retries,
                ..ResiliencePolicy::default()
            });
            let mut parts = Vec::new();
            let names: Vec<String> = (0..args.docs.len()).map(|i| format!("site{i}")).collect();
            for (i, path) in args.docs.iter().enumerate() {
                let doc = load_doc_path(path);
                let source = XmlSource::new(dtd.clone(), doc).unwrap_or_else(|e| {
                    eprintln!("mixctl: {path}: {e}");
                    std::process::exit(1)
                });
                // one independent, seeded schedule per site
                let injector = FaultInjector::seeded(
                    std::sync::Arc::new(source),
                    args.fault_seed.wrapping_add(i as u64),
                    args.fail_rate,
                );
                m.add_source(&names[i], std::sync::Arc::new(injector));
                parts.push((names[i].as_str(), q.clone()));
            }
            if let Err(e) = m.register_union_view(&args.name, &parts) {
                eprintln!("mixctl: {e}");
                return ExitCode::FAILURE;
            }
            match m.materialize_with_report(name(&args.name)) {
                Ok((doc, report)) => {
                    println!("{}", write_document(&doc, WriteConfig::default()));
                    print!("{report}");
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        // degraded but served: distinguishable from both
                        // success and hard failure
                        ExitCode::from(3)
                    }
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "tightness" => {
            let dtd = load_dtd(&args);
            let q = load_query(&args);
            let rows = tightness_counts(&q, &dtd, args.max_size);
            println!(
                "{:>5} {:>16} {:>16} {:>16}",
                "size", "naive", "tight", "s-DTD"
            );
            for r in rows {
                if r.naive + r.merged + r.specialized > 0 {
                    println!(
                        "{:>5} {:>16} {:>16} {:>16}",
                        r.size, r.naive, r.merged, r.specialized
                    );
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
