//! The pick-element fragment of XMAS (Section 2.1).
//!
//! A query names a view, SELECTs a single *pick variable*, and constrains
//! it with one tree condition over one source, plus id-inequalities
//! (`Pub1 != Pub2`). Element-name positions hold a constant, a disjunction
//! of constants, or a wildcard (an element-name variable that occurs
//! nowhere else — the paper's preprocessing replaces it with the
//! disjunction of all source-DTD names, see [`crate::normalize::normalize`]).

use mix_relang::symbol::{Name, Tag};
use std::fmt;

/// A query variable (`P`, `Pub1`, …), interned.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Name);

impl Var {
    /// Interns a variable by name.
    pub fn new(s: &str) -> Var {
        Var(Name::intern(s))
    }

    /// The variable's name.
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// What an element-name position matches.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NameTest {
    /// A disjunction of constant names (`professor | gradStudent`); a
    /// single constant is the common case.
    Names(Vec<Name>),
    /// The wildcard `*`: an element-name variable that appears nowhere
    /// else. Normalization expands it to `Names(all source names)`.
    Wildcard,
}

impl NameTest {
    /// A single-constant test.
    pub fn name(n: Name) -> NameTest {
        NameTest::Names(vec![n])
    }

    /// Does the test match `n`? (Wildcard matches everything.)
    pub fn matches(&self, n: Name) -> bool {
        match self {
            NameTest::Names(v) => v.contains(&n),
            NameTest::Wildcard => true,
        }
    }

    /// The constant names, if already expanded.
    pub fn names(&self) -> &[Name] {
        match self {
            NameTest::Names(v) => v,
            NameTest::Wildcard => &[],
        }
    }
}

/// What a condition requires of the matched element's content.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Body {
    /// Each child condition must be satisfied by a *distinct* child
    /// element (containment semantics; an empty list constrains nothing).
    Children(Vec<Condition>),
    /// The element's content must be exactly this string
    /// (`<name>CS</name>`).
    Text(String),
}

/// One node of a tree condition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Condition {
    /// The element-name test.
    pub test: NameTest,
    /// Element variable bound to the matched element (`P:<…>`).
    pub var: Option<Var>,
    /// ID variable (`id=Pub1`), used by `!=` constraints.
    pub id_var: Option<Var>,
    /// Specialization tag assigned by normalization (0 = not yet assigned).
    /// Tags are unique per name across the query; the tightening algorithm
    /// stores this condition's refined type under `name^tag`.
    pub tag: Tag,
    /// The content requirement.
    pub body: Body,
}

impl Condition {
    /// A condition matching elements named `n` with the given children.
    pub fn elem(n: Name, children: Vec<Condition>) -> Condition {
        Condition {
            test: NameTest::name(n),
            var: None,
            id_var: None,
            tag: 0,
            body: Body::Children(children),
        }
    }

    /// A condition requiring string content.
    pub fn text(n: Name, value: &str) -> Condition {
        Condition {
            test: NameTest::name(n),
            var: None,
            id_var: None,
            tag: 0,
            body: Body::Text(value.to_owned()),
        }
    }

    /// Attaches an element variable (builder style).
    pub fn bind(mut self, v: Var) -> Condition {
        self.var = Some(v);
        self
    }

    /// Attaches an ID variable (builder style).
    pub fn with_id_var(mut self, v: Var) -> Condition {
        self.id_var = Some(v);
        self
    }

    /// Child conditions (empty for text bodies).
    pub fn children(&self) -> &[Condition] {
        match &self.body {
            Body::Children(v) => v,
            Body::Text(_) => &[],
        }
    }

    /// Depth-first traversal of the condition tree (self first).
    pub fn walk(&self) -> Vec<&Condition> {
        let mut out = vec![self];
        let mut i = 0;
        while i < out.len() {
            let c = out[i];
            out.extend(c.children());
            i += 1;
        }
        out
    }

    /// Finds the node binding `v`, with the path of nodes from `self`
    /// (inclusive) down to it.
    pub fn path_to_var(&self, v: Var) -> Option<Vec<&Condition>> {
        if self.var == Some(v) {
            return Some(vec![self]);
        }
        for c in self.children() {
            if let Some(mut p) = c.path_to_var(v) {
                let mut full = vec![self];
                full.append(&mut p);
                return Some(full);
            }
        }
        None
    }
}

/// A pick-element XMAS query (also a view definition — a view is a query
/// with a name it is published under).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// The view/result document name (`withJournals = SELECT …`).
    pub view_name: Name,
    /// The pick variable of the SELECT clause.
    pub pick: Var,
    /// The single tree condition of the WHERE clause.
    pub root: Condition,
    /// Id-inequality constraints (`Pub1 != Pub2`).
    pub diseqs: Vec<(Var, Var)>,
}

impl Query {
    /// All variables declared in the condition tree (element + id vars).
    pub fn declared_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for c in self.root.walk() {
            if let Some(v) = c.var {
                out.push(v);
            }
            if let Some(v) = c.id_var {
                out.push(v);
            }
        }
        out
    }

    /// The path of condition nodes from the root to the pick node, or
    /// `None` if the pick variable is not bound in the tree.
    pub fn pick_path(&self) -> Option<Vec<&Condition>> {
        self.root.path_to_var(self.pick)
    }

    /// The condition node binding the pick variable.
    pub fn pick_node(&self) -> Option<&Condition> {
        self.pick_path().map(|p| *p.last().expect("path nonempty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_relang::symbol::name;

    fn sample() -> Query {
        // publist = SELECT P WHERE <department> <gradStudent> P:<publication/> </> </>
        let p = Var::new("P");
        Query {
            view_name: name("publist"),
            pick: p,
            root: Condition::elem(
                name("department"),
                vec![Condition::elem(
                    name("gradStudent"),
                    vec![Condition::elem(name("publication"), vec![]).bind(p)],
                )],
            ),
            diseqs: vec![],
        }
    }

    #[test]
    fn path_to_pick() {
        let q = sample();
        let path = q.pick_path().unwrap();
        let names: Vec<&str> = path.iter().map(|c| c.test.names()[0].as_str()).collect();
        assert_eq!(names, ["department", "gradStudent", "publication"]);
        assert_eq!(q.pick_node().unwrap().var, Some(q.pick));
    }

    #[test]
    fn walk_order() {
        let q = sample();
        let all = q.root.walk();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn missing_pick() {
        let mut q = sample();
        q.pick = Var::new("Q");
        assert!(q.pick_path().is_none());
    }

    #[test]
    fn nametest_matching() {
        let t = NameTest::Names(vec![name("a"), name("b")]);
        assert!(t.matches(name("a")));
        assert!(!t.matches(name("c")));
        assert!(NameTest::Wildcard.matches(name("zzz")));
    }

    #[test]
    fn declared_vars_include_id_vars() {
        let mut q = sample();
        if let Body::Children(children) = &mut q.root.body {
            if let Body::Children(gchildren) = &mut children[0].body {
                gchildren[0].id_var = Some(Var::new("Pub1"));
            }
        }
        let vars = q.declared_vars();
        assert!(vars.contains(&Var::new("P")));
        assert!(vars.contains(&Var::new("Pub1")));
    }
}
