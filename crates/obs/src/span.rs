//! The span ring: fixed-capacity, lock-free request tracing.
//!
//! A span is `(trace, stage, start_ns, dur_ns)` — one timed step of one
//! request. Writers claim a slot with a single `fetch_add` on the ring
//! head and publish through a per-slot sequence word (seqlock
//! discipline): the slot's `seq` goes *odd* before the fields are
//! written and *even* (with the claim ticket encoded) after, so readers
//! that observe a changing or odd `seq` discard the slot instead of
//! reporting a torn record. No locks, no `unsafe`; a write racing a full
//! ring wrap-around can in principle blend two records, which the
//! double-read check almost always catches — and spans are diagnostics,
//! not accounting, so the residual race is accepted (DESIGN.md §10).
//!
//! Stage names are interned to small ids behind an `RwLock` taken only
//! on the *first* use of a name; per-source stages like `fetch/site0`
//! make the ring localize a slow site without labels on the hot path.
//!
//! The *current trace id* is a thread-local. [`crate::Registry::begin_trace`]
//! allocates a fresh id and installs it for the current scope;
//! [`set_current_trace`] lets scoped worker threads join their parent's
//! trace explicitly (a thread-local does not cross `std::thread::scope`).

use crate::snapshot::SpanSnapshot;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::RwLock;

/// Slots in the ring; the newest spans win once it wraps.
pub const SPAN_RING_CAPACITY: usize = 1024;

struct Slot {
    /// 0 = never written; odd = write in progress; `2·ticket + 2` = stable.
    seq: AtomicU64,
    trace: AtomicU64,
    stage: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct StageTable {
    names: Vec<String>,
    ids: HashMap<String, u64>,
}

pub(crate) struct SpanRing {
    slots: Vec<Slot>,
    /// Total spans ever recorded; `head % capacity` is the next slot.
    head: AtomicU64,
    stages: RwLock<StageTable>,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize) -> SpanRing {
        SpanRing {
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            stages: RwLock::new(StageTable::default()),
        }
    }

    /// Interns `name`, returning its stable small id.
    pub(crate) fn intern(&self, name: &str) -> u64 {
        if let Some(&id) = self.stages.read().unwrap().ids.get(name) {
            return id;
        }
        let mut table = self.stages.write().unwrap();
        if let Some(&id) = table.ids.get(name) {
            return id;
        }
        let id = table.names.len() as u64;
        table.names.push(name.to_string());
        table.ids.insert(name.to_string(), id);
        id
    }

    pub(crate) fn record(&self, trace: u64, stage: u64, start_ns: u64, dur_ns: u64) {
        let ticket = self.head.fetch_add(1, SeqCst);
        let slot = &self.slots[(ticket as usize) % self.slots.len()];
        slot.seq.store(2 * ticket + 1, SeqCst);
        slot.trace.store(trace, SeqCst);
        slot.stage.store(stage, SeqCst);
        slot.start_ns.store(start_ns, SeqCst);
        slot.dur_ns.store(dur_ns, SeqCst);
        slot.seq.store(2 * ticket + 2, SeqCst);
    }

    /// Total spans ever recorded (including ones the ring has dropped).
    pub(crate) fn total(&self) -> u64 {
        self.head.load(SeqCst)
    }

    /// Stable spans currently in the ring, ordered by start time.
    pub(crate) fn snapshot(&self) -> Vec<SpanSnapshot> {
        let stages = self.stages.read().unwrap();
        let mut out = Vec::new();
        for slot in &self.slots {
            let before = slot.seq.load(SeqCst);
            if before == 0 || before % 2 == 1 {
                continue; // never written, or mid-write
            }
            let span = SpanSnapshot {
                trace: slot.trace.load(SeqCst),
                stage: String::new(),
                start_ns: slot.start_ns.load(SeqCst),
                dur_ns: slot.dur_ns.load(SeqCst),
            };
            let stage_id = slot.stage.load(SeqCst);
            if slot.seq.load(SeqCst) != before {
                continue; // torn: a writer intervened
            }
            out.push(SpanSnapshot {
                stage: stages
                    .names
                    .get(stage_id as usize)
                    .cloned()
                    .unwrap_or_default(),
                ..span
            });
        }
        out.sort_by(|a, b| {
            (a.start_ns, a.trace, &a.stage, a.dur_ns)
                .cmp(&(b.start_ns, b.trace, &b.stage, b.dur_ns))
        });
        out
    }
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The trace id spans on this thread attach to (0 = untraced).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// Installs `trace` as this thread's current trace id until the returned
/// guard drops (the previous id is then restored). Use inside scoped
/// worker threads to join the spawning request's trace.
pub fn set_current_trace(trace: u64) -> TraceScope {
    TraceScope {
        prev: CURRENT_TRACE.with(|c| c.replace(trace)),
    }
}

/// Guard restoring the previously-current trace id on drop.
#[must_use = "the trace id reverts when this guard drops"]
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_spans_once_full() {
        let ring = SpanRing::new(4);
        let stage = ring.intern("s");
        for i in 0..10u64 {
            ring.record(1, stage, i, 1);
        }
        let spans = ring.snapshot();
        assert_eq!(ring.total(), 10);
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().map(|s| s.start_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn interning_is_stable_and_shared() {
        let ring = SpanRing::new(4);
        let a = ring.intern("fetch/site0");
        let b = ring.intern("fetch/site1");
        assert_ne!(a, b);
        assert_eq!(ring.intern("fetch/site0"), a);
        ring.record(7, b, 5, 2);
        let spans = ring.snapshot();
        assert_eq!(spans[0].stage, "fetch/site1");
        assert_eq!(spans[0].trace, 7);
    }

    #[test]
    fn trace_scope_nests_and_restores() {
        assert_eq!(current_trace(), 0);
        let outer = set_current_trace(3);
        assert_eq!(current_trace(), 3);
        {
            let _inner = set_current_trace(9);
            assert_eq!(current_trace(), 9);
        }
        assert_eq!(current_trace(), 3);
        drop(outer);
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_stage_ids() {
        // Capacity exceeds the total writes, so no two writers ever share
        // a slot; the seqlock must then make every snapshot consistent.
        let ring = SpanRing::new(4096);
        let stages: Vec<u64> = (0..4).map(|i| ring.intern(&format!("s{i}"))).collect();
        std::thread::scope(|scope| {
            for (t, &stage) in stages.iter().enumerate() {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        ring.record(t as u64, stage, i, t as u64);
                    }
                });
            }
            for _ in 0..100 {
                for s in ring.snapshot() {
                    // every stable record is internally consistent
                    assert_eq!(s.stage, format!("s{}", s.trace), "torn span: {s:?}");
                    assert_eq!(s.dur_ns, s.trace);
                }
            }
        });
        assert_eq!(ring.total(), 2000);
    }
}
