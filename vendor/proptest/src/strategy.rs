//! Strategies: deterministic value generators, plus the combinators the
//! workspace's suites use.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::sync::Arc;

/// The generator driving every strategy. Seeded from the test name so a
/// failing case reproduces on every run without a persistence file.
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// A uniform index in `range`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.is_empty() {
            return range.start;
        }
        self.0.gen_range(range)
    }

    /// A uniform `u64` below `bound`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0..bound.max(1))
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// smaller structure and returns the strategy for the larger one;
    /// recursion bottoms out at `self` after `depth` levels. The
    /// `_desired_size`/`_expected_branch_size` knobs of upstream proptest
    /// are accepted but unused (depth alone bounds our generation).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let recurse = Arc::new(recurse);
        Recursive {
            base: self.boxed(),
            levels: depth,
            recurse: Arc::new(move |inner: BoxedStrategy<Self::Value>| recurse(inner).boxed()),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    levels: u32,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

struct RecursiveAt<T> {
    base: BoxedStrategy<T>,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    level: u32,
}

impl<T: 'static> Strategy for RecursiveAt<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        if self.level == 0 {
            return self.base.generate(rng);
        }
        let smaller = RecursiveAt {
            base: self.base.clone(),
            recurse: Arc::clone(&self.recurse),
            level: self.level - 1,
        }
        .boxed();
        (self.recurse)(smaller).generate(rng)
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // vary the depth per case so small and large structures both appear
        let level = rng.usize_in(0..(self.levels as usize + 1)) as u32;
        RecursiveAt {
            base: self.base.clone(),
            recurse: Arc::clone(&self.recurse),
            level,
        }
        .generate(rng)
    }
}

/// The result of `prop::sample::select`.
#[derive(Clone)]
pub struct Select<T: Clone> {
    pub(crate) options: Vec<T>,
}

/// The result of `prop::collection::vec`.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

/// The result of [`prop_oneof!`]: a weighted choice among strategies.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds a choice over weighted, boxed arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum::<u32>();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.u64_below(u64::from(self.total)) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.u64_below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (self.end() - self.start()) as u64 + 1;
                self.start() + rng.u64_below(span) as $t
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        (i64::from(self.start) + rng.u64_below(span) as i64) as i32
    }
}

/// Pattern-string strategies: `"\\PC{lo,hi}"`-style inputs generate a
/// string of `lo..=hi` characters drawn from the class. Supported classes
/// (the ones the workspace's suites use):
///
/// * `\PC` — any char that is *not* a control character, weighted toward
///   ASCII with some multibyte/π-adjacent unicode mixed in;
/// * `.`  — same class.
///
/// Unsupported patterns panic loudly rather than silently generating the
/// wrong distribution.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_char_class_pattern(self).unwrap_or_else(|| {
            panic!(
                "the offline proptest stand-in supports only \\PC{{lo,hi}} / .{{lo,hi}} \
                 pattern strategies, got {self:?} (see vendor/README.md)"
            )
        });
        let n = lo + rng.u64_below((hi - lo + 1) as u64) as usize;
        (0..n).map(|_| non_control_char(rng)).collect()
    }
}

/// Parses `\PC{lo,hi}` or `.{lo,hi}`, returning the length bounds.
fn parse_char_class_pattern(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern
        .strip_prefix("\\PC")
        .or_else(|| pattern.strip_prefix('.'))?;
    let rest = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

/// A non-control character: mostly printable ASCII (the interesting cases
/// for parsers of XML-ish text), with markup metacharacters over-weighted
/// and a sprinkle of multibyte unicode.
fn non_control_char(rng: &mut TestRng) -> char {
    const MARKUP: &[char] = &[
        '<', '>', '/', '&', ';', '"', '\'', '=', ' ', '!', '?', '-', ':', ',', '{', '}', '(', ')',
        '|', '*', '+', '^',
    ];
    const UNICODE: &[char] = &['é', 'π', '漢', '🦀', 'Ω', '\u{00A0}', '𝔛'];
    match rng.u64_below(10) {
        0..=3 => MARKUP[rng.usize_in(0..MARKUP.len())],
        4..=7 => {
            // letters and digits
            let pool = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
            pool[rng.usize_in(0..pool.len())] as char
        }
        8 => UNICODE[rng.usize_in(0..UNICODE.len())],
        _ => {
            // any printable ASCII
            (0x20u8 + rng.u64_below(0x5F) as u8) as char
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("vendor_proptest_unit")
    }

    #[test]
    fn ranges_and_just() {
        let mut r = rng();
        for _ in 0..100 {
            let v = (3u64..9).generate(&mut r);
            assert!((3..9).contains(&v));
        }
        assert_eq!(Just(7).generate(&mut r), 7);
    }

    #[test]
    fn map_select_vec_oneof() {
        let mut r = rng();
        let s = crate::prop::sample::select(vec![1, 2, 3]).prop_map(|x| x * 10);
        for _ in 0..50 {
            assert!([10, 20, 30].contains(&s.generate(&mut r)));
        }
        let v = crate::prop::collection::vec(0u32..5, 2..4);
        for _ in 0..50 {
            let xs = v.generate(&mut r);
            assert!(xs.len() == 2 || xs.len() == 3);
            assert!(xs.iter().all(|&x| x < 5));
        }
        let one = crate::prop_oneof![3 => Just("a"), 1 => Just("b")];
        let mut saw_b = false;
        for _ in 0..200 {
            let x = one.generate(&mut r);
            assert!(x == "a" || x == "b");
            saw_b |= x == "b";
        }
        assert!(saw_b);
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(4, 24, 3, |inner| {
            crate::prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut r = rng();
        let mut max_seen = 0;
        for _ in 0..200 {
            let t = s.generate(&mut r);
            let d = depth(&t);
            assert!(d <= 4, "depth {d} exceeds bound");
            max_seen = max_seen.max(d);
        }
        assert!(max_seen >= 2, "recursion never recursed (max {max_seen})");
    }

    #[test]
    fn pattern_strings() {
        let mut r = rng();
        let s: &'static str = "\\PC{0,60}";
        for _ in 0..100 {
            let out = s.generate(&mut r);
            assert!(out.chars().count() <= 60);
            assert!(out.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(a.u64_below(1000), b.u64_below(1000));
        }
    }
}
