//! # mix-dataguide — strong DataGuides for the related-work comparison
//!
//! The paper's Section 5 contrasts DTDs with the dataguides of \[GW97\]:
//! dataguides "do not capture constraints on order and cardinality and
//! they do not capture constraints on the siblings … However dataguides
//! do not require the same type name to define the same type, so in this
//! respect dataguides are similar to s-DTDs." This crate implements
//! strong dataguides over the tree-structured XML of this workspace and
//! makes both halves of that comparison *mechanical*: blindness witnesses
//! (documents a DTD distinguishes but a guide cannot) and
//! context-dependence witnesses (documents a guide distinguishes but a
//! single-type-per-name DTD cannot), plus conforming-document counting on
//! the same metric as `mix_dtd`'s, so guides slot into the tightness
//! experiments.

#![warn(missing_docs)]

pub mod compare;
pub mod guide;

pub use compare::{find_blindness_witness, is_blindness_witness, BlindnessWitness};
pub use guide::{DataGuide, GuideNode};
