//! Pretty-printing of queries in the paper's syntax (reparseable).

use crate::ast::{Body, Condition, NameTest, Query};
use std::fmt;

impl fmt::Display for NameTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTest::Wildcard => write!(f, "*"),
            NameTest::Names(v) => {
                for (i, n) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
        }
    }
}

fn write_cond(c: &Condition, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pad = "  ".repeat(indent);
    write!(f, "{pad}")?;
    if let Some(v) = c.var {
        write!(f, "{v}:")?;
    }
    write!(f, "<{}", c.test)?;
    if let Some(v) = c.id_var {
        write!(f, " id={v}")?;
    }
    match &c.body {
        Body::Children(kids) if kids.is_empty() => write!(f, "/>"),
        Body::Children(kids) => {
            writeln!(f, ">")?;
            for k in kids {
                write_cond(k, indent + 1, f)?;
                writeln!(f)?;
            }
            write!(f, "{pad}</>")
        }
        Body::Text(s) => write!(f, ">{s}</>"),
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_cond(self, 0, f)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} = SELECT {}", self.view_name, self.pick)?;
        writeln!(f, "WHERE")?;
        write_cond(&self.root, 1, f)?;
        for (a, b) in &self.diseqs {
            write!(f, "\nAND {a} != {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    #[test]
    fn display_reparses() {
        for src in [
            "v = SELECT X WHERE X:<a/>",
            "v = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> \
                 <publication id=Pub1><journal/></publication> \
                 <publication id=Pub2><journal/></publication> \
               </> </> AND Pub1 != Pub2",
            "papers = SELECT P WHERE D:<department> G:<gradStudent> \
               X:<publication> P:<title | author/> </> </> </>",
        ] {
            let q = parse_query(src).unwrap();
            let shown = q.to_string();
            let again = parse_query(&shown)
                .unwrap_or_else(|e| panic!("display of {src} did not reparse: {e}\n{shown}"));
            assert_eq!(q, again);
        }
    }
}
