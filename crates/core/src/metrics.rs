//! Quantitative instrumentation for the soundness / tightness framework
//! of Section 3 — this is what turns the paper's formal criteria into the
//! measured experiments of `EXPERIMENTS.md`.
//!
//! * [`soundness_check`] — Definition 3.1, empirically: every view
//!   document of every sampled source document must satisfy the inferred
//!   view DTD (and s-DTD).
//! * [`tightness_counts`] — the exact number of structural documents each
//!   candidate view DTD describes, per size bound: naive vs. tight vs.
//!   specialized (smaller = tighter; the ratios are experiment X1).
//! * [`non_tight_witnesses`] — Definition 3.7, constructively: structures
//!   admitted by the *merged* view DTD but rejected by the specialized
//!   one; each is a structural class the view can never produce (e.g. the
//!   professor with conference-only publications that D2 admits,
//!   Section 3.2).
//! * [`realization_coverage`] — how many of the structures the view DTD
//!   describes were actually realized by sampled source documents.
//! * [`serving_metrics`] — the serving layer's cache observability
//!   (experiment X15): inference-cache hit/miss/invalidation counters next
//!   to the automata-layer DFA/inclusion memo counters.

use crate::cache::InferenceCache;
use crate::naive::{naive_view_dtd, NaiveMode};
use crate::pipeline::{infer_view_dtd, InferredView};
use mix_dtd::sample::{DocConfig, DocSampler};
use mix_dtd::sdtd::SAcceptor;
use mix_dtd::validate::Validator;
use mix_dtd::{count_documents_by_size, count_sdocuments_by_size, enumerate_documents, Dtd};
use mix_xmas::{evaluate, Query};
use mix_xml::{Document, Skeleton};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

pub use crate::cache::CacheStats;
pub use mix_relang::{MemoStats, PoolStats};

/// The serving layer's cache counters in one snapshot: the inference
/// cache of one mediator next to the process-wide automata memo (which
/// every cache miss exercises) and the process-wide regex pool. Reported
/// by `mixctl serve --bench` and experiments X15/X18.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingMetrics {
    /// Hit/miss/invalidation counters of the given [`InferenceCache`].
    pub inference: CacheStats,
    /// DFA-construction and inclusion-check memo counters (process-wide).
    pub automata: MemoStats,
    /// Hash-consed regex pool size and dedup counters (process-wide).
    pub pool: PoolStats,
}

/// Snapshots the serving-layer counters for `cache`.
pub fn serving_metrics(cache: &InferenceCache) -> ServingMetrics {
    ServingMetrics {
        inference: cache.stats(),
        automata: mix_relang::memo_stats(),
        pool: mix_relang::pool_stats(),
    }
}

/// Result of an empirical soundness run (experiment X2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoundnessReport {
    /// Number of source documents sampled.
    pub samples: usize,
    /// View documents violating the merged view DTD (must be 0).
    pub dtd_violations: usize,
    /// View documents violating the specialized view DTD (must be 0).
    pub sdtd_violations: usize,
    /// How many sampled sources produced a non-empty view (sanity: the
    /// experiment is vacuous when everything is empty).
    pub nonempty_views: usize,
}

/// Samples `n` random source documents, runs the view, and validates every
/// result against both inferred view DTDs.
pub fn soundness_check(
    q: &Query,
    source: &Dtd,
    n: usize,
    seed: u64,
    cfg: DocConfig,
) -> SoundnessReport {
    let iv = infer_view_dtd(q, source).expect("query normalizes");
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = DocSampler::new(source, cfg).expect("source DTD describes documents");
    let validator = Validator::new(&iv.dtd);
    let acceptor = SAcceptor::new(&iv.sdtd);
    let mut report = SoundnessReport {
        samples: n,
        dtd_violations: 0,
        sdtd_violations: 0,
        nonempty_views: 0,
    };
    for _ in 0..n {
        let doc = sampler.sample(&mut rng);
        let view = evaluate(&iv.query, &doc);
        if !view.root.children().is_empty() {
            report.nonempty_views += 1;
        }
        if validator.validate_document(&view).is_err() {
            report.dtd_violations += 1;
        }
        if !acceptor.document_satisfies(&view) {
            report.sdtd_violations += 1;
        }
    }
    report
}

/// One row of the tightness-count table (experiment X1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TightnessRow {
    /// Document size (element nodes).
    pub size: usize,
    /// Structures of that size admitted by the naive view DTD.
    pub naive: u128,
    /// … by the merged tight view DTD.
    pub merged: u128,
    /// … by the specialized view DTD.
    pub specialized: u128,
}

/// Computes, for every size `1..=max_size`, how many structural documents
/// the naive, merged-tight, and specialized view DTDs describe.
///
/// Soundness of the pipeline guarantees `specialized ≤ merged ≤ naive`
/// pointwise (asserted by the property tests).
pub fn tightness_counts(q: &Query, source: &Dtd, max_size: usize) -> Vec<TightnessRow> {
    let iv = infer_view_dtd(q, source).expect("query normalizes");
    let naive = naive_view_dtd(&iv.query, source, NaiveMode::Sound);
    let cn = count_documents_by_size(&naive, max_size);
    let cm = count_documents_by_size(&iv.dtd, max_size);
    let cs = count_sdocuments_by_size(&iv.sdtd, max_size);
    (1..=max_size)
        .map(|s| TightnessRow {
            size: s,
            naive: cn[s],
            merged: cm[s],
            specialized: cs[s],
        })
        .collect()
}

/// Structures the merged view DTD admits but the specialized view DTD
/// rejects — concrete evidence of Section 3.2's structural non-tightness
/// of plain DTDs (each witness is a structural class the view cannot
/// produce, assuming the s-DTD is tight).
pub fn non_tight_witnesses(iv: &InferredView, max_size: usize, cap: usize) -> Vec<Document> {
    let acceptor = SAcceptor::new(&iv.sdtd);
    enumerate_documents(&iv.dtd, max_size, cap)
        .into_iter()
        .filter(|doc| !acceptor.document_satisfies(doc))
        .collect()
}

/// Coverage result of [`realization_coverage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Distinct view structures (≤ `max_view_size`) observed over the
    /// sampled sources.
    pub observed: usize,
    /// Structures of that size bound the specialized view DTD describes.
    pub described: u128,
}

/// Samples sources, evaluates the view, and reports how many of the
/// structures described by the specialized view DTD were realized.
pub fn realization_coverage(
    q: &Query,
    source: &Dtd,
    samples: usize,
    seed: u64,
    max_view_size: usize,
) -> Coverage {
    let iv = infer_view_dtd(q, source).expect("query normalizes");
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler =
        DocSampler::new(source, DocConfig::default()).expect("source describes documents");
    let mut seen: HashSet<String> = HashSet::new();
    for _ in 0..samples {
        let doc = sampler.sample(&mut rng);
        let view = evaluate(&iv.query, &doc);
        if view.size() <= max_view_size {
            // normalize strings away so the key is the structural class
            // with PCDATA collapsed (same abstraction as the counters)
            let skel = Skeleton::of(&collapse_strings(&view.root));
            seen.insert(format!("{skel:?}"));
        }
    }
    let described = count_sdocuments_by_size(&iv.sdtd, max_view_size)
        .into_iter()
        .fold(0u128, |a, b| a.saturating_add(b));
    Coverage {
        observed: seen.len(),
        described,
    }
}

fn collapse_strings(e: &mix_xml::Element) -> mix_xml::Element {
    use mix_xml::Content;
    mix_xml::Element {
        name: e.name,
        id: e.id,
        content: match &e.content {
            Content::Text(_) => Content::Text("s".to_owned()),
            Content::Elements(v) => Content::Elements(v.iter().map(collapse_strings).collect()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_xmas::parse_query;

    fn q2() -> Query {
        parse_query(
            "withJournals = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> \
                 <publication id=Pub1><journal/></publication> \
                 <publication id=Pub2><journal/></publication> \
               </> </> AND Pub1 != Pub2",
        )
        .unwrap()
    }

    #[test]
    fn q2_is_sound_on_d1() {
        let report = soundness_check(&q2(), &d1_department(), 150, 42, DocConfig::default());
        assert_eq!(report.dtd_violations, 0);
        assert_eq!(report.sdtd_violations, 0);
        assert!(report.nonempty_views > 0, "vacuous soundness experiment");
    }

    #[test]
    fn tightness_ordering_on_q2() {
        let rows = tightness_counts(&q2(), &d1_department(), 14);
        let mut strict_merged = false;
        let mut strict_spec = false;
        for r in &rows {
            assert!(
                r.merged <= r.naive,
                "merged looser than naive at {}",
                r.size
            );
            assert!(
                r.specialized <= r.merged,
                "specialized looser than merged at {}",
                r.size
            );
            strict_merged |= r.merged < r.naive;
            strict_spec |= r.specialized < r.merged;
        }
        assert!(strict_merged, "tight DTD should beat naive somewhere");
        assert!(strict_spec, "s-DTD should beat merged DTD somewhere");
    }

    #[test]
    fn d2_has_non_tight_witnesses() {
        // Section 3.2: D2 admits a professor with conference-only
        // publications, which the view can never produce.
        let iv = infer_view_dtd(&q2(), &d1_department()).unwrap();
        let witnesses = non_tight_witnesses(&iv, 14, 40_000);
        assert!(
            !witnesses.is_empty(),
            "expected structural non-tightness witnesses for D2"
        );
        // every witness satisfies the merged DTD by construction; spot-check
        let v = mix_dtd::validate::Validator::new(&iv.dtd);
        for w in witnesses.iter().take(5) {
            assert!(v.validate_document(w).is_ok());
        }
    }

    #[test]
    fn d3_is_structurally_tight() {
        // Example 3.2 / Definition 3.7: the publist view DTD admits nothing
        // the view cannot produce.
        let q = parse_query(
            "publist = SELECT P WHERE <department> <name>CS</name> \
               <professor | gradStudent> P:<publication><journal/></publication> </> </>",
        )
        .unwrap();
        let iv = infer_view_dtd(&q, &d1_department()).unwrap();
        let witnesses = non_tight_witnesses(&iv, 10, 40_000);
        assert!(witnesses.is_empty(), "D3 should be tight: {witnesses:?}");
    }

    #[test]
    fn coverage_reports_something() {
        let q = parse_query(
            "pubs = SELECT X WHERE <department> <professor | gradStudent> \
               X:<publication/> </> </>",
        )
        .unwrap();
        // the size bound must be loose enough that the sampler's stream
        // realizes at least one small view (a publication list with a
        // couple of entries is ~12–16 nodes)
        let c = realization_coverage(&q, &d1_department(), 100, 7, 16);
        assert!(c.observed > 0);
        assert!(c.described >= c.observed as u128);
    }
}
