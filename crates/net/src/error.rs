//! The failure modes of the wire.
//!
//! [`NetError`] separates the three things that can go wrong on a
//! mediator↔wrapper link — the transport failed ([`NetError::Io`]), the
//! peer spoke the protocol wrong ([`NetError::Protocol`]), or the peer
//! spoke the protocol *right* and reported a fault of its own
//! ([`NetError::Remote`]). `mix-mediator` folds these onto its
//! `SourceError` fault model (DESIGN.md §9) so retries, circuit breakers,
//! and degradation reports work identically over sockets and in-process
//! wrappers.

use std::fmt;
use std::io;

/// Why a wire operation failed.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed: refused connection, timeout, reset,
    /// mid-frame disconnect. The `io::ErrorKind` carries the diagnosis.
    Io(io::Error),
    /// The peer violated the protocol: wrong version byte, unknown
    /// message type, oversized frame, payload that is not UTF-8, or a
    /// response type the request cannot be answered with.
    Protocol(String),
    /// The peer answered with an `Err` message: a fault that happened on
    /// the *remote* side, forwarded verbatim. `kind` uses the stable
    /// labels of the mediator's `SourceError::kind()` ("transient",
    /// "timeout", "unavailable", …).
    Remote {
        /// Stable machine-readable fault label.
        kind: String,
        /// Human-readable detail.
        msg: String,
    },
    /// The peers speak incompatible frame versions. Unlike a refused
    /// connection or a timeout this is **not retryable** — reconnecting
    /// to the same peer cannot change its build — so `mix-mediator` maps
    /// it to a deployment fault that circuit breakers do *not* count.
    VersionMismatch {
        /// The version byte the peer sent.
        theirs: u8,
        /// [`crate::FRAME_VERSION`] of this build.
        ours: u8,
    },
    /// The peer's admission control shed this request (a
    /// [`crate::Msg::Throttled`] reply): backpressure, not a fault of
    /// either side. The caller should back off for at least
    /// `retry_after_ms` before asking again.
    Throttled {
        /// The peer's suggested minimum backoff, in milliseconds.
        retry_after_ms: u64,
    },
}

impl NetError {
    /// Shorthand for a protocol violation.
    pub fn protocol(msg: impl Into<String>) -> NetError {
        NetError::Protocol(msg.into())
    }

    /// Whether this is a transport timeout (`TimedOut` / `WouldBlock` —
    /// platforms disagree on which one a socket read deadline raises).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            NetError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            )
        )
    }

    /// Whether this is a refused / unreachable connection.
    pub fn is_refused(&self) -> bool {
        matches!(
            self,
            NetError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::AddrNotAvailable
                    | io::ErrorKind::NotFound
            )
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Remote { kind, msg } => write!(f, "remote fault [{kind}]: {msg}"),
            NetError::VersionMismatch { theirs, ours } => write!(
                f,
                "protocol version mismatch: peer speaks {theirs}, this build speaks {ours}"
            ),
            NetError::Throttled { retry_after_ms } => {
                write!(f, "throttled by peer: retry after {retry_after_ms}ms")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_and_refusal_classification() {
        let t = NetError::Io(io::Error::new(io::ErrorKind::TimedOut, "deadline"));
        assert!(t.is_timeout());
        assert!(!t.is_refused());
        let r = NetError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"));
        assert!(r.is_refused());
        assert!(!r.is_timeout());
        assert!(!NetError::protocol("bad byte").is_timeout());
    }

    #[test]
    fn version_mismatch_and_throttle_are_neither_timeout_nor_refusal() {
        let v = NetError::VersionMismatch { theirs: 9, ours: 1 };
        assert!(!v.is_timeout() && !v.is_refused());
        assert_eq!(
            v.to_string(),
            "protocol version mismatch: peer speaks 9, this build speaks 1"
        );
        let t = NetError::Throttled { retry_after_ms: 40 };
        assert!(!t.is_timeout() && !t.is_refused());
        assert_eq!(t.to_string(), "throttled by peer: retry after 40ms");
    }
}
