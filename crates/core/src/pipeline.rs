//! The end-to-end View DTD Inference module of the MIX mediator: query +
//! source DTD → tight specialized view DTD → merged plain view DTD.

use crate::inferlist::infer_list;
use crate::merge::{merge, Merged};
use crate::tighten::{tighten, Verdict};
use mix_dtd::{ContentModel, Dtd, SDtd};
use mix_relang::ast::Regex;
use mix_relang::symbol::{Name, Sym};
use mix_relang::{boxed_baseline, equivalent, equivalent_id, intern, map_syms_cached, simplify};
use mix_xmas::{normalize, NormalizeError, Query};
use std::collections::HashMap;

/// Everything the inference pipeline produces for one view definition.
#[derive(Debug, Clone)]
pub struct InferredView {
    /// The normalized (tagged, wildcard-expanded) query.
    pub query: Query,
    /// The tight specialized view DTD (Section 3.3).
    pub sdtd: SDtd,
    /// The merged plain view DTD (Section 4.3), types simplified.
    pub dtd: Dtd,
    /// Names whose specializations were merged away — each one is a
    /// user-visible loss of tightness.
    pub merged_names: Vec<Name>,
    /// The query's classification against the source DTD (the Figure 2
    /// side effect). `Unsatisfiable` means the view DTD describes an empty
    /// view.
    pub verdict: Verdict,
    /// The inferred content type of the view's top element (over tagged
    /// pick names).
    pub list_type: Regex,
}

/// Runs the full inference pipeline (normalize → tighten → infer-list →
/// assemble s-DTD → collapse equivalent specializations → merge).
///
/// ```
/// use mix_infer::infer_view_dtd;
/// let source = mix_dtd::paper::d1_department();
/// let q = mix_xmas::parse_query(
///     "publist = SELECT P WHERE <department> <name>CS</name> \
///        <professor | gradStudent> P:<publication><journal/></publication> </> </>",
/// ).unwrap();
/// let view = infer_view_dtd(&q, &source).unwrap();
/// // Example 3.2: the (journal | conference) disjunction is removed
/// let publication = view.dtd.get(mix_relang::name("publication")).unwrap();
/// assert_eq!(publication.to_string(), "title, author+, journal");
/// ```
pub fn infer_view_dtd(q: &Query, source: &Dtd) -> Result<InferredView, NormalizeError> {
    let q = normalize(q, source)?;
    let tightened = tighten(&q, source);
    let list_type = if tightened.verdict == Verdict::Unsatisfiable {
        Regex::Epsilon
    } else {
        infer_list(&q, source, &tightened)
    };
    // Assemble: view root + every type reachable from it.
    let mut sdtd = SDtd::new(q.view_name.untagged());
    sdtd.types.insert(
        q.view_name.untagged(),
        ContentModel::Elements(list_type.clone()),
    );
    let mut frontier: std::collections::VecDeque<Sym> =
        list_type.syms_in_order().into_iter().collect();
    while let Some(s) = frontier.pop_front() {
        if sdtd.types.contains(s) {
            continue;
        }
        let model = if s.tag != 0 {
            tightened.types.get(s).cloned()
        } else {
            source.get(s.name).cloned()
        };
        let Some(model) = model else {
            // A tagged sym with no stored refinement can only arise from a
            // condition that later proved unsatisfiable; fall back to the
            // source type to stay sound.
            if let Some(m) = source.get(s.name) {
                sdtd.types.insert(s, m.clone());
                if let ContentModel::Elements(r) = source.get(s.name).expect("just read") {
                    frontier.extend(r.syms_in_order());
                }
            }
            continue;
        };
        if let ContentModel::Elements(r) = &model {
            frontier.extend(r.syms_in_order());
        }
        sdtd.types.insert(s, model);
    }
    let sdtd = collapse_equivalent(sdtd);
    // the collapse/renumber passes rewrote the tags; re-read the final
    // list type from the assembled s-DTD so the two never diverge
    let list_type = sdtd
        .get(q.view_name.untagged())
        .and_then(ContentModel::regex)
        .cloned()
        .unwrap_or(Regex::Epsilon);
    let Merged { dtd, merged_names } = merge(&sdtd);
    Ok(InferredView {
        query: q,
        sdtd,
        dtd,
        merged_names,
        verdict: tightened.verdict,
        list_type,
    })
}

/// Collapses specializations with language-equivalent definitions (the
/// paper keeps `publication²` but notes in footnote 8 that it "has
/// essentially the same type with `publication¹`"), collapses a
/// specialization equal to the base type into the untagged name, and
/// renumbers the surviving tags densely per name.
pub(crate) fn collapse_equivalent(sdtd: SDtd) -> SDtd {
    collapse_equivalent_with(sdtd, &mut [])
}

/// [`collapse_equivalent`], threading *extra* regexes (over the same sym
/// space as `sdtd`) through every rename pass. Callers that track slices
/// of the root type — the union-view composition keeps one list type per
/// member — get them back rewritten into the final tag space, which cannot
/// be recovered after the fact: `Regex::concat` flattens and
/// [`apply_rename`] simplifies, so the collapsed root is not re-splittable.
pub(crate) fn collapse_equivalent_with(sdtd: SDtd, extras: &mut [Regex]) -> SDtd {
    let mut current = sdtd;
    // Iterate: collapsing one pair may make others equivalent.
    for _ in 0..8 {
        let mut rename: HashMap<Sym, Sym> = HashMap::new();
        let keys: Vec<Sym> = current.types.keys().collect();
        for (i, &a) in keys.iter().enumerate() {
            if rename.contains_key(&a) {
                continue;
            }
            for &b in &keys[i + 1..] {
                if a.name != b.name || rename.contains_key(&b) {
                    continue;
                }
                let equal = match (current.types.get(a), current.types.get(b)) {
                    (Some(ContentModel::Pcdata), Some(ContentModel::Pcdata)) => true,
                    (Some(ContentModel::Elements(ra)), Some(ContentModel::Elements(rb))) => {
                        if boxed_baseline() {
                            ra == rb || equivalent(ra, rb)
                        } else {
                            // id equality is the structural fast path
                            let (ia, ib) = (intern(ra), intern(rb));
                            ia == ib || equivalent_id(ia, ib)
                        }
                    }
                    _ => false,
                };
                if equal {
                    // keep the lower tag (untagged wins)
                    let (keep, drop) = if a.tag <= b.tag { (a, b) } else { (b, a) };
                    rename.insert(drop, keep);
                }
            }
        }
        if rename.is_empty() {
            break;
        }
        current = apply_rename(&current, &rename);
        rename_extras(extras, &rename);
    }
    renumber_with(current, extras)
}

fn rename_extras(extras: &mut [Regex], rename: &HashMap<Sym, Sym>) {
    for r in extras.iter_mut() {
        *r = simplify(&map_syms_cached(r, &mut |s| *rename.get(&s).unwrap_or(&s)));
    }
}

fn apply_rename(sdtd: &SDtd, rename: &HashMap<Sym, Sym>) -> SDtd {
    let map = |s: Sym| *rename.get(&s).unwrap_or(&s);
    let mut out = SDtd::new(map(sdtd.doc_type));
    for (s, m) in sdtd.types.iter() {
        let key = map(s);
        if out.types.contains(key) {
            continue; // dropped duplicate
        }
        let model = match m {
            ContentModel::Pcdata => ContentModel::Pcdata,
            ContentModel::Elements(r) => {
                ContentModel::Elements(simplify(&map_syms_cached(r, &mut |x| map(x))))
            }
        };
        out.types.insert(key, model);
    }
    out
}

/// Renumbers surviving tags densely, and *untags* the specialization of
/// any name that has exactly one — matching the paper's presentation of
/// (D4), where `professor` carries its refined type plainly and only
/// `publication` (which needs both the original and the journal-only
/// type) keeps a tag. Renaming specializations never changes the set of
/// accepted documents: tags are just names.
fn renumber_with(sdtd: SDtd, extras: &mut [Regex]) -> SDtd {
    let mut per_name: HashMap<Name, Vec<Sym>> = HashMap::new();
    for s in sdtd.types.keys() {
        per_name.entry(s.name).or_default().push(s);
    }
    let mut rename: HashMap<Sym, Sym> = HashMap::new();
    for (n, specs) in per_name {
        match specs.as_slice() {
            [only] if only.tag != 0 => {
                rename.insert(*only, n.untagged());
            }
            _ => {
                let mut counter = 0u32;
                for s in specs {
                    if s.tag == 0 {
                        continue;
                    }
                    counter += 1;
                    if s.tag != counter {
                        rename.insert(s, n.tagged(counter));
                    }
                }
            }
        }
    }
    if rename.is_empty() {
        sdtd
    } else {
        rename_extras(extras, &rename);
        apply_rename(&sdtd, &rename)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_relang::parse_regex;
    use mix_relang::symbol::name;
    use mix_xmas::parse_query;

    fn q2_src() -> Query {
        parse_query(
            "withJournals = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> \
                 <publication id=Pub1><journal/></publication> \
                 <publication id=Pub2><journal/></publication> \
               </> </> AND Pub1 != Pub2",
        )
        .unwrap()
    }

    #[test]
    fn example_3_4_specialized_dtd() {
        let d = d1_department();
        let iv = infer_view_dtd(&q2_src(), &d).unwrap();
        assert_eq!(iv.verdict, Verdict::Satisfiable);
        // root: professor*, gradStudent* (over some tags)
        assert!(equivalent(
            &iv.list_type.image(),
            &parse_regex("professor*, gradStudent*").unwrap()
        ));
        // publication keeps both the original type (untagged) and exactly
        // one journal-only specialization — the paper's publication¹
        let pub_specs = iv.sdtd.specializations(name("publication"));
        assert_eq!(pub_specs.len(), 2, "specializations: {pub_specs:?}");
        let tagged = pub_specs
            .iter()
            .copied()
            .find(|s| !s.is_untagged())
            .expect("journal-only specialization");
        assert_eq!(tagged, name("publication").tagged(1));
        let t = iv.sdtd.get(tagged).unwrap().regex().unwrap();
        assert!(equivalent(
            &t.image(),
            &parse_regex("title, author+, journal").unwrap()
        ));
        // professor (sole spec, hence untagged as in D4) requires the two
        // tagged publications around stars
        let prof = name("professor").untagged();
        let pr = iv.sdtd.get(prof).unwrap().regex().unwrap();
        assert!(equivalent(
            &pr.image(),
            &parse_regex("firstName, lastName, publication, publication, publication*, teaches")
                .unwrap()
        ));
    }

    #[test]
    fn example_3_1_merged_dtd_is_d2() {
        let d = d1_department();
        let iv = infer_view_dtd(&q2_src(), &d).unwrap();
        // (D2), reconstructed: root professor*, gradStudent*; professor and
        // gradStudent require at least two publications; publication keeps
        // the (journal | conference) disjunction (that information is lost
        // by merging — and the merge is signalled).
        assert!(iv.merged_names.contains(&name("publication")));
        let root = iv.dtd.get(name("withJournals")).unwrap().regex().unwrap();
        assert!(equivalent(
            root,
            &parse_regex("professor*, gradStudent*").unwrap()
        ));
        let prof = iv.dtd.get(name("professor")).unwrap().regex().unwrap();
        assert!(equivalent(
            prof,
            &parse_regex("firstName, lastName, publication, publication, publication*, teaches")
                .unwrap()
        ));
        let publ = iv.dtd.get(name("publication")).unwrap().regex().unwrap();
        assert!(equivalent(
            publ,
            &parse_regex("title, author+, (journal | conference)").unwrap()
        ));
        assert!(iv.dtd.undefined_names().is_empty());
    }

    #[test]
    fn example_3_2_disjunction_removal() {
        // (Q3): all journal publications of CS people → (D3).
        let d = d1_department();
        let q = parse_query(
            "publist = SELECT P WHERE <department> <name>CS</name> \
               <professor | gradStudent> P:<publication><journal/></publication> </> </>",
        )
        .unwrap();
        let iv = infer_view_dtd(&q, &d).unwrap();
        let root = iv.dtd.get(name("publist")).unwrap().regex().unwrap();
        assert!(equivalent(root, &parse_regex("publication*").unwrap()));
        let publ = iv.dtd.get(name("publication")).unwrap().regex().unwrap();
        assert!(
            equivalent(publ, &parse_regex("title, author+, journal").unwrap()),
            "disjunction not removed: {publ}"
        );
        // no merging needed here: the view DTD is structurally tight
        assert!(iv.merged_names.is_empty());
        assert!(!iv.dtd.types.contains(name("conference")));
    }

    #[test]
    fn unsatisfiable_view_dtd_describes_empty_answer() {
        let d = d1_department();
        let q = parse_query("v = SELECT J WHERE <department> J:<journal/> </>").unwrap();
        let iv = infer_view_dtd(&q, &d).unwrap();
        assert_eq!(iv.verdict, Verdict::Unsatisfiable);
        let root = iv.dtd.get(name("v")).unwrap().regex().unwrap();
        assert_eq!(root, &Regex::Epsilon);
        assert_eq!(iv.dtd.types.len(), 1);
    }

    #[test]
    fn inferred_sdtd_has_no_dangling_references() {
        let d = d1_department();
        let iv = infer_view_dtd(&q2_src(), &d).unwrap();
        for (_, m) in iv.sdtd.types.iter() {
            if let ContentModel::Elements(r) = m {
                for s in r.syms() {
                    assert!(iv.sdtd.types.contains(s), "dangling {s}");
                }
            }
        }
    }

    #[test]
    fn tags_are_dense_after_renumbering() {
        let d = d1_department();
        let iv = infer_view_dtd(&q2_src(), &d).unwrap();
        for n in [name("professor"), name("gradStudent"), name("publication")] {
            let mut tags: Vec<u32> = iv
                .sdtd
                .specializations(n)
                .iter()
                .map(|s| s.tag)
                .filter(|&t| t != 0)
                .collect();
            tags.sort();
            for (i, t) in tags.iter().enumerate() {
                assert_eq!(*t as usize, i + 1, "tags of {n} not dense: {tags:?}");
            }
        }
    }
}
