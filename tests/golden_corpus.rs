//! Golden-corpus regression harness: every D×Q pairing the paper tests
//! exercise, snapshotted end-to-end (normalized query, verdict, list
//! type, inferred s-DTD, merged view DTD, merged names) into
//! `tests/golden/*.txt`.
//!
//! On drift the test prints a unified diff of golden vs. actual. To
//! accept new output intentionally, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_corpus
//! ```

use mix::dtd::paper::{d11_department, d1_department, d9_professor, section_recursive};
use mix::prelude::*;
use mix::xmas::paper::{q12_papers, q2_with_journals, q3_publist, q6_answer, q7_answer};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The corpus: one named case per (source DTD, query) pairing that
/// `tests/paper_examples.rs` runs through the inference pipeline.
fn corpus() -> Vec<(&'static str, Dtd, Query)> {
    let verdict_triple = [
        // E11's three classification outcomes over D1.
        (
            "d1-valid-professor",
            "v = SELECT P WHERE <department> P:<professor/> </>",
        ),
        (
            "d1-satisfiable-professor",
            "v = SELECT P WHERE <department> <name>CS</name> P:<professor/> </>",
        ),
        (
            "d1-unsatisfiable-publication",
            "v = SELECT P WHERE <department> P:<publication/> </>",
        ),
    ];
    let mut cases = vec![
        ("d1-q2-with-journals", d1_department(), q2_with_journals()),
        ("d1-q3-publist", d1_department(), q3_publist()),
        ("d11-q3-publist", d11_department(), q3_publist()),
        ("d11-q12-papers", d11_department(), q12_papers()),
        ("d9-q6-answer", d9_professor(), q6_answer()),
        ("d9-q7-answer", d9_professor(), q7_answer()),
        (
            "section-recursive-subsections",
            section_recursive(),
            parse_query("subs = SELECT S WHERE <section> <prolog/> S:<section/> </>").unwrap(),
        ),
    ];
    for (name, src) in verdict_triple {
        cases.push((name, d1_department(), parse_query(src).unwrap()));
    }
    // Merge chains: inference over an *inferred* view DTD — the stacked-
    // mediator scenario, where a lower mediator exports D2 (inferred from
    // Q2/D1) or D10 (inferred from Q6/D9) and a higher one infers again.
    let d2 = infer_view_dtd(&q2_with_journals(), &d1_department())
        .expect("Q2/D1 infers")
        .dtd;
    cases.push((
        "d2-q3-merge-chain",
        d2,
        parse_query(
            "pubs = SELECT P WHERE <withJournals> <professor | gradStudent> \
             P:<publication/> </> </>",
        )
        .unwrap(),
    ));
    let d10 = infer_view_dtd(&q6_answer(), &d9_professor())
        .expect("Q6/D9 infers")
        .dtd;
    cases.push((
        "d10-merge-chain",
        d10,
        parse_query("profs = SELECT X WHERE <answer> X:<professor><journal/></professor> </>")
            .unwrap(),
    ));
    cases
}

/// Renders the snapshot text for one case. Everything here is
/// deterministic across runs and processes (merged names are sorted by
/// the pipeline; Display orders are structural).
fn snapshot(dtd: &Dtd, query: &Query) -> String {
    let iv = infer_view_dtd(query, dtd).expect("corpus query infers");
    let mut out = String::new();
    writeln!(out, "query: {}", iv.query).unwrap();
    writeln!(out, "verdict: {:?}", iv.verdict).unwrap();
    writeln!(out, "list type: {}", iv.list_type).unwrap();
    let merged: Vec<&str> = iv.merged_names.iter().map(|n| n.as_str()).collect();
    writeln!(out, "merged names: [{}]", merged.join(", ")).unwrap();
    writeln!(out, "s-DTD:\n{}", iv.sdtd).unwrap();
    writeln!(out, "merged DTD:\n{}", iv.dtd).unwrap();
    out
}

fn golden_path(case: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{case}.txt"))
}

/// A minimal unified diff: common prefix/suffix, `-`/`+` for the changed
/// middle. Enough to read a drifted snapshot at a glance.
fn unified_diff(golden: &str, actual: &str) -> String {
    let a: Vec<&str> = golden.lines().collect();
    let b: Vec<&str> = actual.lines().collect();
    let mut start = 0;
    while start < a.len() && start < b.len() && a[start] == b[start] {
        start += 1;
    }
    let mut aend = a.len();
    let mut bend = b.len();
    while aend > start && bend > start && a[aend - 1] == b[bend - 1] {
        aend -= 1;
        bend -= 1;
    }
    let mut out = String::from("--- golden\n+++ actual\n");
    let ctx = 3usize;
    for line in &a[start.saturating_sub(ctx)..start] {
        writeln!(out, "  {line}").unwrap();
    }
    for line in &a[start..aend] {
        writeln!(out, "- {line}").unwrap();
    }
    for line in &b[start..bend] {
        writeln!(out, "+ {line}").unwrap();
    }
    for line in &a[aend..(aend + ctx).min(a.len())] {
        writeln!(out, "  {line}").unwrap();
    }
    out
}

#[test]
fn golden_corpus() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1");
    let mut failures = Vec::new();
    for (case, dtd, query) in corpus() {
        let actual = snapshot(&dtd, &query);
        let path = golden_path(case);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == actual => {}
            Ok(golden) => failures.push(format!(
                "{case}: snapshot drifted from {}:\n{}",
                path.display(),
                unified_diff(&golden, &actual)
            )),
            Err(e) => failures.push(format!(
                "{case}: cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test \
                 golden_corpus` to generate it",
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden case(s) failed:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The satisfiability corpus behind `mixctl explain --sat`: two provably
/// unsatisfiable query shapes per representative source DTD — a
/// wrong-tag child step and an impossible sibling pair — plus one
/// satisfiable control. Pins the verdict `Display` (witness path
/// included) and the skip decision exactly as the CLI prints them.
#[test]
fn sat_explain_golden() {
    let cases: Vec<(&str, Dtd, &str)> = vec![
        (
            "d1 wrong-child-tag",
            d1_department(),
            "none = SELECT C WHERE <department> <professor> C:<course/> </> </>",
        ),
        (
            "d1 impossible-siblings",
            d1_department(),
            "b = SELECT T WHERE <department> <professor> <publication> \
             T:<title/> <journal/> <conference/> </> </> </>",
        ),
        (
            "d9 wrong-child-tag",
            d9_professor(),
            "v = SELECT P WHERE <professor> P:<publication/> </>",
        ),
        (
            "d9 impossible-siblings",
            d9_professor(),
            "v = SELECT N WHERE <professor> N:<name/> <name/> </>",
        ),
        (
            "d1 satisfiable-control",
            d1_department(),
            "pubs = SELECT P WHERE <department> <professor> P:<publication/> </> </>",
        ),
    ];
    let mut actual = String::new();
    for (case, dtd, src) in &cases {
        let verdict = check_sat(&parse_query(src).unwrap(), dtd);
        let action = if verdict.is_unsat() {
            "fetch skipped"
        } else {
            "fetch proceeds"
        };
        writeln!(actual, "{case}: {verdict} [{action}]").unwrap();
    }
    let path = golden_path("sat-explain");
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    match std::fs::read_to_string(&path) {
        Ok(golden) if golden == actual => {}
        Ok(golden) => panic!(
            "sat-explain corpus drifted from {}:\n{}",
            path.display(),
            unified_diff(&golden, &actual)
        ),
        Err(e) => panic!(
            "cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_corpus`",
            path.display()
        ),
    }
}

/// The snapshots themselves must be reproducible: rendering a case twice
/// in the same process (fresh fixture objects, so fresh intern order
/// downstream) yields byte-identical text.
#[test]
fn snapshots_are_deterministic_within_a_run() {
    for (case, dtd, query) in corpus() {
        let first = snapshot(&dtd, &query);
        let second = snapshot(&dtd, &query);
        assert_eq!(first, second, "{case} rendered differently on a second run");
    }
}

/// Pins the `mixctl stats --format prom` text exposition byte-for-byte:
/// a manual-clock registry driven through the real serving stack (so the
/// metric names are the ones production emits), plus hand-fed histogram
/// observations to exercise bucket/quantile rendering. Any change to the
/// exposition format or to the serving stack's metric names shows up
/// here as a diff.
#[test]
fn obs_stats_exposition_golden() {
    use std::sync::Arc;

    let registry = Registry::with_manual_clock();
    let mut m =
        mix::mediator::Mediator::with_registry(ProcessorConfig::default(), registry.clone());
    let doc = parse_document(
        "<department><name>CS</name>\
           <professor><firstName>Y</firstName><lastName>P</lastName>\
             <publication><title>t</title><author>a</author><journal/></publication>\
             <teaches/></professor>\
           <gradStudent><firstName>G</firstName><lastName>S</lastName>\
             <publication><title>u</title><author>a</author><conference/></publication>\
           </gradStudent></department>",
    )
    .unwrap();
    m.add_source(
        "site0",
        Arc::new(XmlSource::new(d1_department(), doc).unwrap()),
    );
    let vq = parse_query("profs = SELECT P WHERE <department> P:<professor/> </>").unwrap();
    m.register_view("site0", &vq).unwrap();
    m.materialize(name("profs")).expect("clean materialize");
    m.query(&parse_query("pq = SELECT X WHERE <profs> X:<professor/> </profs>").unwrap())
        .expect("view query answers");
    // an unsatisfiable view: the satisfiability analyzer proves it empty
    // and the fetch is skipped, so the `sat_*` family lands in the
    // exposition with production-path values rather than hand-fed ones
    let uq =
        parse_query("none = SELECT C WHERE <department> <professor> C:<course/> </> </>").unwrap();
    m.register_view("site0", &uq).unwrap();
    m.materialize(name("none")).expect("pruned materialize");
    // deterministic non-zero distributions: the manual clock never
    // advances mid-call, so the stack's own timers all record 0 — feed
    // the named histograms a fixed spread instead
    for v in [800u64, 1_500, 3_000, 250_000, 1_000_000] {
        registry.histogram("mediator_answer_latency_ns").observe(v);
    }
    registry
        .histogram("source_fetch_latency_ns{source=\"site0\"}")
        .observe(12_000);
    registry.advance_clock_ns(5_000);
    registry.event(
        "breaker-open",
        "source 'site0': opened after 3 consecutive failures",
    );
    // the `mixctl stats` surface of a `--store-dir` daemon: the warm-start
    // store's counters and the regex-pool gauges sit in the same
    // exposition as the serving instruments. The real values vary run to
    // run (pool size depends on test order, load time on the disk), so a
    // fixed spread is fed by name — pinning the names and the rendering.
    registry.counter("store_loads_total").add(42);
    registry.counter("store_load_skipped_total").add(2);
    registry.counter("store_writes_total").add(7);
    registry.counter("store_compactions_total").add(1);
    registry.counter("store_bytes_total").add(16_384);
    registry.histogram("store_load_ns").observe(750_000);
    registry.gauge("relang_pool_nodes").set(512);
    registry.gauge("relang_pool_bytes").set(98_304);
    registry.counter("relang_pool_intern_hits_total").add(1_024);
    registry.counter("relang_pool_intern_misses_total").add(512);

    let snap = registry.snapshot();
    // pin both wire renderings: Prometheus text and the JSON the
    // `Msg::Stats` reply carries (the `--format json` default)
    for (actual, case) in [
        (snap.to_prometheus(), "obs-stats-exposition"),
        (snap.to_json() + "\n", "obs-stats-exposition-json"),
    ] {
        let path = golden_path(case);
        if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == actual => {}
            Ok(golden) => panic!(
                "obs exposition drifted from {}:\n{}",
                path.display(),
                unified_diff(&golden, &actual)
            ),
            Err(e) => panic!(
                "cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_corpus`",
                path.display()
            ),
        }
    }
}
