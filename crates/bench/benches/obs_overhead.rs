//! X17 — the observability subsystem's cost and payoff.
//!
//! Two questions, one artifact (`BENCH_PR4.json`):
//!
//! 1. **Cost.** The same X15 batch workload (4 simulated-latency
//!    sources, 20-query batches, 8 worker threads) served twice: once by
//!    a mediator recording into a live [`mix_obs::Registry`], once with
//!    [`mix_obs::Registry::noop`] — every instrument a single
//!    `Option::None` branch. The acceptance target is ≤ 2% throughput
//!    overhead on this workload. A zero-latency variant is also measured
//!    as a stress figure: with no source waits to hide behind, the
//!    instrument cost is maximally visible (it is *not* part of the
//!    acceptance gate, and on a busy host it is mostly scheduler noise).
//! 2. **Payoff.** A federated union with one source 50 ms slower than
//!    its peers, localized *from the span trace alone*: the
//!    `fetch/<site>` span with the largest duration must name the slow
//!    source, without consulting the wrappers.
//!
//! Custom harness (not Criterion): like X15, the acceptance criteria are
//! ratios that must land in a committed artifact.

use mix_bench::{d1, department_of_size, q2};
use mix_mediator::{LatencyWrapper, Mediator, ProcessorConfig, XmlSource};
use mix_obs::Registry;
use mix_xmas::{parse_query, Query};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SOURCES: usize = 4;
const BATCH: usize = 20;
const LATENCY_MS: u64 = 10;
const THREADS: usize = 8;
const REPS: usize = 5;
const SLOW_MS: u64 = 50;
const FAST_MS: u64 = 1;
const SLOW_SITE: usize = 2;

/// The X15 serving mediator, parameterized over its registry and the
/// per-fetch simulated latency.
fn build_mediator(registry: Registry, latency_ms: u64) -> (Mediator, Vec<Query>) {
    let mut m = Mediator::with_registry(ProcessorConfig::default(), registry);
    let mut views = Vec::new();
    for i in 0..SOURCES {
        let source = XmlSource::new(d1(), department_of_size(8)).expect("valid department");
        let slow = LatencyWrapper::new(source, Duration::from_millis(latency_ms));
        let site = format!("site{i}");
        m.add_source(&site, Arc::new(slow));
        let mut view = q2();
        view.view_name = mix_relang::name(&format!("wj{i}"));
        m.register_view(&site, &view).expect("view registers");
        views.push(view.view_name);
    }
    let batch: Vec<Query> = (0..BATCH)
        .map(|i| {
            let view = views[i % views.len()];
            parse_query(&format!(
                "b{i} = SELECT X WHERE <{view}> X:<professor/> </{view}>"
            ))
            .expect("batch query parses")
        })
        .collect();
    (m, batch)
}

/// Best-of-`reps` throughput of one mediator over the batch.
fn measure_qps(m: &Mediator, batch: &[Query], threads: usize, reps: usize) -> f64 {
    // one warmup pass fills the inference cache and the automata memo so
    // both configurations measure steady-state serving
    let _ = m.answer_many_with_threads(batch, threads);
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let answers = m.answer_many_with_threads(batch, threads);
        best = best.min(t.elapsed());
        assert_eq!(answers.len(), batch.len());
        assert!(answers.iter().all(|a| a.is_ok()), "batch answers cleanly");
    }
    batch.len() as f64 / best.as_secs_f64().max(1e-12)
}

/// Instrumented vs. no-op throughput at one latency/threading setting.
/// The stress variant runs single-threaded: on zero-latency queries an
/// 8-way thread race measures the scheduler, not the instruments.
fn bench_overhead(latency_ms: u64, threads: usize, reps: usize) -> (f64, f64, f64) {
    let (noop_m, batch) = build_mediator(Registry::noop(), latency_ms);
    let (instr_m, _) = build_mediator(Registry::new(), latency_ms);
    // interleave the measurements so slow drift (thermal, noisy
    // neighbors) hits both configurations equally
    let mut noop_qps = 0.0f64;
    let mut instr_qps = 0.0f64;
    for _ in 0..3 {
        noop_qps = noop_qps.max(measure_qps(&noop_m, &batch, threads, reps));
        instr_qps = instr_qps.max(measure_qps(&instr_m, &batch, threads, reps));
    }
    let overhead_pct = (noop_qps / instr_qps.max(1e-12) - 1.0) * 100.0;
    (instr_qps, noop_qps, overhead_pct)
}

/// One federated union with a single slow member; returns the per-source
/// fetch durations (ms) read from the span trace, and the source the
/// trace blames.
fn bench_slow_source_localization() -> (Vec<(String, f64)>, String) {
    let registry = Registry::new();
    let mut m = Mediator::with_registry(ProcessorConfig::default(), registry.clone());
    let mut parts = Vec::new();
    for i in 0..SOURCES {
        let source = XmlSource::new(d1(), department_of_size(8)).expect("valid department");
        let ms = if i == SLOW_SITE { SLOW_MS } else { FAST_MS };
        let slow = LatencyWrapper::new(source, Duration::from_millis(ms));
        m.add_source(&format!("site{i}"), Arc::new(slow));
        parts.push((format!("site{i}"), q2()));
    }
    let part_refs: Vec<(&str, Query)> =
        parts.iter().map(|(s, q)| (s.as_str(), q.clone())).collect();
    m.register_union_view("allJournals", &part_refs)
        .expect("union view registers");
    m.materialize(mix_relang::name("allJournals"))
        .expect("union materializes");

    let snap = registry.snapshot();
    let mut fetches: Vec<(String, f64)> = snap
        .spans
        .iter()
        .filter_map(|s| {
            s.stage
                .strip_prefix("fetch/")
                .map(|site| (site.to_owned(), s.dur_ns as f64 / 1e6))
        })
        .collect();
    fetches.sort_by(|a, b| a.0.cmp(&b.0));
    let blamed = fetches
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("the trace recorded fetch spans")
        .0
        .clone();
    (fetches, blamed)
}

fn main() {
    println!("X17 instrument overhead (X15 batch workload, {THREADS} threads):");
    let (instr, noop, pct) = bench_overhead(LATENCY_MS, THREADS, REPS);
    println!(
        "  {LATENCY_MS} ms sources: instrumented {instr:.1} q/s vs no-op {noop:.1} q/s \
         → {pct:+.2}% overhead (target ≤ 2%)"
    );
    let (instr0, noop0, pct0) = bench_overhead(0, 1, 3 * REPS);
    println!(
        "  0 ms sources, 1 thread (stress, not gated): instrumented {instr0:.1} q/s vs \
         no-op {noop0:.1} q/s → {pct0:+.2}%"
    );

    let (fetches, blamed) = bench_slow_source_localization();
    println!(
        "X17 slow-source localization ({SLOW_MS} ms injected into site{SLOW_SITE}, \
         peers at {FAST_MS} ms):"
    );
    for (site, ms) in &fetches {
        println!("  fetch/{site}: {ms:.1} ms");
    }
    println!("  span trace blames: {blamed}");
    assert_eq!(
        blamed,
        format!("site{SLOW_SITE}"),
        "the trace must localize the injected slowdown"
    );

    let fetch_json = fetches
        .iter()
        .map(|(site, ms)| format!("      {{ \"source\": \"{site}\", \"fetch_ms\": {ms:.2} }}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"X17\",\n  \
         \"generated_by\": \"cargo bench -p mix-bench --bench obs_overhead\",\n  \
         \"overhead\": {{\n    \"workload\": \"X15 batch ({BATCH} queries, {SOURCES} sources, \
         {THREADS} threads)\",\n    \
         \"latency_dominated\": {{ \"source_latency_ms\": {LATENCY_MS}, \
         \"instrumented_qps\": {instr:.1}, \"noop_qps\": {noop:.1}, \
         \"overhead_pct\": {pct:.2}, \"target_pct\": 2.0 }},\n    \
         \"cpu_bound_stress\": {{ \"source_latency_ms\": 0, \"threads\": 1, \
         \"instrumented_qps\": {instr0:.1}, \"noop_qps\": {noop0:.1}, \
         \"overhead_pct\": {pct0:.2}, \"gated\": false }}\n  }},\n  \
         \"slow_source_localization\": {{\n    \"injected_ms\": {SLOW_MS},\n    \
         \"injected_into\": \"site{SLOW_SITE}\",\n    \"fetch_spans\": [\n{fetch_json}\n    ],\n    \
         \"blamed_by_trace\": \"{blamed}\"\n  }}\n}}"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json");
    std::fs::write(out, json + "\n").expect("write BENCH_PR4.json");
    println!("wrote {out}");
}
