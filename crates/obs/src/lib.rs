//! # mix-obs — the observability substrate of the MIX reproduction
//!
//! The ROADMAP's north star is a mediator serving heavy traffic over
//! many sources; finding the next hot path in such a system requires
//! per-stage timing and per-site health as *first-class outputs*, not
//! ad-hoc counters bolted onto each layer. This crate is that substrate
//! (DESIGN.md §10): deliberately std-only, dependency-free, and cheap
//! enough to leave on in production.
//!
//! Three kinds of state live behind a cloneable [`Registry`] handle:
//!
//! * **Instruments** — [`Counter`]s and [`Gauge`]s (single atomics) and
//!   log₂-bucketed [`Histogram`]s with exact, testable p50/p95/p99
//!   ([`hist`]). Handles are `Clone` and lock-free on the hot path;
//!   the registry lock is only taken at registration and snapshot time.
//! * **Spans** — a fixed-capacity lock-free ring of `(trace, stage,
//!   start, duration)` records ([`span`]) tracing a request through the
//!   pipeline (query → normalize → cache lookup → infer → source fetch →
//!   union). Stage names are interned; trace ids propagate through a
//!   thread-local so scoped worker threads can join their parent's trace.
//! * **Events** — a small capped ring of rare, timestamped occurrences
//!   (circuit-breaker flaps, stale serves) that would be lost in a
//!   counter.
//!
//! A [`Registry`] is either *enabled* or a **no-op**: [`Registry::noop`]
//! holds no allocation at all, every instrument handle degrades to
//! `Option::None`, and instrumented code costs one branch per call.
//! Bench X17 (`BENCH_PR4.json`) pins the enabled-vs-noop overhead on the
//! serving workload.
//!
//! State is exported as a [`Snapshot`]: a plain-data view with a stable
//! JSON encoding (round-trips byte-for-byte through [`json`], the
//! schema-stability guard CI enforces) and a Prometheus-style text
//! exposition. Snapshots [`Snapshot::merge`] so a process can serve one
//! view over several registries (e.g. a mediator's plus [`global()`]).
//!
//! The process-wide [`global()`] registry hosts instruments from layers
//! with no natural owner (the `relang` automata memo); everything else
//! takes an explicit registry so tests and benches stay isolated.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod event;
pub mod hist;
pub mod json;
mod registry;
pub mod snapshot;
pub mod span;

pub use registry::{Counter, Gauge, HistTimer, Histogram, Registry, SpanGuard};
pub use snapshot::{EventSnapshot, HistSnapshot, Snapshot, SpanSnapshot};
pub use span::{current_trace, set_current_trace, TraceScope};

use std::sync::OnceLock;

/// Identifier of the snapshot JSON schema; bumped on any change to the
/// encoding. [`Snapshot::from_json`] rejects other schemas.
pub const SCHEMA: &str = "mix-obs/1";

/// The process-wide registry (always enabled, real clock).
///
/// Hosts instruments that have no natural owner — the `relang` automata
/// memo, which is itself process-wide. Layers with an owning object
/// (mediator, cache, server) take an explicit [`Registry`] instead, so
/// tests and benches can observe in isolation.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
