//! X3 — `refine` scaling: time vs. content-model size, plain and tagged.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mix_bench::regex_of_size;
use mix_infer::refine;
use mix_relang::symbol::Name;
use std::time::Duration;

fn bench_refine(c: &mut Criterion) {
    let mut g = c.benchmark_group("refine");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    let target = Name::intern("x0");
    for size in [8usize, 16, 32, 64, 128, 256] {
        let r = regex_of_size(size, 6, 42);
        g.bench_with_input(BenchmarkId::new("plain", size), &r, |b, r| {
            b.iter(|| refine(r, &[target], 0))
        });
        g.bench_with_input(BenchmarkId::new("tagged", size), &r, |b, r| {
            b.iter(|| refine(r, &[target], 7))
        });
        // Example 4.2's pattern: sequential tagged refinement
        g.bench_with_input(BenchmarkId::new("tagged-twice", size), &r, |b, r| {
            b.iter(|| {
                let once = refine(r, &[target], 1);
                refine(&once, &[target], 2)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_refine);
criterion_main!(benches);
