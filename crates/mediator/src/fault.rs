//! Deterministic, seeded fault injection for wrappers.
//!
//! [`FaultInjector`] wraps any [`Wrapper`] and applies a reproducible
//! fault schedule: given the same plan (and seed), the *n*-th call always
//! produces the same outcome — an error, a corrupted document, or a clean
//! pass-through. No wall clock is involved anywhere, so every failure
//! mode of the resilience layer (retries, breaker trips, snapshot
//! degradation) is testable without flakiness: a "timeout" is an error
//! *value*, produced instantly.
//!
//! Two fault families exist on purpose:
//!
//! * **errors** ([`Fault::Timeout`], [`Fault::Transient`],
//!   [`Fault::Unavailable`], [`Fault::MalformedXml`]) — the call fails
//!   outright, like a dead or garbled site;
//! * **corruptions** ([`Fault::Truncate`], [`Fault::DtdViolate`]) — the
//!   call *succeeds* but returns a document that no longer validates
//!   against the advertised DTD, like a site that silently changed its
//!   schema. These are only caught by a consumer that validates fetches
//!   (the resilience layer does).

use crate::error::SourceError;
use crate::source::Wrapper;
use mix_dtd::Dtd;
use mix_xmas::Query;
use mix_xml::{Content, Document, ElemId, Element};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The call errors with [`SourceError::Timeout`].
    Timeout,
    /// The call errors with [`SourceError::Transient`].
    Transient,
    /// The call errors with [`SourceError::Unavailable`].
    Unavailable,
    /// The call errors with [`SourceError::MalformedXml`], as if the
    /// exported text stopped parsing.
    MalformedXml,
    /// The call returns a document with the tail of the root's children
    /// dropped — a truncated transfer that still happens to parse.
    Truncate,
    /// The call returns the document with an undeclared `corrupted`
    /// element appended to the root — well-formed, DTD-invalid.
    DtdViolate,
}

impl Fault {
    /// All fault kinds, in the order seeded plans index them.
    pub const ALL: [Fault; 6] = [
        Fault::Timeout,
        Fault::Transient,
        Fault::Unavailable,
        Fault::MalformedXml,
        Fault::Truncate,
        Fault::DtdViolate,
    ];
}

/// A reproducible per-call fault schedule.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Never fault (a transparent wrapper).
    None,
    /// Fault on exactly the listed call indices (0-based), clean
    /// elsewhere.
    NthCalls(BTreeMap<u64, Fault>),
    /// Pseudo-random faults at the given rate, fully determined by
    /// `(seed, call index)` — same seed, same schedule, forever.
    Seeded {
        /// Seed of the schedule.
        seed: u64,
        /// Fault probability per call, in `[0, 1]`.
        rate: f64,
    },
    /// An explicit script: entry `i` decides call `i`; calls past the end
    /// of the script are clean.
    Script(Vec<Option<Fault>>),
}

impl FaultPlan {
    /// The fault (if any) for the given 0-based call index. Pure: the
    /// same `(plan, call)` always yields the same answer.
    pub fn fault_for(&self, call: u64) -> Option<Fault> {
        match self {
            FaultPlan::None => None,
            FaultPlan::NthCalls(m) => m.get(&call).copied(),
            FaultPlan::Script(s) => s.get(call as usize).copied().flatten(),
            FaultPlan::Seeded { seed, rate } => {
                let h = mix64(seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // top 53 bits → uniform fraction in [0,1)
                let fraction = ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                if fraction < *rate {
                    let kind = mix64(h) as usize % Fault::ALL.len();
                    Some(Fault::ALL[kind])
                } else {
                    None
                }
            }
        }
    }
}

/// SplitMix64 finalizer — the stable hash behind seeded plans.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A wrapper that injects faults from a [`FaultPlan`] in front of an
/// inner wrapper.
///
/// Only [`Wrapper::fetch`] is intercepted; `answer` goes through the
/// default fetch-and-evaluate path, so corruptions flow into answers the
/// same way they would for a real materializing wrapper.
pub struct FaultInjector {
    inner: Arc<dyn Wrapper>,
    plan: FaultPlan,
    calls: AtomicU64,
}

impl FaultInjector {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: Arc<dyn Wrapper>, plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            inner,
            plan,
            calls: AtomicU64::new(0),
        }
    }

    /// A seeded-rate injector (the common case in tests and benches).
    pub fn seeded(inner: Arc<dyn Wrapper>, seed: u64, rate: f64) -> FaultInjector {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} not in [0,1]"
        );
        FaultInjector::new(inner, FaultPlan::Seeded { seed, rate })
    }

    /// How many fetches have been attempted through this injector.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// The schedule in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn corrupt_truncate(doc: Document) -> Document {
        let root = match doc.root.content {
            Content::Elements(kids) => {
                let keep = kids.len() / 2;
                Element {
                    name: doc.root.name,
                    id: doc.root.id,
                    content: Content::Elements(kids.into_iter().take(keep).collect()),
                }
            }
            // a text root truncates to empty text
            Content::Text(_) => Element {
                name: doc.root.name,
                id: doc.root.id,
                content: Content::Text(String::new()),
            },
        };
        Document::new(root)
    }

    fn corrupt_violate(doc: Document) -> Document {
        let intruder = Element {
            name: mix_relang::symbol::name("corrupted"),
            id: ElemId::fresh(),
            content: Content::Elements(vec![]),
        };
        let root = match doc.root.content {
            Content::Elements(mut kids) => {
                kids.push(intruder);
                Element {
                    name: doc.root.name,
                    id: doc.root.id,
                    content: Content::Elements(kids),
                }
            }
            // PCDATA roots become element content — also a violation
            Content::Text(_) => Element {
                name: doc.root.name,
                id: doc.root.id,
                content: Content::Elements(vec![intruder]),
            },
        };
        Document::new(root)
    }
}

impl Wrapper for FaultInjector {
    fn dtd(&self) -> &Dtd {
        self.inner.dtd()
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        match self.plan.fault_for(call) {
            None => self.inner.fetch(),
            Some(Fault::Timeout) => Err(SourceError::Timeout {
                millis: 100 + (call % 7) * 50,
            }),
            Some(Fault::Transient) => Err(SourceError::Transient(format!(
                "injected transient fault on call {call}"
            ))),
            Some(Fault::Unavailable) => Err(SourceError::Unavailable(format!(
                "injected outage on call {call}"
            ))),
            Some(Fault::MalformedXml) => Err(SourceError::MalformedXml(format!(
                "injected parse failure on call {call}"
            ))),
            Some(Fault::Truncate) => Ok(Self::corrupt_truncate(self.inner.fetch()?)),
            Some(Fault::DtdViolate) => Ok(Self::corrupt_violate(self.inner.fetch()?)),
        }
    }

    // `answer` intentionally not overridden: the default trait
    // implementation re-enters `fetch`, so every schedule applies to
    // answers too.
    fn answer(&self, q: &Query) -> Result<Document, SourceError> {
        let nq = mix_xmas::normalize(q, self.dtd())?;
        let doc = self.fetch()?;
        Ok(mix_xmas::evaluate(&nq, &doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::XmlSource;
    use mix_dtd::parse_compact;
    use mix_xml::parse_document;

    fn wrapped(plan: FaultPlan) -> FaultInjector {
        let dtd = parse_compact("{<r : a*> <a : PCDATA>}").unwrap();
        let doc = parse_document("<r><a>1</a><a>2</a></r>").unwrap();
        FaultInjector::new(Arc::new(XmlSource::new(dtd, doc).unwrap()), plan)
    }

    #[test]
    fn none_plan_is_transparent() {
        let w = wrapped(FaultPlan::None);
        for _ in 0..5 {
            assert_eq!(w.fetch().unwrap().root.children().len(), 2);
        }
        assert_eq!(w.calls(), 5);
    }

    #[test]
    fn nth_call_faults_exactly_there() {
        let w = wrapped(FaultPlan::NthCalls(BTreeMap::from([
            (1, Fault::Timeout),
            (3, Fault::DtdViolate),
        ])));
        assert!(w.fetch().is_ok()); // call 0
        assert!(matches!(w.fetch(), Err(SourceError::Timeout { .. }))); // 1
        assert!(w.fetch().is_ok()); // 2
        let corrupted = w.fetch().unwrap(); // 3: Ok but invalid
        assert_eq!(corrupted.root.children().len(), 3);
        assert!(mix_dtd::validate_document(w.dtd(), &corrupted).is_err());
        assert!(w.fetch().is_ok()); // 4
    }

    #[test]
    fn seeded_schedule_replays_identically() {
        let plan = FaultPlan::Seeded {
            seed: 99,
            rate: 0.5,
        };
        let a: Vec<Option<Fault>> = (0..200).map(|i| plan.fault_for(i)).collect();
        let b: Vec<Option<Fault>> = (0..200).map(|i| plan.fault_for(i)).collect();
        assert_eq!(a, b);
        let faults = a.iter().flatten().count();
        assert!((60..140).contains(&faults), "rate 0.5 gave {faults}/200");
        // a different seed gives a different schedule
        let other = FaultPlan::Seeded {
            seed: 100,
            rate: 0.5,
        };
        assert!((0..200).any(|i| plan.fault_for(i) != other.fault_for(i)));
    }

    #[test]
    fn truncation_halves_children() {
        let w = wrapped(FaultPlan::Script(vec![Some(Fault::Truncate)]));
        let doc = w.fetch().unwrap();
        assert_eq!(doc.root.children().len(), 1);
        assert!(
            w.fetch().unwrap().root.children().len() == 2,
            "script ended"
        );
    }

    #[test]
    fn rate_bounds_are_respected() {
        let never = FaultPlan::Seeded { seed: 1, rate: 0.0 };
        assert!((0..500).all(|i| never.fault_for(i).is_none()));
        let always = FaultPlan::Seeded { seed: 1, rate: 1.0 };
        assert!((0..500).all(|i| always.fault_for(i).is_some()));
    }
}
