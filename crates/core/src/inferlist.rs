//! Result-list type inference (Section 4.4, Appendix B).
//!
//! Computes the type of the view's *top element*: a regular expression
//! over (tagged) pick names describing the order and cardinality of the
//! elements the pick variable contributes, e.g. `professor*, gradStudent*`
//! for (Q2) — professors appear before gradStudents because view content
//! is emitted in document order.
//!
//! The algorithm walks the path from the condition root to the pick
//! variable, alternating:
//!
//! 1. **one-level extension** (Definition 4.3) — substitute every name of
//!    the current list type by its source content model;
//! 2. **projection** — keep only the next path step's (viable) names,
//!    mapping every other name to `ε` (Appendix B's `project`);
//! 3. **optionality weakening** — when the subtree below a kept name is
//!    *satisfiable* rather than *valid*, each kept occurrence becomes
//!    optional (this reconstructs Appendix B's `substitute((d[p₁])?)` step
//!    soundly; see DESIGN.md §3 note 6).
//!
//! Level 0 seeds the list with the document type (made optional when the
//! whole condition is merely satisfiable — a source document may
//! contribute nothing, hence the sound `professor*, gradStudent*` rather
//! than the scan's `professor+, gradStudent+`; DESIGN.md §3 note 2).

use crate::tighten::{Tightened, Verdict};
use mix_dtd::{ContentModel, Dtd};
use mix_relang::ast::Regex;
use mix_relang::simplify;
use mix_relang::symbol::{Name, Tag};
use mix_xmas::{Condition, Query};

/// Projection (Appendix B): keep occurrences of `keep` (any tag, "could
/// match" semantics) retagged to `tag`; every other name becomes `ε`.
pub fn project(t: &Regex, keep: &[Name], tag: Tag) -> Regex {
    t.map_syms(&mut |s| {
        if keep.contains(&s.name) {
            Regex::Sym(s.name.tagged(tag))
        } else {
            Regex::Epsilon
        }
    })
}

/// One-level extension `x(t)` (Definition 4.3): replace every name by its
/// content model in the source DTD. `PCDATA` names contribute no element
/// children and become `ε`.
pub fn one_level_extension(t: &Regex, dtd: &Dtd) -> Regex {
    t.map_syms(&mut |s| match dtd.get(s.name) {
        Some(ContentModel::Elements(r)) => r.clone(),
        Some(ContentModel::Pcdata) | None => Regex::Epsilon,
    })
}

/// Makes each occurrence of `n^tag` optional for every `n` in `soft`.
fn weaken(t: &Regex, soft: &[Name], tag: Tag) -> Regex {
    t.map_syms(&mut |s| {
        if s.tag == tag && soft.contains(&s.name) {
            Regex::opt(Regex::Sym(s))
        } else {
            Regex::Sym(s)
        }
    })
}

/// Infers the content type of the view's top element for a normalized
/// pick-element query, given the tightening result. The returned regex is
/// over tagged pick names (whose refined definitions live in
/// `tightened.types`).
pub fn infer_list(q: &Query, dtd: &Dtd, tightened: &Tightened) -> Regex {
    let Some(path) = q.pick_path() else {
        return Regex::Epsilon;
    };
    // Level 0: the document root.
    let root_cond = path[0];
    if !root_cond.test.matches(dtd.doc_type) {
        return Regex::Epsilon; // the view is certainly empty
    }
    let v0 = verdict_of(tightened, root_cond, dtd.doc_type);
    let mut t = match v0 {
        Verdict::Unsatisfiable => return Regex::Epsilon,
        Verdict::Valid => Regex::Sym(dtd.doc_type.tagged(root_cond.tag)),
        Verdict::Satisfiable => Regex::opt(Regex::Sym(dtd.doc_type.tagged(root_cond.tag))),
    };
    // Levels 1..k: extend, project, weaken.
    for cond in &path[1..] {
        t = one_level_extension(&t, dtd);
        let viable = tightened.viable_names(cond);
        if viable.is_empty() {
            return Regex::Epsilon;
        }
        t = project(&t, &viable, cond.tag);
        let soft: Vec<Name> = viable
            .iter()
            .copied()
            .filter(|&n| verdict_of(tightened, cond, n) == Verdict::Satisfiable)
            .collect();
        t = weaken(&t, &soft, cond.tag);
        if matches!(t, Regex::Epsilon | Regex::Empty) {
            return Regex::Epsilon;
        }
    }
    simplify(&t)
}

fn verdict_of(tightened: &Tightened, cond: &Condition, n: Name) -> Verdict {
    tightened
        .per_name
        .get(&(cond.tag, n))
        .copied()
        .unwrap_or(Verdict::Unsatisfiable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tighten::tighten;
    use mix_dtd::paper::{d11_department, d1_department};
    use mix_relang::{equivalent, parse_regex};
    use mix_xmas::{normalize, parse_query};

    fn list_type(src: &str, dtd: &Dtd) -> Regex {
        let q = normalize(&parse_query(src).unwrap(), dtd).unwrap();
        let t = tighten(&q, dtd);
        infer_list(&q, dtd, &t)
    }

    #[test]
    fn q2_gives_professors_then_gradstudents() {
        let d = d1_department();
        let t = list_type(
            "withJournals = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> \
                 <publication id=Pub1><journal/></publication> \
                 <publication id=Pub2><journal/></publication> \
               </> </> AND Pub1 != Pub2",
            &d,
        );
        assert!(
            equivalent(
                &t.image(),
                &parse_regex("professor*, gradStudent*").unwrap()
            ),
            "got {t}"
        );
    }

    #[test]
    fn valid_conditions_keep_cardinality() {
        let d = d1_department();
        // every professor has ≥1 publication: the pick list is professor+.
        let t = list_type(
            "v = SELECT P WHERE <department> P:<professor><publication/></professor> </>",
            &d,
        );
        assert!(
            equivalent(&t.image(), &parse_regex("professor+").unwrap()),
            "got {t}"
        );
    }

    #[test]
    fn example_4_4_chain() {
        // (Q12) on (D11): titles/authors of gradStudent publications.
        let d = d11_department();
        let t = list_type(
            "papers = SELECT P WHERE D:<department> G:<gradStudent> \
               X:<publication> P:<title | author/> </> </> </>",
            &d,
        );
        assert!(
            equivalent(&t.image(), &parse_regex("(title, author*)*").unwrap()),
            "got {t}"
        );
    }

    #[test]
    fn unsatisfiable_query_gives_epsilon() {
        let d = d1_department();
        let t = list_type("v = SELECT J WHERE <department> J:<journal/> </>", &d);
        assert_eq!(t, Regex::Epsilon);
    }

    #[test]
    fn pick_at_root_is_one_element() {
        let d = d1_department();
        let t = list_type("v = SELECT D WHERE D:<department/>", &d);
        assert!(equivalent(&t.image(), &parse_regex("department").unwrap()));
        let t = list_type("v = SELECT D WHERE D:<department> <name>CS</name> </>", &d);
        assert!(equivalent(&t.image(), &parse_regex("department?").unwrap()));
    }

    #[test]
    fn projection_unit_cases() {
        use mix_relang::symbol::name;
        let r = parse_regex("(n, p+, g+, c*)?").unwrap();
        let p = project(&r, &[name("g")], 3);
        assert!(equivalent(&p.image(), &parse_regex("g*").unwrap()), "{p}");
        let p = project(&r, &[name("p"), name("g")], 3);
        assert!(equivalent(&p.image(), &parse_regex("(p+, g+)?").unwrap()));
    }

    #[test]
    fn one_level_extension_substitutes_models() {
        use mix_relang::symbol::name;
        let d = d1_department();
        let t = Regex::opt(Regex::name(name("department")));
        let x = one_level_extension(&t, &d);
        assert!(equivalent(
            &x,
            &parse_regex("(name, professor+, gradStudent+, course*)?").unwrap()
        ));
    }

    #[test]
    fn pcdata_names_extend_to_epsilon() {
        use mix_relang::symbol::name;
        let d = d1_department();
        let t = Regex::name(name("firstName"));
        assert_eq!(one_level_extension(&t, &d), Regex::Epsilon);
    }

    #[test]
    fn pick_with_text_condition() {
        // picking PCDATA elements with a string condition: each occurrence
        // may fail the string test, so the list is optional per occurrence
        let d = d1_department();
        let t = list_type(
            "csNames = SELECT N WHERE <department> N:<name>CS</name> </department>",
            &d,
        );
        assert!(
            equivalent(&t.image(), &parse_regex("name?").unwrap()),
            "got {t}"
        );
    }

    #[test]
    fn two_distinct_picks_per_parent_keep_order_and_count() {
        // every professor contributes exactly one firstName and the
        // condition is valid: the list mirrors the professor list
        let d = d1_department();
        let t = list_type(
            "names = SELECT F WHERE <department> <professor> F:<firstName/> </> </>",
            &d,
        );
        assert!(
            equivalent(&t.image(), &parse_regex("firstName+").unwrap()),
            "got {t}"
        );
    }

    #[test]
    fn projection_of_tagged_occurrences_could_match() {
        use mix_relang::symbol::name;
        // occurrences already tagged by an earlier refinement still
        // project ("could match" semantics, Appendix B)
        let r = parse_regex("a^3, a, b").unwrap();
        let p = project(&r, &[name("a")], 9);
        assert!(equivalent(&p, &parse_regex("a^9, a^9").unwrap()));
    }

    #[test]
    fn weaken_only_touches_the_given_tag() {
        use mix_relang::symbol::name;
        let d = d1_department();
        let _ = d;
        let r = parse_regex("a^1, a^2").unwrap();
        let w = super::weaken(&r, &[name("a")], 1);
        assert!(equivalent(&w, &parse_regex("a^1?, a^2").unwrap()));
    }

    #[test]
    fn disjunct_path_interior() {
        // pick publications through either professor or gradStudent
        let d = d1_department();
        let t = list_type(
            "pubs = SELECT X WHERE <department> <professor | gradStudent> \
               X:<publication><journal/></publication> </> </>",
            &d,
        );
        assert!(
            equivalent(&t.image(), &parse_regex("publication*").unwrap()),
            "got {t}"
        );
    }
}
