//! Compilation of normalized XMAS queries into a streamable pattern.
//!
//! The supported fragment is the non-`!=`-constrained subset of the
//! pick-element language: `!=` joins need two bindings side by side, which
//! is exactly what a bounded-state one-pass evaluator cannot hold. For
//! everything else the condition tree flattens into an array of pattern
//! nodes with parent links, a designated root-to-pick path, and per-node
//! **feasibility sets** derived from the source DTD: an element name is
//! kept only if, per the hash-consed pool's emptiness/first/alphabet
//! attributes of its interned content model (`mix_relang::pool`), a valid
//! element of that name could possibly satisfy the node's subtree. The
//! matcher skips descents into infeasible elements entirely, so the DTD
//! bounds the live state exactly as the tightening machinery of PR 5
//! bounds inference.
//!
//! Feasibility treats the DTD as a *contract*: on documents that violate
//! their advertised DTD the pruned matcher may miss matches the in-memory
//! evaluator would find. Sources in this workspace validate what they
//! serve (`XmlSource::new`), so the contract holds wherever a
//! `StreamingWrapper` is wired in.

use mix_dtd::{ContentModel, Dtd};
use mix_relang::pool;
use mix_relang::symbol::Name;
use mix_xmas::ast::{Body, Condition, NameTest, Query};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Sibling-condition width cap: per-element matcher state is a bitset
/// over subsets of one node's child conditions, kept machine-word sized.
/// Realistic pick-element queries have 2–4 sibling conditions; the
/// in-memory evaluator backtracks over them factorially, so anything
/// wider is out of reach for *both* evaluators.
pub const MAX_SIBLING_CONDS: usize = 6;

/// Why a query is outside the streamable fragment (the
/// `StreamingWrapper` falls back to the in-memory evaluator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsupported {
    /// The query has `!=` constraints (`A != B` joins two bindings).
    Diseqs(usize),
    /// A condition node has more than [`MAX_SIBLING_CONDS`] children.
    WideSiblings(usize),
    /// The pick variable is not bound in the condition tree (normalized
    /// queries never hit this).
    PickUnbound,
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsupported::Diseqs(n) => {
                write!(f, "{n} id-inequality constraint(s) need the in-memory join")
            }
            Unsupported::WideSiblings(n) => write!(
                f,
                "a condition has {n} sibling conditions (streaming cap {MAX_SIBLING_CONDS})"
            ),
            Unsupported::PickUnbound => write!(f, "the pick variable is not bound"),
        }
    }
}

impl std::error::Error for Unsupported {}

/// A bitmask over one pattern node's child conditions (≤
/// [`MAX_SIBLING_CONDS`] bits).
pub(crate) type Mask = u8;

#[derive(Debug)]
pub(crate) enum PKind {
    /// The element's content must be exactly this string.
    Text(String),
    /// Each listed child node must be satisfied by a distinct child.
    Children(Vec<u16>),
}

#[derive(Debug)]
pub(crate) struct PNode {
    pub(crate) test: NameTest,
    pub(crate) kind: PKind,
    /// Parent node and this node's bit position among its children.
    pub(crate) parent: Option<(u16, u8)>,
    /// Element names that could satisfy this subtree in a DTD-valid
    /// document; `None` disables pruning (wildcard test or no DTD).
    pub(crate) feasible: Option<HashSet<Name>>,
}

impl PNode {
    pub(crate) fn full_mask(&self) -> Mask {
        match &self.kind {
            PKind::Text(_) => 0,
            PKind::Children(kids) => ((1u16 << kids.len()) - 1) as Mask,
        }
    }
}

/// A query compiled for one-pass evaluation: flattened pattern nodes, the
/// root-to-pick path, and DTD feasibility sets.
#[derive(Debug)]
pub struct CompiledQuery {
    /// The answer document's root name.
    pub view_name: Name,
    pub(crate) nodes: Vec<PNode>,
    /// Node index per depth, root (0) to pick node.
    pub(crate) pick_path: Vec<u16>,
    /// Per pick-path *ancestor* depth `d < pick_depth`: the mask of that
    /// node's children that are **filters** — everything except the
    /// on-path child.
    pub(crate) filters: Vec<Mask>,
}

impl CompiledQuery {
    /// Compiles a (normalized) query, with `dtd` enabling feasibility
    /// pruning. Queries with `!=` constraints, unbound picks, or
    /// over-wide sibling lists are rejected as [`Unsupported`].
    pub fn compile(q: &Query, dtd: Option<&Dtd>) -> Result<CompiledQuery, Unsupported> {
        if !q.diseqs.is_empty() {
            return Err(Unsupported::Diseqs(q.diseqs.len()));
        }
        let path = q.pick_path().ok_or(Unsupported::PickUnbound)?;
        let path_ptrs: Vec<*const Condition> = path.iter().map(|c| *c as *const _).collect();

        let mut nodes: Vec<PNode> = Vec::new();
        let mut by_ptr: HashMap<*const Condition, u16> = HashMap::new();
        build(&q.root, None, &mut nodes, &mut by_ptr)?;

        let pick_path: Vec<u16> = path_ptrs.iter().map(|p| by_ptr[p]).collect();
        let pick_depth = pick_path.len() - 1;
        let mut filters = Vec::with_capacity(pick_depth);
        for d in 0..pick_depth {
            let (_, bit) = nodes[pick_path[d + 1] as usize]
                .parent
                .expect("path nodes below the root have parents");
            filters.push(nodes[pick_path[d] as usize].full_mask() & !(1 << bit));
        }

        if let Some(dtd) = dtd {
            compute_feasibility(&mut nodes, dtd);
        }

        Ok(CompiledQuery {
            view_name: q.view_name,
            nodes,
            pick_path,
            filters,
        })
    }

    /// Depth of the pick node (0 = the root is picked).
    pub fn pick_depth(&self) -> usize {
        self.pick_path.len() - 1
    }

    /// Number of pattern nodes.
    pub fn pattern_size(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn pick_node(&self) -> u16 {
        *self.pick_path.last().expect("path nonempty")
    }

    /// Could an element named `name` possibly satisfy `node`? (Name test
    /// plus the DTD feasibility set, when pruning is on.)
    pub(crate) fn admits(&self, node: u16, name: Name) -> bool {
        let n = &self.nodes[node as usize];
        match &n.feasible {
            Some(set) => set.contains(&name),
            None => n.test.matches(name),
        }
    }
}

fn build(
    c: &Condition,
    parent: Option<(u16, u8)>,
    nodes: &mut Vec<PNode>,
    by_ptr: &mut HashMap<*const Condition, u16>,
) -> Result<u16, Unsupported> {
    let idx = nodes.len() as u16;
    by_ptr.insert(c as *const _, idx);
    let kind = match &c.body {
        Body::Text(s) => PKind::Text(s.clone()),
        Body::Children(kids) => {
            if kids.len() > MAX_SIBLING_CONDS {
                return Err(Unsupported::WideSiblings(kids.len()));
            }
            PKind::Children(Vec::with_capacity(kids.len()))
        }
    };
    nodes.push(PNode {
        test: c.test.clone(),
        kind,
        parent,
        feasible: None,
    });
    let mut kid_ids = Vec::new();
    for (bit, kid) in c.children().iter().enumerate() {
        kid_ids.push(build(kid, Some((idx, bit as u8)), nodes, by_ptr)?);
    }
    if let PKind::Children(slot) = &mut nodes[idx as usize].kind {
        *slot = kid_ids;
    }
    Ok(idx)
}

/// Fills per-node feasibility sets bottom-up (children have larger
/// indices than their parents, so a reverse scan sees children first).
///
/// A name `n` is kept for node `p` when the name test matches and `n`'s
/// content model could produce a satisfying element:
/// * text requirement → `n` must be PCDATA;
/// * child requirements → `n` must have element content whose interned
///   model has a non-empty language with a non-empty live first set, and
///   every child condition must be satisfiable by some name in the
///   model's live alphabet (recursively feasible);
/// * names with an empty-language model can never appear in a valid
///   document at all.
///
/// Undefined names stay permissive: the DTD offers no evidence either
/// way, so no pruning.
fn compute_feasibility(nodes: &mut [PNode], dtd: &Dtd) {
    for i in (0..nodes.len()).rev() {
        let NameTest::Names(candidates) = nodes[i].test.clone() else {
            continue; // wildcard: normalize() expands these; stay permissive
        };
        let mut set = HashSet::new();
        for n in candidates {
            if name_feasible(nodes, i, n, dtd) {
                set.insert(n);
            }
        }
        nodes[i].feasible = Some(set);
    }
}

fn name_feasible(nodes: &[PNode], i: usize, n: Name, dtd: &Dtd) -> bool {
    let Some(model) = dtd.get(n) else {
        return true; // undefined in the DTD: no evidence, no pruning
    };
    match (model, &nodes[i].kind) {
        (ContentModel::Pcdata, PKind::Text(_)) => true,
        (ContentModel::Pcdata, PKind::Children(kids)) => kids.is_empty(),
        (ContentModel::Elements(_), PKind::Text(_)) => false,
        (ContentModel::Elements(r), PKind::Children(kids)) => {
            let id = pool::intern(r);
            if pool::empty_lang(id) {
                return false; // no valid content word exists at all
            }
            if kids.is_empty() {
                return true;
            }
            if pool::live_first(id).is_empty() {
                return false; // only the empty word: no children possible
            }
            let alpha = pool::live_alphabet(id);
            kids.iter().all(|&kid| {
                alpha.iter().any(|sym| match &nodes[kid as usize].feasible {
                    Some(set) => set.contains(&sym.name),
                    None => nodes[kid as usize].test.matches(sym.name),
                })
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_relang::symbol::name;
    use mix_xmas::{normalize, parse_query};

    fn compiled(src: &str, dtd: Option<&Dtd>) -> Result<CompiledQuery, Unsupported> {
        let q = parse_query(src).unwrap();
        let q = match dtd {
            Some(d) => normalize(&q, d).unwrap(),
            None => q,
        };
        CompiledQuery::compile(&q, dtd)
    }

    #[test]
    fn diseqs_are_unsupported() {
        let err = compiled(
            "v = SELECT P WHERE <department> P:<professor> \
               <publication id=A/> <publication id=B/> </> </> AND A != B",
            None,
        )
        .unwrap_err();
        assert!(matches!(err, Unsupported::Diseqs(1)));
    }

    #[test]
    fn pick_path_and_filters() {
        let cq = compiled(
            "v = SELECT P WHERE <department> <name>CS</name> \
               <professor> P:<publication/> <teaches/> </> </>",
            None,
        )
        .unwrap();
        assert_eq!(cq.pick_depth(), 2);
        assert_eq!(cq.pattern_size(), 5);
        // department's filters: the <name> condition (bit 0), not the
        // on-path <professor> (bit 1)
        assert_eq!(cq.filters[0], 0b01);
        // professor's filters: <teaches> (bit 1), not the picked
        // <publication> (bit 0)
        assert_eq!(cq.filters[1], 0b10);
    }

    #[test]
    fn dtd_pruning_drops_impossible_names() {
        // <teaches> is EMPTY in D1, so a teaches element can never hold a
        // publication child; with the DTD the professor|gradStudent
        // disjunction under a text requirement also collapses.
        let d = d1_department();
        let cq = compiled(
            "v = SELECT P WHERE <department> \
               <professor | teaches> <publication/> </> P:<course/> </>",
            Some(&d),
        )
        .unwrap();
        let prof_node = cq
            .nodes
            .iter()
            .position(|n| n.test.matches(name("teaches")))
            .unwrap();
        let feasible = cq.nodes[prof_node].feasible.as_ref().unwrap();
        assert!(feasible.contains(&name("professor")));
        assert!(!feasible.contains(&name("teaches")));
    }

    #[test]
    fn text_requirement_needs_pcdata() {
        let d = d1_department();
        // publication has element content; requiring text of it is
        // infeasible, and the infeasibility propagates to the parent
        let cq = compiled(
            "v = SELECT P WHERE P:<department> <publication>abc</publication> </>",
            Some(&d),
        )
        .unwrap();
        let root_feasible = cq.nodes[0].feasible.as_ref().unwrap();
        assert!(root_feasible.is_empty(), "pattern should be infeasible");
        // ...but a name (PCDATA) text requirement is fine
        let cq = compiled(
            "v = SELECT P WHERE P:<department> <name>CS</name> </>",
            Some(&d),
        )
        .unwrap();
        assert!(cq.nodes[0]
            .feasible
            .as_ref()
            .unwrap()
            .contains(&name("department")));
    }

    #[test]
    fn without_dtd_everything_is_permissive() {
        let cq = compiled(
            "v = SELECT P WHERE P:<department> <teaches><x/></teaches> </>",
            None,
        )
        .unwrap();
        assert!(cq.nodes.iter().all(|n| n.feasible.is_none()));
        assert!(cq.admits(0, name("department")));
        assert!(!cq.admits(0, name("professor")));
    }
}
