//! X6 — validation scaling: plain-DTD validation and s-DTD tree-automaton
//! acceptance vs. document size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mix_bench::{d1, department_of_size, q2};
use mix_dtd::sdtd::SAcceptor;
use mix_dtd::validate::Validator;
use mix_infer::infer_view_dtd;
use mix_xmas::evaluate;
use std::time::Duration;

fn bench_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("validate");
    g.sample_size(25).measurement_time(Duration::from_secs(2));
    let dtd = d1();
    let iv = infer_view_dtd(&q2(), &dtd).expect("infers");
    for professors in [4usize, 16, 64, 256] {
        let doc = department_of_size(professors);
        g.throughput(Throughput::Elements(doc.size() as u64));
        g.bench_with_input(
            BenchmarkId::new("dtd_validate", doc.size()),
            &doc,
            |b, doc| {
                let v = Validator::new(&dtd);
                b.iter(|| v.validate_document(doc).expect("valid"))
            },
        );
        let view = evaluate(&iv.query, &doc);
        g.bench_with_input(
            BenchmarkId::new("sdtd_accept_view", view.size()),
            &view,
            |b, view| {
                let a = SAcceptor::new(&iv.sdtd);
                b.iter(|| assert!(a.document_satisfies(view)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_validate);
criterion_main!(benches);
