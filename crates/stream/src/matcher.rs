//! One-pass evaluation of a [`CompiledQuery`] over an event stream.
//!
//! The matcher keeps a **stack of active pattern states**: one frame per
//! open element, each holding the pattern nodes the element is still a
//! viable match for. Everything else about the document is forgotten the
//! moment an element closes, so the live state is `O(depth × pattern)`
//! plus whatever answers cannot be emitted yet — never the document.
//!
//! The one genuinely hard part of pick-element semantics under streaming
//! is that an element can be *picked* long before the conditions that
//! justify picking it are observable. In
//!
//! ```text
//! v = SELECT P WHERE <department> P:<professor/> <course/> </department>
//! ```
//!
//! a professor streams past before we know whether the department has a
//! course. The matcher therefore splits every root-to-pick ancestor's
//! sibling conditions into the **on-path** child (satisfied structurally,
//! by the descent itself) and **filters** (everything else). A closing
//! pick element becomes a *candidate*: its subtree is captured with fresh
//! IDs and queued, and each ancestor level where the filters are not yet
//! satisfied is recorded as an unresolved obligation. Candidates resolve
//! as later siblings close, die when an ancestor closes with filters
//! still unmet, and are emitted strictly in document order (FIFO).
//!
//! Filters must be matched by **distinct** children (and none of them may
//! be the chain child the candidate descended through), mirroring the
//! in-memory evaluator's injective sibling matching. With at most
//! [`MAX_SIBLING_CONDS`](crate::compile::MAX_SIBLING_CONDS) sibling
//! conditions, a closing child is summarized by its *class* — the bitmask
//! of sibling conditions it satisfies on its own — and per-class counts
//! support an exact Hall's-condition check (`hall`): a set of conditions
//! has a system of distinct representatives iff every subset `U` has at
//! least `|U|` counted children whose class meets `U`. The same idea
//! bounds each element's own satisfiability check: `reach` is the bitset
//! of child-condition subsets coverable by distinct already-closed
//! children.

use crate::compile::{CompiledQuery, Mask, PKind};
use crate::reader::{EventReader, StreamError, XmlEvent};
use mix_relang::symbol::Name;
use mix_xml::{write_element_at, Content, Document, ElemId, Element, WriteConfig};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::mem::size_of;

/// Resource profile of one streaming evaluation.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Total events pulled from the reader.
    pub events: u64,
    /// Elements seen (open events).
    pub elements: u64,
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// Answer elements emitted.
    pub answers: u64,
    /// High-water estimate of live matcher state in bytes: frames,
    /// tracked pattern nodes, Hall counters, and queued-but-unresolved
    /// answer subtrees. Excludes the reader's I/O buffer (see
    /// [`reader_buffer_high_water`](Self::reader_buffer_high_water)).
    pub peak_matcher_bytes: usize,
    /// Most candidates queued awaiting ancestor resolution at once.
    pub peak_buffered_answers: usize,
    /// Most captured answer nodes held at once (queued + in capture).
    pub peak_buffered_answer_nodes: u64,
    /// The event reader's buffer high-water mark in bytes.
    pub reader_buffer_high_water: usize,
    /// Total bytes consumed from the source.
    pub bytes_read: u64,
}

impl StreamStats {
    /// Total peak resident state: matcher plus reader buffer.
    pub fn peak_state_bytes(&self) -> usize {
        self.peak_matcher_bytes + self.reader_buffer_high_water
    }
}

/// One pattern node this open element is still a viable match for.
struct Tracked {
    node: u16,
    /// Bit `m` set ⇔ the subset `m` of the node's child conditions is
    /// coverable by distinct already-closed children.
    reach: u64,
}

/// Pick-path bookkeeping on an ancestor frame (present iff the frame is
/// a viable match for its depth's path node).
struct PickState {
    /// The node's child conditions minus the on-path child.
    filters: Mask,
    /// Closed children by class (mask of filters each satisfies alone);
    /// class-0 children are not stored.
    counts: Vec<(Mask, u32)>,
    /// Candidates below the currently open chain child whose filters
    /// here are not yet satisfied.
    watchers: Vec<u64>,
    /// Unresolved candidates from already-closed chain children, grouped
    /// by the chain child's class (which must be excluded from the Hall
    /// check — the chain child cannot double as a filter witness).
    pending: Vec<(Mask, Vec<u64>)>,
}

struct Frame {
    text: Option<String>,
    tracked: Vec<Tracked>,
    pick: Option<PickState>,
}

/// A picked element whose ancestor filter obligations may be open.
struct Candidate {
    elem: Option<Element>,
    remaining: u32,
    dead: bool,
    nodes: u64,
}

/// A capture-in-progress node (subtree of a potential pick element).
struct Builder {
    name: Name,
    children: Vec<Element>,
}

/// Hall's condition: can every nonempty `U ⊆ filters` be covered by
/// `|U|` distinct counted children whose class meets `U`? `excl` (when
/// nonzero) reserves one child of exactly that class for the on-path
/// descent.
fn hall(filters: Mask, counts: &[(Mask, u32)], excl: Mask) -> bool {
    let mut u = filters;
    while u != 0 {
        let mut have: u64 = 0;
        for &(c, n) in counts {
            if c & u != 0 {
                have += u64::from(n);
            }
        }
        if excl & u != 0 {
            have = have.saturating_sub(1);
        }
        if have < u64::from(u.count_ones()) {
            return false;
        }
        u = (u - 1) & filters;
    }
    true
}

/// Folds a closed child of class `s` into a reach bitset: from every
/// coverable subset `m`, each single condition `b ∈ s \ m` extends the
/// cover to `m ∪ {b}` (the child serves exactly one condition).
fn expand(reach: u64, s: Mask) -> u64 {
    let mut out = reach;
    let mut ms = reach;
    while ms != 0 {
        let m = ms.trailing_zeros() as u64;
        ms &= ms - 1;
        let mut bits = u64::from(s) & !m;
        while bits != 0 {
            let b = bits & bits.wrapping_neg();
            out |= 1u64 << (m | b);
            bits &= bits - 1;
        }
    }
    out
}

struct Matcher<'q, F: FnMut(Element)> {
    cq: &'q CompiledQuery,
    frames: Vec<Frame>,
    queue: VecDeque<Candidate>,
    first_id: u64,
    builders: Vec<Builder>,
    capture_count: u64,
    buffered_nodes: u64,
    emit: F,
    stats: StreamStats,
}

impl<'q, F: FnMut(Element)> Matcher<'q, F> {
    fn new(cq: &'q CompiledQuery, emit: F) -> Self {
        Matcher {
            cq,
            frames: Vec::new(),
            queue: VecDeque::new(),
            first_id: 0,
            builders: Vec::new(),
            capture_count: 0,
            buffered_nodes: 0,
            emit,
            stats: StreamStats::default(),
        }
    }

    fn open(&mut self, name: Name) {
        let depth = self.frames.len();
        let mut tracked = Vec::new();
        if depth == 0 {
            if self.cq.admits(self.cq.pick_path[0], name) {
                tracked.push(Tracked {
                    node: self.cq.pick_path[0],
                    reach: 1,
                });
            }
        } else {
            let parent = self.frames.last().expect("depth > 0");
            for t in &parent.tracked {
                if let PKind::Children(kids) = &self.cq.nodes[t.node as usize].kind {
                    for &kid in kids {
                        if self.cq.admits(kid, name) {
                            tracked.push(Tracked {
                                node: kid,
                                reach: 1,
                            });
                        }
                    }
                }
            }
        }

        if !self.builders.is_empty() {
            // inside a capture: every opened element becomes a node
            self.builders.push(Builder {
                name,
                children: Vec::new(),
            });
            self.capture_count += 1;
        } else if depth == self.cq.pick_depth()
            && tracked.iter().any(|t| t.node == self.cq.pick_node())
        {
            // a potential pick element: start capturing its subtree
            self.builders.push(Builder {
                name,
                children: Vec::new(),
            });
            self.capture_count = 1;
        }

        let pick = if depth < self.cq.pick_depth()
            && tracked.iter().any(|t| t.node == self.cq.pick_path[depth])
        {
            Some(PickState {
                filters: self.cq.filters[depth],
                counts: Vec::new(),
                watchers: Vec::new(),
                pending: Vec::new(),
            })
        } else {
            None
        };

        self.frames.push(Frame {
            text: None,
            tracked,
            pick,
        });
        self.stats.max_depth = self.stats.max_depth.max(depth + 1);
    }

    fn text(&mut self, t: String) {
        let f = self.frames.last_mut().expect("text inside an element");
        // only keep the text when someone can observe it: a tracked
        // text condition, or an active capture
        let needed = !self.builders.is_empty()
            || f.tracked
                .iter()
                .any(|tr| matches!(self.cq.nodes[tr.node as usize].kind, PKind::Text(_)));
        if needed {
            f.text = Some(t);
        }
    }

    fn close(&mut self, name: Name) {
        let f = self.frames.pop().expect("close matches an open");
        let f_depth = self.frames.len();

        // 1. which tracked nodes does the closing element satisfy alone?
        let sats: Vec<bool> = f
            .tracked
            .iter()
            .map(|t| match &self.cq.nodes[t.node as usize].kind {
                PKind::Text(s) => f.text.as_deref() == Some(s.as_str()),
                PKind::Children(_) => {
                    (t.reach >> self.cq.nodes[t.node as usize].full_mask()) & 1 == 1
                }
            })
            .collect();

        // 2. finish this element's capture node, if capturing
        let mut finished: Option<Element> = None;
        if let Some(b) = self.builders.pop() {
            debug_assert_eq!(b.name, name);
            let content = match &f.text {
                Some(t) => Content::Text(t.clone()),
                None => Content::Elements(b.children),
            };
            let elem = Element {
                name: b.name,
                id: ElemId::fresh(),
                content,
            };
            match self.builders.last_mut() {
                Some(parent) => parent.children.push(elem),
                None => finished = Some(elem),
            }
        }

        // 3. obligations owed to this frame die with it
        if let Some(ps) = &f.pick {
            for (_, ids) in &ps.pending {
                for &id in ids {
                    self.kill(id);
                }
            }
            for &id in &ps.watchers {
                self.kill(id);
            }
        }

        // 4. the element's class per parent-tracked node: which of the
        // parent node's child conditions it satisfies alone
        let mut classes: Vec<(u16, Mask)> = Vec::new();
        for (t, &s) in f.tracked.iter().zip(&sats) {
            if !s {
                continue;
            }
            if let Some((pn, bit)) = self.cq.nodes[t.node as usize].parent {
                match classes.iter_mut().find(|(p, _)| *p == pn) {
                    Some((_, m)) => *m |= 1 << bit,
                    None => classes.push((pn, 1 << bit)),
                }
            }
        }
        let class_of = |pn: u16| {
            classes
                .iter()
                .find(|(p, _)| *p == pn)
                .map(|&(_, m)| m)
                .unwrap_or(0)
        };

        // 5. a satisfied pick element becomes a candidate; ancestor
        // levels whose filters are not yet met (checked against counts
        // of *closed* children only — sound, since the open chain
        // ancestors are not counted) become obligations
        let pick_node = self.cq.pick_node();
        let picked = f_depth == self.cq.pick_depth()
            && f.tracked
                .iter()
                .zip(&sats)
                .any(|(t, &s)| t.node == pick_node && s);
        if picked {
            let elem = finished.take().expect("pick close completes a capture");
            let id = self.first_id + self.queue.len() as u64;
            let mut remaining = 0u32;
            for j in 0..f_depth {
                let on_path_class = if j + 1 == f_depth {
                    // parent level: the chain child is the pick element
                    // itself, closing right now (counted in step 6)
                    Some(class_of(self.cq.pick_path[j]))
                } else {
                    None
                };
                let ps = self.frames[j]
                    .pick
                    .as_mut()
                    .expect("pick descent implies path tracking");
                if ps.filters == 0 || hall(ps.filters, &ps.counts, 0) {
                    continue;
                }
                remaining += 1;
                match on_path_class {
                    Some(ce) => {
                        let ce = ce & ps.filters;
                        match ps.pending.iter_mut().find(|(c, _)| *c == ce) {
                            Some((_, ids)) => ids.push(id),
                            None => ps.pending.push((ce, vec![id])),
                        }
                    }
                    None => ps.watchers.push(id),
                }
            }
            self.queue.push_back(Candidate {
                elem: Some(elem),
                remaining,
                dead: false,
                nodes: self.capture_count,
            });
            self.buffered_nodes += self.capture_count;
            self.capture_count = 0;
        } else if finished.is_some() {
            // captured, but the element did not satisfy the pick node
            self.capture_count = 0;
        }

        // 6. fold the closed child into its parent's state
        let mut resolved: Vec<u64> = Vec::new();
        if let Some(pf) = self.frames.last_mut() {
            for t in &mut pf.tracked {
                let s = class_of(t.node);
                if s != 0 {
                    t.reach = expand(t.reach, s);
                }
            }
            if let Some(ps) = &mut pf.pick {
                let ce = class_of(self.cq.pick_path[f_depth - 1]) & ps.filters;
                if ce != 0 {
                    match ps.counts.iter_mut().find(|(c, _)| *c == ce) {
                        Some((_, n)) => *n += 1,
                        None => ps.counts.push((ce, 1)),
                    }
                }
                // candidates below this child were watching: the chain
                // child has now closed, so their Hall checks must
                // reserve a child of its class from here on
                if !ps.watchers.is_empty() {
                    let ids = std::mem::take(&mut ps.watchers);
                    match ps.pending.iter_mut().find(|(c, _)| *c == ce) {
                        Some((_, v)) => v.extend(ids),
                        None => ps.pending.push((ce, ids)),
                    }
                }
                // counts changed (or new pending arrived): re-check
                ps.pending.retain(|(c, ids)| {
                    if hall(ps.filters, &ps.counts, *c) {
                        resolved.extend_from_slice(ids);
                        false
                    } else {
                        true
                    }
                });
            }
        }
        for id in resolved {
            self.resolve(id);
        }

        // 7. emit every resolved candidate at the queue front, in
        // document order
        self.drain();
    }

    fn resolve(&mut self, id: u64) {
        // ids below first_id were already drained (dead candidates can
        // leave stale references in upper ancestors' pending lists)
        if id < self.first_id {
            return;
        }
        let idx = (id - self.first_id) as usize;
        let c = &mut self.queue[idx];
        if !c.dead {
            c.remaining -= 1;
        }
    }

    fn kill(&mut self, id: u64) {
        if id < self.first_id {
            return;
        }
        let idx = (id - self.first_id) as usize;
        self.queue[idx].dead = true;
    }

    fn drain(&mut self) {
        while let Some(front) = self.queue.front() {
            if !front.dead && front.remaining > 0 {
                break;
            }
            let mut c = self.queue.pop_front().expect("front exists");
            self.first_id += 1;
            self.buffered_nodes -= c.nodes;
            if !c.dead {
                self.stats.answers += 1;
                (self.emit)(c.elem.take().expect("alive candidates hold their element"));
            }
        }
    }

    /// Estimates live state and records high-water marks. `O(depth)`
    /// per event.
    fn note_state(&mut self) {
        let mut b = self.queue.len() * size_of::<Candidate>()
            + self.buffered_nodes as usize * size_of::<Element>()
            + self.builders.len() * size_of::<Builder>()
            + self.capture_count as usize * size_of::<Element>();
        for f in &self.frames {
            b += size_of::<Frame>()
                + f.tracked.len() * size_of::<Tracked>()
                + f.text.as_ref().map_or(0, |t| t.len());
            if let Some(ps) = &f.pick {
                b += ps.counts.len() * size_of::<(Mask, u32)>()
                    + ps.watchers.len() * size_of::<u64>()
                    + ps.pending
                        .iter()
                        .map(|(_, v)| size_of::<(Mask, Vec<u64>)>() + v.len() * size_of::<u64>())
                        .sum::<usize>();
            }
        }
        self.stats.peak_matcher_bytes = self.stats.peak_matcher_bytes.max(b);
        self.stats.peak_buffered_answers = self.stats.peak_buffered_answers.max(self.queue.len());
        self.stats.peak_buffered_answer_nodes = self
            .stats
            .peak_buffered_answer_nodes
            .max(self.buffered_nodes + self.capture_count);
    }
}

/// Evaluates `cq` over the XML document read from `src`, invoking `emit`
/// for each answer element in document order. Answer elements carry
/// fresh auto IDs, exactly like the in-memory evaluator's deep clones.
pub fn stream_eval<R: Read>(
    src: R,
    cq: &CompiledQuery,
    emit: impl FnMut(Element),
) -> Result<StreamStats, StreamError> {
    let mut reader = EventReader::new(src);
    let mut m = Matcher::new(cq, emit);
    loop {
        match reader.next_event()? {
            XmlEvent::Open { name, .. } => {
                m.stats.events += 1;
                m.stats.elements += 1;
                m.open(name);
            }
            XmlEvent::Text(t) => {
                m.stats.events += 1;
                m.text(t);
            }
            XmlEvent::Close { name } => {
                m.stats.events += 1;
                m.close(name);
            }
            XmlEvent::Eof => break,
        }
        m.note_state();
    }
    debug_assert!(m.queue.is_empty(), "root close settles every candidate");
    let mut stats = m.stats;
    stats.reader_buffer_high_water = reader.buffer_high_water();
    stats.bytes_read = reader.bytes_read();
    Ok(stats)
}

/// Streams `src` and materializes the answer document (root named after
/// the query's view). Byte-compatible with `mix_xmas::evaluate` for
/// queries in the supported fragment.
pub fn stream_answer<R: Read>(
    src: R,
    cq: &CompiledQuery,
) -> Result<(Document, StreamStats), StreamError> {
    let mut members = Vec::new();
    let stats = stream_eval(src, cq, |e| members.push(e))?;
    let doc = Document::new(Element {
        name: cq.view_name,
        id: ElemId::fresh(),
        content: Content::Elements(members),
    });
    Ok((doc, stats))
}

/// Streams `src` and serializes the answer document incrementally into
/// `out`, without ever materializing it. The bytes written are identical
/// to `mix_xml::write_document` applied to [`stream_answer`]'s document.
pub fn stream_answer_to<R: Read, W: Write>(
    src: R,
    cq: &CompiledQuery,
    cfg: WriteConfig,
    out: &mut W,
) -> Result<StreamStats, StreamError> {
    let view = cq.view_name;
    let mut started = false;
    let mut io_err: Option<io::Error> = None;
    {
        let sink = &mut *out;
        let stats = stream_eval(src, cq, |e| {
            if io_err.is_some() {
                return;
            }
            let r = (|| -> io::Result<()> {
                if !started {
                    write!(sink, "<{view}>")?;
                    if cfg.indent.is_some() {
                        sink.write_all(b"\n")?;
                    }
                    started = true;
                }
                write_element_at(&e, cfg, 1, sink)
            })();
            if let Err(e) = r {
                io_err = Some(e);
            }
        })?;
        if let Some(e) = io_err {
            return Err(StreamError::Io(e));
        }
        if started {
            write!(sink, "</{view}>")?;
        } else {
            write!(sink, "<{view}/>")?;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledQuery;
    use mix_xmas::{evaluate, parse_query};
    use mix_xml::{parse_document, write_document};

    /// Streaming must agree with the in-memory evaluator byte-for-byte,
    /// and the incremental serializer with the materialized one.
    fn check(query: &str, doc: &str) -> StreamStats {
        let q = parse_query(query).unwrap();
        let cq = CompiledQuery::compile(&q, None).unwrap();
        let parsed = parse_document(doc).unwrap();
        let cfg = WriteConfig::default();
        let expect = write_document(&evaluate(&q, &parsed), cfg);

        let (got, stats) = stream_answer(doc.as_bytes(), &cq).unwrap();
        assert_eq!(write_document(&got, cfg), expect, "query: {query}");

        let mut buf = Vec::new();
        stream_answer_to(doc.as_bytes(), &cq, cfg, &mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            expect,
            "incremental serializer"
        );

        let compact = WriteConfig {
            indent: None,
            write_ids: true,
        };
        let mut buf = Vec::new();
        stream_answer_to(doc.as_bytes(), &cq, compact, &mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            write_document(&evaluate(&q, &parsed), compact),
            "compact incremental serializer"
        );
        stats
    }

    const DEPT: &str = "<department><name>CS</name>\
        <professor id='p1'><firstName>Yannis</firstName>\
          <publication id='pub1'><title>a</title></publication>\
          <publication id='pub2'><title>b</title></publication>\
          <teaches/></professor>\
        <professor id='p2'><firstName>Victor</firstName><teaches/></professor>\
        <gradStudent id='g1'><publication id='pub3'><title>c</title></publication></gradStudent>\
        <course id='c1'><title>db</title></course></department>";

    #[test]
    fn pick_depth_one() {
        let s = check("v = SELECT P WHERE <department> P:<professor/> </>", DEPT);
        assert_eq!(s.answers, 2);
    }

    #[test]
    fn pick_root() {
        check(
            "v = SELECT D WHERE D:<department> <name>CS</name> </>",
            DEPT,
        );
        check(
            "v = SELECT D WHERE D:<department> <name>EE</name> </>",
            DEPT,
        );
    }

    #[test]
    fn text_condition_filters() {
        check(
            "v = SELECT P WHERE <department> <name>CS</name> P:<professor/> </>",
            DEPT,
        );
        check(
            "v = SELECT P WHERE <department> <name>EE</name> P:<professor/> </>",
            DEPT,
        );
    }

    #[test]
    fn filter_resolves_after_pick() {
        // the course closes after both professors: every professor is a
        // candidate first, resolved only at the course's close
        let s = check(
            "v = SELECT P WHERE <department> P:<professor/> <course/> </>",
            DEPT,
        );
        assert_eq!(s.answers, 2);
        assert!(s.peak_buffered_answers >= 2, "candidates must queue");
    }

    #[test]
    fn filter_never_resolves() {
        let s = check(
            "v = SELECT P WHERE <department> P:<professor/> <seminar/> </>",
            DEPT,
        );
        assert_eq!(s.answers, 0);
    }

    #[test]
    fn deep_pick_with_upper_filter() {
        // pick at depth 2, filter at depth 1 (same level as the chain
        // child) and a text filter inside the pick's parent
        check(
            "v = SELECT T WHERE <department> <professor> T:<publication/> <teaches/> </> </>",
            DEPT,
        );
        check(
            "v = SELECT T WHERE <department> <professor> T:<publication/> \
               <firstName>Yannis</firstName> </> </>",
            DEPT,
        );
        check(
            "v = SELECT T WHERE <department> <professor> T:<publication/> \
               <firstName>Nobody</firstName> </> </>",
            DEPT,
        );
    }

    #[test]
    fn distinct_children_hall_condition() {
        // two <publication/> conditions need two distinct publications:
        // p1 qualifies, g1 (one publication) does not
        let s = check(
            "v = SELECT P WHERE <department> \
               P:<professor | gradStudent> <publication/> <publication/> </> </>",
            DEPT,
        );
        assert_eq!(s.answers, 1);
    }

    #[test]
    fn chain_child_cannot_double_as_filter_witness() {
        // department needs a professor-with-publication (the descent)
        // AND a separate professor: p2 exists, so p1 qualifies — but in
        // a document with only p1, the same element would have to serve
        // both roles, which injectivity forbids
        let q = "v = SELECT T WHERE <department> <professor> T:<publication/> </> \
                   <professor/> </>";
        check(q, DEPT);
        let one_prof = "<department>\
            <professor id='p1'><publication id='pub1'><title>a</title></publication></professor>\
            </department>";
        let s = check(q, one_prof);
        assert_eq!(
            s.answers, 0,
            "single element cannot serve two sibling conditions"
        );
    }

    #[test]
    fn disjunctive_name_tests() {
        let s = check(
            "v = SELECT X WHERE <department> X:<professor | gradStudent> <publication/> </> </>",
            DEPT,
        );
        assert_eq!(s.answers, 2);
    }

    #[test]
    fn wildcard_pick() {
        check(
            "v = SELECT X WHERE <department> <professor> X:<*/> </> </>",
            DEPT,
        );
    }

    #[test]
    fn nested_filter_subtrees() {
        // the filter itself is a tree: a gradStudent with a publication
        // whose title is exact text
        check(
            "v = SELECT P WHERE <department> P:<professor/> \
               <gradStudent> <publication> <title>c</title> </> </> </>",
            DEPT,
        );
        check(
            "v = SELECT P WHERE <department> P:<professor/> \
               <gradStudent> <publication> <title>zzz</title> </> </> </>",
            DEPT,
        );
    }

    #[test]
    fn empty_answer_serializes_as_self_closing_root() {
        let q = parse_query("v = SELECT P WHERE <department> P:<nosuch/> </>").unwrap();
        let cq = CompiledQuery::compile(&q, None).unwrap();
        let mut buf = Vec::new();
        stream_answer_to(DEPT.as_bytes(), &cq, WriteConfig::default(), &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "<v/>");
    }

    #[test]
    fn answers_are_emitted_in_document_order() {
        let q = parse_query("v = SELECT X WHERE <department> X:<professor | gradStudent/> </>")
            .unwrap();
        let cq = CompiledQuery::compile(&q, None).unwrap();
        let mut order = Vec::new();
        stream_eval(DEPT.as_bytes(), &cq, |e| order.push(e.name.as_str())).unwrap();
        assert_eq!(order, ["professor", "professor", "gradStudent"]);
    }

    #[test]
    fn state_stays_bounded_on_wide_documents() {
        // 10k siblings; matcher state must track depth, not width
        let mut doc = String::from("<department>");
        for i in 0..10_000 {
            doc.push_str(&format!("<professor id='p{i}'><teaches/></professor>"));
        }
        doc.push_str("<course/></department>");
        let q = parse_query(
            "v = SELECT T WHERE <department> <professor> T:<teaches/> </> <course/> </>",
        )
        .unwrap();
        let cq = CompiledQuery::compile(&q, None).unwrap();
        let mut n = 0u64;
        let stats = stream_eval(doc.as_bytes(), &cq, |_| n += 1).unwrap();
        assert_eq!(n, 10_000);
        // every candidate waits for the trailing <course/>, so the queue
        // is large — but per-frame matcher state is tiny
        assert_eq!(stats.peak_buffered_answers, 10_000);
        let queued = stats.peak_buffered_answers * size_of::<Candidate>()
            + stats.peak_buffered_answer_nodes as usize * size_of::<Element>();
        // slack covers per-frame state plus one pending id per waiting
        // candidate on the ancestor's resolution list
        assert!(
            stats.peak_matcher_bytes < queued + 256 * 1024,
            "non-queue state should be small: {} vs queued {}",
            stats.peak_matcher_bytes,
            queued
        );
    }

    #[test]
    fn streaming_rejects_malformed_documents() {
        let q = parse_query("v = SELECT P WHERE <a> P:<b/> </>").unwrap();
        let cq = CompiledQuery::compile(&q, None).unwrap();
        assert!(stream_answer("<a><b></a>".as_bytes(), &cq).is_err());
        assert!(stream_answer("<a/><a/>".as_bytes(), &cq).is_err());
    }
}
