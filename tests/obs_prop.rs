//! Property suites for the mix-obs instrument substrate: the log₂
//! histogram must agree *exactly* with a brute-force recomputation from
//! the raw observations, snapshots must survive their own JSON encoding,
//! merging must be equivalent to observing everything in one registry —
//! and none of it may lose counts under thread contention.

use mix::obs::hist::{bucket_index, bucket_le};
use mix::obs::{HistSnapshot, Registry, Snapshot};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Observation values spanning every bucket regime: the 0 bucket, the
/// exact power-of-two boundaries, mid-range, huge, and the +Inf overflow
/// bucket.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => 0u64..16,
        3 => 16u64..4096,
        2 => 4096u64..(1u64 << 32),
        1 => (1u64 << 62)..=(u64::MAX - 1),
        1 => Just(u64::MAX),
        1 => prop::sample::select(vec![1u64, 2, 3, 4, 1023, 1024, 1025]),
    ]
}

/// The histogram a sequence of observations *must* produce, recomputed
/// from first principles (sorted values, explicit bucket map).
fn expected_hist(values: &[u64]) -> HistSnapshot {
    let mut by_le: BTreeMap<u64, u64> = BTreeMap::new();
    let mut sum = 0u64;
    for &v in values {
        *by_le.entry(bucket_le(bucket_index(v))).or_insert(0) += 1;
        sum = sum.wrapping_add(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = values.len() as u64;
    let rank = |q: f64| ((q * n as f64).ceil() as u64).clamp(1, n) as usize - 1;
    HistSnapshot {
        buckets: by_le.into_iter().collect(),
        count: n,
        sum,
        p50: bucket_le(bucket_index(sorted[rank(0.50)])),
        p95: bucket_le(bucket_index(sorted[rank(0.95)])),
        p99: bucket_le(bucket_index(sorted[rank(0.99)])),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Buckets, count, sum, and all three quantiles are exact — not
    /// approximately right, *equal* — to the brute-force recomputation.
    #[test]
    fn histogram_matches_brute_force(values in prop::collection::vec(arb_value(), 1..200)) {
        let r = Registry::new();
        let h = r.histogram("latency_ns");
        for &v in &values {
            h.observe(v);
        }
        let got = &r.snapshot().histograms["latency_ns"];
        prop_assert_eq!(got, &expected_hist(&values));
    }

    /// `to_json ∘ from_json` is the identity: the snapshot survives its
    /// own wire encoding value-for-value and byte-for-byte.
    #[test]
    fn snapshot_json_roundtrips(values in prop::collection::vec(arb_value(), 1..60)) {
        let r = Registry::new();
        r.counter("c_total").add(values.len() as u64);
        r.gauge("g").set(values.len() as i64 - 30);
        let h = r.histogram("h_ns");
        for &v in &values {
            h.observe(v);
        }
        r.event("kind", "detail with \"quotes\" and\nnewlines");
        let snap = r.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("own encoding parses");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.to_json(), json);
    }

    /// Observing a sequence split across two registries and merging the
    /// snapshots is the same as observing it all in one registry.
    #[test]
    fn merge_is_equivalent_to_one_registry(
        values in prop::collection::vec(arb_value(), 2..120),
        split in 1usize..100,
    ) {
        let cut = split % (values.len() - 1) + 1;
        let (left, right) = values.split_at(cut);
        let (ra, rb, rall) = (Registry::new(), Registry::new(), Registry::new());
        for (reg, part) in [(&ra, left), (&rb, right)] {
            let h = reg.histogram("h_ns");
            for &v in part {
                h.observe(v);
                reg.counter("seen_total").inc();
            }
        }
        let hall = rall.histogram("h_ns");
        for &v in &values {
            hall.observe(v);
            rall.counter("seen_total").inc();
        }
        let merged = ra.snapshot().merge(&rb.snapshot());
        prop_assert_eq!(&merged.histograms["h_ns"], &rall.snapshot().histograms["h_ns"]);
        prop_assert_eq!(merged.counters["seen_total"], rall.snapshot().counters["seen_total"]);
    }
}

/// Eight threads hammering the same counter, gauge, and histogram never
/// lose a single count: the atomics are relaxed but complete.
#[test]
fn eight_thread_hammer_loses_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let r = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let r = &r;
            scope.spawn(move || {
                let c = r.counter("hits_total");
                let g = r.gauge("level");
                let h = r.histogram("work_ns");
                for i in 0..PER_THREAD {
                    c.inc();
                    g.add(1);
                    // a value per bucket regime, deterministic per thread
                    h.observe((t as u64 + 1) << (i % 20));
                }
            });
        }
    });
    let snap = r.snapshot();
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.counters["hits_total"], total);
    assert_eq!(snap.gauges["level"], total as i64);
    let h = &snap.histograms["work_ns"];
    assert_eq!(h.count, total, "every observation landed in a bucket");
    let expected_sum: u64 = (0..THREADS as u64).fold(0u64, |acc, t| {
        (0..PER_THREAD).fold(acc, |acc, i| acc.wrapping_add((t + 1) << (i % 20)))
    });
    assert_eq!(h.sum, expected_sum);
    assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), total);
}
