//! View DTD inference for *union views* over several sources.
//!
//! The paper's introduction motivates mediators with "a view that unions
//! the structures exported by 100 sites, without having any information
//! about the contents and the structure of the data" — and then argues
//! that with DTDs the mediator can do better. This module is that
//! argument, executed: a union view concatenates the members of one
//! pick-element query per source (in source order), and its view DTD is
//! inferred from the per-source inferences:
//!
//! * the root type is the *concatenation* of the per-source list types;
//! * per-source specialized types are moved into disjoint tag spaces,
//!   then equivalent specializations are collapsed back (two sites with
//!   identical schemas contribute one set of definitions, two sites with
//!   *different* definitions for the same name keep distinct
//!   specializations — exactly what s-DTDs are for);
//! * merging to a plain DTD unions per-name definitions and signals the
//!   loss, as in Section 4.3.

use crate::cache::InferenceCache;
use crate::merge::{merge, Merged};
use crate::pipeline::{collapse_equivalent_with, infer_view_dtd, InferredView};
use crate::tighten::Verdict;
use mix_dtd::{ContentModel, Dtd, SDtd};
use mix_relang::ast::Regex;
use mix_relang::map_syms_cached;
use mix_relang::symbol::{Name, Sym};
use mix_xmas::{NormalizeError, Query};
use std::collections::HashMap;
use std::sync::Arc;

/// The inference result for a union view.
#[derive(Debug, Clone)]
pub struct InferredUnionView {
    /// The normalized per-source queries, in union order.
    pub queries: Vec<Query>,
    /// The tight specialized view DTD of the union.
    pub sdtd: SDtd,
    /// The merged plain view DTD.
    pub dtd: Dtd,
    /// Names whose definitions were merged (within or across sources).
    pub merged_names: Vec<Name>,
    /// Names that some sites use with PCDATA content and others with
    /// element content. The specialized DTD handles this (a name may have
    /// specializations of both kinds, Definition 3.10), but **no plain
    /// DTD in the paper's model can** — `dtd` is a best-effort
    /// over-approximation of the element side only and is *not sound* for
    /// these names. Consumers (e.g. the mediator's simplifier) must not
    /// reason with `dtd` when this is non-empty.
    pub kind_conflicts: Vec<Name>,
    /// The weakest per-part verdict (`Unsatisfiable` only if *every* part
    /// is; a single satisfiable part makes the union satisfiable).
    pub verdict: Verdict,
    /// The per-part slices of the root list type, in union order and over
    /// the *final* (post-collapse) tag space: the root type of `sdtd` is
    /// their concatenation. [`compose_union_views`] re-shuffles these when
    /// assembling a global view from per-shard inferences.
    pub part_list_types: Vec<Regex>,
}

/// Infers the view DTD of a union view: one `(query, source DTD)` pair
/// per source, members concatenated in this order.
pub fn infer_union_view_dtd(
    view_name: Name,
    parts: &[(&Query, &Dtd)],
) -> Result<InferredUnionView, NormalizeError> {
    infer_union_view_dtd_with(view_name, parts, &mut |q, d| {
        infer_view_dtd(q, d).map(Arc::new)
    })
}

/// [`infer_union_view_dtd`] with the per-part pipeline routed through a
/// shared [`InferenceCache`]: re-registering a union over sources whose
/// member inferences are already cached skips every per-part pipeline run.
pub fn infer_union_view_dtd_cached(
    view_name: Name,
    parts: &[(&Query, &Dtd)],
    cache: &InferenceCache,
) -> Result<InferredUnionView, NormalizeError> {
    infer_union_view_dtd_with(view_name, parts, &mut |q, d| cache.infer(q, d))
}

/// The per-part inference hook: the plain pipeline or a shared cache.
type PartInfer<'a> = dyn FnMut(&Query, &Dtd) -> Result<Arc<InferredView>, NormalizeError> + 'a;

fn infer_union_view_dtd_with(
    view_name: Name,
    parts: &[(&Query, &Dtd)],
    infer: &mut PartInfer<'_>,
) -> Result<InferredUnionView, NormalizeError> {
    let mut queries = Vec::new();
    let mut root_parts: Vec<Regex> = Vec::new();
    let mut combined = SDtd::new(view_name.untagged());
    combined
        .types
        .insert(view_name.untagged(), ContentModel::Elements(Regex::Epsilon));
    let mut verdict = Verdict::Unsatisfiable;
    // A disjoint tag space per part: tags are u32; parts are few and the
    // per-part tags small (collapse renumbers densely), so a fixed stride
    // is ample.
    const STRIDE: u32 = 1 << 16;
    for (i, (q, source)) in parts.iter().enumerate() {
        let iv = infer(q, source)?;
        verdict = verdict.max(iv.verdict);
        let offset = STRIDE * (i as u32 + 1);
        // move every sym of this part into its own tag space (untagged
        // included: definitions of the same name from different sources
        // must not collide)
        let retag = |s: Sym| s.name.tagged(offset + s.tag);
        root_parts.push(map_syms_cached(&iv.list_type, &mut |s| retag(s)));
        for (s, m) in iv.sdtd.types.iter() {
            if s == iv.sdtd.doc_type {
                continue; // the per-part root is replaced by the union root
            }
            let moved = match m {
                ContentModel::Pcdata => ContentModel::Pcdata,
                ContentModel::Elements(r) => {
                    ContentModel::Elements(map_syms_cached(r, &mut |x| retag(x)))
                }
            };
            combined.types.insert(retag(s), moved);
        }
        queries.push(iv.query.clone());
    }
    let root_type = Regex::concat(root_parts.clone());
    combined
        .types
        .insert(view_name.untagged(), ContentModel::Elements(root_type));
    // collapse equivalent specializations across parts (identical-schema
    // sites fold together) and renumber densely; the per-part root slices
    // are threaded through so they stay aligned with the collapsed tags
    let mut part_list_types = root_parts;
    let sdtd = collapse_equivalent_with(combined, &mut part_list_types);
    Ok(assemble_union(queries, sdtd, part_list_types, verdict))
}

/// The shared tail of union inference and composition: kind-conflict
/// detection and the merge to a plain DTD.
fn assemble_union(
    queries: Vec<Query>,
    sdtd: SDtd,
    part_list_types: Vec<Regex>,
    verdict: Verdict,
) -> InferredUnionView {
    // detect names used with PCDATA content by one site and element
    // content by another — inexpressible as one plain type
    let mut kinds: HashMap<Name, (bool, bool)> = HashMap::new();
    for (sym, m) in sdtd.types.iter() {
        let e = kinds.entry(sym.name).or_insert((false, false));
        match m {
            ContentModel::Pcdata => e.0 = true,
            ContentModel::Elements(_) => e.1 = true,
        }
    }
    let mut kind_conflicts: Vec<Name> = kinds
        .into_iter()
        .filter(|(_, (p, e))| *p && *e)
        .map(|(n, _)| n)
        .collect();
    // HashMap iteration order is arbitrary; sort so the warning list is
    // stable across runs and processes
    kind_conflicts.sort_by_key(|n| n.as_str());
    let Merged { dtd, merged_names } = merge(&sdtd);
    InferredUnionView {
        queries,
        sdtd,
        dtd,
        merged_names,
        kind_conflicts,
        verdict,
        part_list_types,
    }
}

/// Composes per-shard union-view inferences into the global union view —
/// the *Distributed XML Design* local/global typing obligation, executed.
/// Each shard inferred its members independently; the composition moves
/// every shard into a disjoint tag space, reassembles the global root by
/// concatenating the per-member list types in *global* member order, and
/// collapses equivalent specializations across shards. The result is
/// language-equivalent to running [`infer_union_view_dtd`] over all
/// members on a single node (the federation property test pins this).
///
/// `shards` pairs each shard's inference with the global positions of its
/// members (parallel to its `queries`); the concatenation of all position
/// slices must cover `0..total` exactly once.
pub fn compose_union_views(
    view_name: Name,
    shards: &[(&InferredUnionView, &[usize])],
) -> InferredUnionView {
    let total: usize = shards.iter().map(|(_, pos)| pos.len()).sum();
    let mut combined = SDtd::new(view_name.untagged());
    combined
        .types
        .insert(view_name.untagged(), ContentModel::Elements(Regex::Epsilon));
    let mut verdict = Verdict::Unsatisfiable;
    let mut slots: Vec<Option<(Regex, Query)>> = vec![None; total];
    const STRIDE: u32 = 1 << 16;
    for (i, (shard, positions)) in shards.iter().enumerate() {
        assert_eq!(
            positions.len(),
            shard.part_list_types.len(),
            "one global position per shard member"
        );
        verdict = verdict.max(shard.verdict);
        let offset = STRIDE * (i as u32 + 1);
        // a disjoint tag space per shard, untagged included — mirrors the
        // per-part retag of `infer_union_view_dtd` (shard tags are dense
        // and small after collapse, far below the stride)
        let retag = |s: Sym| s.name.tagged(offset + s.tag);
        for (s, m) in shard.sdtd.types.iter() {
            if s == shard.sdtd.doc_type {
                continue; // the shard root is replaced by the global root
            }
            let moved = match m {
                ContentModel::Pcdata => ContentModel::Pcdata,
                ContentModel::Elements(r) => {
                    ContentModel::Elements(map_syms_cached(r, &mut |x| retag(x)))
                }
            };
            combined.types.insert(retag(s), moved);
        }
        for (k, &gp) in positions.iter().enumerate() {
            let lt = map_syms_cached(&shard.part_list_types[k], &mut |s| retag(s));
            assert!(slots[gp].is_none(), "global position {gp} assigned twice");
            slots[gp] = Some((lt, shard.queries[k].clone()));
        }
    }
    let mut part_list_types = Vec::with_capacity(total);
    let mut queries = Vec::with_capacity(total);
    for (gp, slot) in slots.into_iter().enumerate() {
        let (lt, q) = slot.unwrap_or_else(|| panic!("global position {gp} unassigned"));
        part_list_types.push(lt);
        queries.push(q);
    }
    let root_type = Regex::concat(part_list_types.clone());
    combined
        .types
        .insert(view_name.untagged(), ContentModel::Elements(root_type));
    let sdtd = collapse_equivalent_with(combined, &mut part_list_types);
    assemble_union(queries, sdtd, part_list_types, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_dtd::parse_compact;
    use mix_relang::symbol::name;
    use mix_relang::{equivalent, parse_regex};
    use mix_xmas::paper::q3_publist;

    #[test]
    fn identical_sites_fold_together() {
        let d = d1_department();
        let q = q3_publist();
        let parts = vec![(&q, &d), (&q, &d), (&q, &d)];
        let u = infer_union_view_dtd(name("allPubs"), &parts).unwrap();
        // root: publication* three times — per-site order preserved
        let root = u.dtd.get(name("allPubs")).unwrap().regex().unwrap();
        assert!(
            equivalent(root, &parse_regex("publication*").unwrap()),
            "got {root}"
        );
        // the three identical publication definitions collapsed into one
        assert_eq!(u.sdtd.specializations(name("publication")).len(), 1);
        let p = u.dtd.get(name("publication")).unwrap().regex().unwrap();
        assert!(equivalent(
            p,
            &parse_regex("title, author+, journal").unwrap()
        ));
        assert!(u.dtd.undefined_names().is_empty());
    }

    #[test]
    fn heterogeneous_sites_keep_specializations() {
        // two "paper list" sites with different publication schemas
        let d_a = parse_compact(
            "{<site : publication*> <publication : title, year> \
              <title : PCDATA> <year : PCDATA>}",
        )
        .unwrap();
        let d_b = parse_compact(
            "{<site : publication*> <publication : title, venue, doi?> \
              <title : PCDATA> <venue : PCDATA> <doi : PCDATA>}",
        )
        .unwrap();
        let q =
            mix_xmas::parse_query("pubs = SELECT P WHERE <site> P:<publication/> </site>").unwrap();
        let u = infer_union_view_dtd(name("catalog"), &[(&q, &d_a), (&q, &d_b)]).unwrap();
        assert!(u.kind_conflicts.is_empty());
        // the s-DTD keeps the two publication shapes apart …
        assert_eq!(u.sdtd.specializations(name("publication")).len(), 2);
        // … and the union root lists site-A publications before site-B's
        let root = u
            .sdtd
            .get(name("catalog").untagged())
            .unwrap()
            .regex()
            .unwrap();
        let first_syms = root.syms_in_order();
        assert_eq!(first_syms.len(), 2);
        // the merged plain DTD had to union them and says so
        assert!(u.merged_names.contains(&name("publication")));
        let p = u.dtd.get(name("publication")).unwrap().regex().unwrap();
        assert!(equivalent(
            p,
            &parse_regex("(title, year) | (title, venue, doi?)").unwrap()
        ));
    }

    #[test]
    fn union_verdict_is_the_strongest_part() {
        let d = d1_department();
        let sat = q3_publist();
        let unsat =
            mix_xmas::parse_query("v = SELECT J WHERE <department> J:<journal/> </>").unwrap();
        let u = infer_union_view_dtd(name("u"), &[(&unsat, &d), (&sat, &d)]).unwrap();
        assert_eq!(u.verdict, Verdict::Satisfiable);
        let u = infer_union_view_dtd(name("u"), &[(&unsat, &d)]).unwrap();
        assert_eq!(u.verdict, Verdict::Unsatisfiable);
        // an unsatisfiable part contributes ε to the root type
        let root = u.dtd.get(name("u")).unwrap().regex().unwrap();
        assert_eq!(root, &Regex::Epsilon);
    }

    #[test]
    fn empty_union_is_empty() {
        let u = infer_union_view_dtd(name("nothing"), &[]).unwrap();
        let root = u.dtd.get(name("nothing")).unwrap().regex().unwrap();
        assert_eq!(root, &Regex::Epsilon);
        assert_eq!(u.verdict, Verdict::Unsatisfiable);
    }

    #[test]
    fn part_list_types_concatenate_to_the_root() {
        let d = d1_department();
        let q = q3_publist();
        let parts = vec![(&q, &d), (&q, &d)];
        let u = infer_union_view_dtd(name("allPubs"), &parts).unwrap();
        assert_eq!(u.part_list_types.len(), 2);
        let rebuilt = Regex::concat(u.part_list_types.clone());
        let root = u
            .sdtd
            .get(name("allPubs").untagged())
            .unwrap()
            .regex()
            .unwrap();
        assert!(equivalent(&rebuilt, root), "{rebuilt} vs {root}");
        // every sym a part slice mentions is defined in the collapsed s-DTD
        for lt in &u.part_list_types {
            for s in lt.syms() {
                assert!(u.sdtd.types.contains(s), "dangling {s}");
            }
        }
    }

    #[test]
    fn composed_shards_match_single_node_inference() {
        // global member order: [A, B, A, B]; shard 0 holds positions 0 and
        // 3, shard 1 holds 1 and 2 — an interleaved assignment, as a hash
        // ring would produce
        let d_a = parse_compact(
            "{<site : publication*> <publication : title, year> \
              <title : PCDATA> <year : PCDATA>}",
        )
        .unwrap();
        let d_b = parse_compact(
            "{<site : publication*> <publication : title, venue> \
              <title : PCDATA> <venue : PCDATA>}",
        )
        .unwrap();
        let q =
            mix_xmas::parse_query("pubs = SELECT P WHERE <site> P:<publication/> </site>").unwrap();
        let global = infer_union_view_dtd(
            name("cat"),
            &[(&q, &d_a), (&q, &d_b), (&q, &d_a), (&q, &d_b)],
        )
        .unwrap();
        let s0 = infer_union_view_dtd(name("cat"), &[(&q, &d_a), (&q, &d_b)]).unwrap();
        let s1 = infer_union_view_dtd(name("cat"), &[(&q, &d_b), (&q, &d_a)]).unwrap();
        let composed = compose_union_views(
            name("cat"),
            &[(&s0, &[0usize, 3][..]), (&s1, &[1usize, 2][..])],
        );
        assert_eq!(composed.verdict, global.verdict);
        assert_eq!(composed.kind_conflicts, global.kind_conflicts);
        let names_of = |d: &Dtd| {
            let mut v: Vec<&str> = d.types.keys().map(|n| n.as_str()).collect();
            v.sort();
            v
        };
        assert_eq!(names_of(&composed.dtd), names_of(&global.dtd));
        for n in composed.dtd.types.keys() {
            let (a, b) = (composed.dtd.get(n).unwrap(), global.dtd.get(n).unwrap());
            match (a, b) {
                (ContentModel::Pcdata, ContentModel::Pcdata) => {}
                (ContentModel::Elements(ra), ContentModel::Elements(rb)) => {
                    assert!(equivalent(ra, rb), "{n}: {ra} vs {rb}");
                }
                _ => panic!("{n}: kind mismatch"),
            }
        }
        // the identical A-shapes folded across shards, as on a single node
        assert_eq!(
            composed.sdtd.specializations(name("publication")).len(),
            global.sdtd.specializations(name("publication")).len()
        );
    }
}

#[cfg(test)]
mod kind_conflict_tests {
    use super::*;
    use mix_dtd::parse_compact;
    use mix_dtd::sdtd::sdtd_satisfies;
    use mix_relang::symbol::name;
    use mix_xml::parse_document;

    #[test]
    fn mixed_kind_unions_are_flagged_and_sdtd_stays_sound() {
        // site A: <item>text</item>; site B: <item><part/></item>
        let d_a = parse_compact("{<site : item*> <item : PCDATA>}").unwrap();
        let d_b = parse_compact("{<site : item*> <item : part?> <part : EMPTY>}").unwrap();
        let q = mix_xmas::parse_query("items = SELECT P WHERE <site> P:<item/> </site>").unwrap();
        let u = infer_union_view_dtd(name("all"), &[(&q, &d_a), (&q, &d_b)]).unwrap();
        assert_eq!(u.kind_conflicts, vec![name("item")]);
        // the specialized DTD accepts a union document with both shapes …
        let doc = parse_document("<all><item>text</item><item><part/></item></all>").unwrap();
        assert!(sdtd_satisfies(&u.sdtd, &doc));
        // … and still rejects shape-swapped members
        let swapped = parse_document("<all><item><part/></item><item>text</item></all>").unwrap();
        assert!(!sdtd_satisfies(&u.sdtd, &swapped));
    }
}
