//! Point-in-time exports of a registry: plain data, two expositions.
//!
//! A [`Snapshot`] is what crosses process boundaries — the `Msg::Stats`
//! reply, the `--metrics-file` dump, the `serve --bench` report. It owns
//! no atomics; everything is ordinary sorted maps and vectors, so it
//! can be merged ([`Snapshot::merge`] sums instruments and concatenates
//! spans/events — used to serve one view over a mediator's registry plus
//! the process-wide [`crate::global`] one), diffed in tests, and encoded.
//!
//! Two encodings, both deterministic:
//!
//! * **JSON** ([`Snapshot::to_json`] / [`Snapshot::from_json`]): compact,
//!   keys sorted, integers exact up to `u64::MAX`. The encoding is the
//!   *schema*: `to_json ∘ from_json` is the identity on canonical text,
//!   which CI asserts as the stability guard.
//! * **Prometheus-style text** ([`Snapshot::to_prometheus`]): counters
//!   and gauges as samples with `# TYPE` comments, histograms as
//!   cumulative `_bucket{le="…"}` series plus `_sum`/`_count` and
//!   derived `_p50`/`_p95`/`_p99` gauges. Spans and events don't fit the
//!   sample model and appear only as summary comments (use JSON for
//!   them). Metric names may carry their own label set
//!   (`fetch{source="a"}`); suffixes and the `le` label are spliced
//!   inside the braces.
//!
//! Snapshots are not atomic across instruments — counters are read one
//! by one while writers proceed. Within one histogram, `count` is
//! derived from the bucket counts so quantiles are always consistent
//! with it.

use crate::hist::quantile_from_buckets;
use crate::json::{self, Json};
use std::collections::BTreeMap;

/// A point-in-time view of one (or several merged) registries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counts by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous levels by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Latency/size distributions by metric name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Spans currently retained in the ring, ordered by start time.
    pub spans: Vec<SpanSnapshot>,
    /// Events currently retained, in arrival order.
    pub events: Vec<EventSnapshot>,
}

/// One histogram's state: sparse buckets and derived statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSnapshot {
    /// `(inclusive upper bound, count)` for each non-empty bucket,
    /// ascending; `u64::MAX` is the overflow (+Inf) bucket.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations (sum of bucket counts).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Median (bucket upper bound containing the ⌈0.50·count⌉-th value).
    pub p50: u64,
    /// 95th percentile, same definition.
    pub p95: u64,
    /// 99th percentile, same definition.
    pub p99: u64,
}

impl HistSnapshot {
    /// Builds a snapshot from sparse buckets, deriving count and
    /// quantiles.
    pub fn from_parts(buckets: Vec<(u64, u64)>, sum: u64) -> HistSnapshot {
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistSnapshot {
            p50: quantile_from_buckets(&buckets, count, 0.50),
            p95: quantile_from_buckets(&buckets, count, 0.95),
            p99: quantile_from_buckets(&buckets, count, 0.99),
            buckets,
            count,
            sum,
        }
    }

    /// The combined distribution (bucket-wise sum, quantiles rederived).
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut by_le: BTreeMap<u64, u64> = BTreeMap::new();
        for &(le, n) in self.buckets.iter().chain(&other.buckets) {
            *by_le.entry(le).or_insert(0) += n;
        }
        HistSnapshot::from_parts(
            by_le.into_iter().collect(),
            self.sum.wrapping_add(other.sum),
        )
    }
}

/// One timed pipeline step of one request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// The request's trace id (0 = untraced).
    pub trace: u64,
    /// Interned stage name, e.g. `query` or `fetch/site0`.
    pub stage: String,
    /// Start, in registry-clock nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// One rare, timestamped occurrence (e.g. a breaker transition).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventSnapshot {
    /// When, in registry-clock nanoseconds.
    pub at_ns: u64,
    /// Stable machine-readable kind, e.g. `breaker-open`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

fn uint(v: u64) -> Json {
    Json::Int(v as i128)
}

impl Snapshot {
    /// Sums instruments and concatenates spans/events with `other`.
    /// Intended for registries with disjoint metric names (a shared name
    /// is summed, which is only meaningful for counters).
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (name, v) in &other.counters {
            *out.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *out.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            out.histograms
                .entry(name.clone())
                .and_modify(|mine| *mine = mine.merge(h))
                .or_insert_with(|| h.clone());
        }
        out.spans.extend(other.spans.iter().cloned());
        out.spans.sort_by(|a, b| {
            (a.start_ns, a.trace, &a.stage, a.dur_ns)
                .cmp(&(b.start_ns, b.trace, &b.stage, b.dur_ns))
        });
        out.events.extend(other.events.iter().cloned());
        out.events.sort_by_key(|e| e.at_ns);
        out
    }

    /// The canonical JSON encoding (compact, sorted keys, exact ints).
    pub fn to_json(&self) -> String {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), uint(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Json::Arr(
                        h.buckets
                            .iter()
                            .map(|&(le, n)| Json::Arr(vec![uint(le), uint(n)]))
                            .collect(),
                    );
                    let obj = Json::Obj(vec![
                        ("buckets".into(), buckets),
                        ("count".into(), uint(h.count)),
                        ("p50".into(), uint(h.p50)),
                        ("p95".into(), uint(h.p95)),
                        ("p99".into(), uint(h.p99)),
                        ("sum".into(), uint(h.sum)),
                    ]);
                    (k.clone(), obj)
                })
                .collect(),
        );
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("dur_ns".into(), uint(s.dur_ns)),
                        ("stage".into(), Json::Str(s.stage.clone())),
                        ("start_ns".into(), uint(s.start_ns)),
                        ("trace".into(), uint(s.trace)),
                    ])
                })
                .collect(),
        );
        let events = Json::Arr(
            self.events
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("at_ns".into(), uint(e.at_ns)),
                        ("detail".into(), Json::Str(e.detail.clone())),
                        ("kind".into(), Json::Str(e.kind.clone())),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".into(), counters),
            ("events".into(), events),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
            ("schema".into(), Json::Str(crate::SCHEMA.into())),
            ("spans".into(), spans),
        ])
        .render()
    }

    /// Decodes [`Snapshot::to_json`] output. Unknown top-level keys are
    /// ignored (forward compatibility); a wrong or missing `schema` is
    /// an error.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = json::parse(text)?;
        match root.get("schema").and_then(Json::as_str) {
            Some(s) if s == crate::SCHEMA => {}
            Some(s) => return Err(format!("unsupported snapshot schema {s:?}")),
            None => return Err("missing snapshot schema".to_string()),
        }
        let mut snap = Snapshot::default();
        if let Some(members) = root.get("counters").and_then(Json::as_obj) {
            for (k, v) in members {
                let v = v.as_u64().ok_or_else(|| format!("bad counter {k:?}"))?;
                snap.counters.insert(k.clone(), v);
            }
        }
        if let Some(members) = root.get("gauges").and_then(Json::as_obj) {
            for (k, v) in members {
                let v = v.as_i64().ok_or_else(|| format!("bad gauge {k:?}"))?;
                snap.gauges.insert(k.clone(), v);
            }
        }
        if let Some(members) = root.get("histograms").and_then(Json::as_obj) {
            for (k, h) in members {
                let err = || format!("bad histogram {k:?}");
                let mut buckets = Vec::new();
                for pair in h.get("buckets").and_then(Json::as_arr).ok_or_else(err)? {
                    let pair = pair.as_arr().ok_or_else(err)?;
                    match pair {
                        [le, n] => buckets
                            .push((le.as_u64().ok_or_else(err)?, n.as_u64().ok_or_else(err)?)),
                        _ => return Err(err()),
                    }
                }
                let sum = h.get("sum").and_then(Json::as_u64).ok_or_else(err)?;
                snap.histograms
                    .insert(k.clone(), HistSnapshot::from_parts(buckets, sum));
            }
        }
        if let Some(items) = root.get("spans").and_then(Json::as_arr) {
            for s in items {
                let err = || "bad span".to_string();
                snap.spans.push(SpanSnapshot {
                    trace: s.get("trace").and_then(Json::as_u64).ok_or_else(err)?,
                    stage: s
                        .get("stage")
                        .and_then(Json::as_str)
                        .ok_or_else(err)?
                        .to_string(),
                    start_ns: s.get("start_ns").and_then(Json::as_u64).ok_or_else(err)?,
                    dur_ns: s.get("dur_ns").and_then(Json::as_u64).ok_or_else(err)?,
                });
            }
        }
        if let Some(items) = root.get("events").and_then(Json::as_arr) {
            for e in items {
                let err = || "bad event".to_string();
                snap.events.push(EventSnapshot {
                    at_ns: e.get("at_ns").and_then(Json::as_u64).ok_or_else(err)?,
                    kind: e
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or_else(err)?
                        .to_string(),
                    detail: e
                        .get("detail")
                        .and_then(Json::as_str)
                        .ok_or_else(err)?
                        .to_string(),
                });
            }
        }
        Ok(snap)
    }

    /// Prometheus-style text exposition. Deterministic for a manual
    /// clock; the golden corpus pins this format byte-for-byte.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# mix-obs exposition (schema ");
        out.push_str(crate::SCHEMA);
        out.push_str(")\n");
        let mut typed = std::collections::BTreeSet::new();
        fn type_line(
            out: &mut String,
            typed: &mut std::collections::BTreeSet<String>,
            name: &str,
            kind: &str,
        ) {
            let base = base_of(name);
            if typed.insert(base.to_string()) {
                out.push_str("# TYPE ");
                out.push_str(base);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
            }
        }
        for (name, v) in &self.counters {
            type_line(&mut out, &mut typed, name, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, &mut typed, name, "gauge");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            type_line(&mut out, &mut typed, name, "histogram");
            let mut cumulative = 0u64;
            let mut saw_inf = false;
            for &(le, n) in &h.buckets {
                cumulative += n;
                saw_inf |= le == u64::MAX;
                let series = splice(name, "_bucket", Some(("le", &le_str(le))));
                out.push_str(&format!("{series} {cumulative}\n"));
            }
            if !saw_inf {
                let series = splice(name, "_bucket", Some(("le", "+Inf")));
                out.push_str(&format!("{series} {}\n", h.count));
            }
            out.push_str(&format!("{} {}\n", splice(name, "_sum", None), h.sum));
            out.push_str(&format!("{} {}\n", splice(name, "_count", None), h.count));
            for (q, v) in [("_p50", h.p50), ("_p95", h.p95), ("_p99", h.p99)] {
                let series = splice(name, q, None);
                type_line(&mut out, &mut typed, &series, "gauge");
                out.push_str(&format!("{series} {v}\n"));
            }
        }
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "# spans: {} retained (JSON exposition only)\n",
                self.spans.len()
            ));
        }
        if !self.events.is_empty() {
            out.push_str(&format!(
                "# events: {} retained (JSON exposition only)\n",
                self.events.len()
            ));
        }
        out
    }
}

/// The metric name up to its label set: `a{b="c"}` → `a`.
fn base_of(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// `u64::MAX` is the overflow bucket, exposed as `+Inf`.
fn le_str(le: u64) -> String {
    if le == u64::MAX {
        "+Inf".to_string()
    } else {
        le.to_string()
    }
}

/// Splices `suffix` (and optionally one more label) into a metric name
/// that may already carry labels: `splice("f{a="b"}", "_bucket",
/// Some(("le", "3")))` → `f_bucket{a="b",le="3"}`.
fn splice(name: &str, suffix: &str, label: Option<(&str, &str)>) -> String {
    match name.find('{') {
        None => match label {
            None => format!("{name}{suffix}"),
            Some((k, v)) => format!("{name}{suffix}{{{k}=\"{v}\"}}"),
        },
        Some(i) => {
            let base = &name[..i];
            let inner = &name[i + 1..name.len() - 1];
            match label {
                None => format!("{base}{suffix}{{{inner}}}"),
                Some((k, v)) => format!("{base}{suffix}{{{inner},{k}=\"{v}\"}}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("queries_total".into(), 42);
        s.counters
            .insert("source_retries_total{source=\"site0\"}".into(), 3);
        s.gauges.insert("cache_entries".into(), -2);
        s.histograms.insert(
            "answer_latency_ns".into(),
            HistSnapshot::from_parts(vec![(1023, 2), (2047, 1), (u64::MAX, 1)], 5000),
        );
        s.spans.push(SpanSnapshot {
            trace: 1,
            stage: "query".into(),
            start_ns: 10,
            dur_ns: 90,
        });
        s.events.push(EventSnapshot {
            at_ns: 55,
            kind: "breaker-open".into(),
            detail: "site0: 3 consecutive failures".into(),
        });
        s
    }

    #[test]
    fn json_round_trips_byte_for_byte() {
        let s = sample();
        let text = s.to_json();
        let back = Snapshot::from_json(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), text);
        // and the empty snapshot too
        let empty = Snapshot::default().to_json();
        assert_eq!(Snapshot::from_json(&empty).unwrap().to_json(), empty);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json(r#"{"schema":"mix-obs/999"}"#).is_err());
        assert!(Snapshot::from_json("not json").is_err());
    }

    #[test]
    fn quantiles_are_derived_from_buckets() {
        let h = HistSnapshot::from_parts(vec![(1023, 2), (2047, 1), (u64::MAX, 1)], 5000);
        assert_eq!(h.count, 4);
        assert_eq!(h.p50, 1023);
        assert_eq!(h.p95, u64::MAX);
    }

    #[test]
    fn merge_sums_instruments_and_concatenates() {
        let a = sample();
        let merged = a.merge(&a);
        assert_eq!(merged.counters["queries_total"], 84);
        assert_eq!(merged.gauges["cache_entries"], -4);
        let h = &merged.histograms["answer_latency_ns"];
        assert_eq!(h.count, 8);
        assert_eq!(h.buckets, vec![(1023, 4), (2047, 2), (u64::MAX, 2)]);
        assert_eq!(merged.spans.len(), 2);
        assert_eq!(merged.events.len(), 2);
        // merging with empty is identity
        assert_eq!(a.merge(&Snapshot::default()), a);
        assert_eq!(Snapshot::default().merge(&a), a);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE queries_total counter\nqueries_total 42\n"));
        assert!(text.contains("source_retries_total{source=\"site0\"} 3"));
        assert!(text.contains("# TYPE cache_entries gauge\ncache_entries -2\n"));
        assert!(text.contains("answer_latency_ns_bucket{le=\"1023\"} 2\n"));
        assert!(text.contains("answer_latency_ns_bucket{le=\"2047\"} 3\n"));
        assert!(text.contains("answer_latency_ns_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("answer_latency_ns_sum 5000\n"));
        assert!(text.contains("answer_latency_ns_count 4\n"));
        assert!(text.contains("# TYPE answer_latency_ns_p50 gauge\nanswer_latency_ns_p50 1023\n"));
        assert!(text.contains("# spans: 1 retained"));
        assert!(text.contains("# events: 1 retained"));
    }

    #[test]
    fn labelled_histograms_splice_le_inside_braces() {
        let mut s = Snapshot::default();
        s.histograms.insert(
            "fetch_ns{source=\"a\"}".into(),
            HistSnapshot::from_parts(vec![(3, 1)], 2),
        );
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE fetch_ns histogram\n"), "{text}");
        assert!(
            text.contains("fetch_ns_bucket{source=\"a\",le=\"3\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("fetch_ns_sum{source=\"a\"} 2\n"), "{text}");
        assert!(text.contains("fetch_ns_p50{source=\"a\"} 3\n"), "{text}");
    }
}
