//! Instrument bundles over [`mix_obs`] for the serving stack.
//!
//! The mediator does not sprinkle registry lookups through its hot
//! paths: every instrument a code path touches is resolved **once** —
//! when a source is registered, or when the mediator is built — into a
//! bundle of cheap atomic handles. Per-source metric names carry the
//! source as an inline Prometheus-style label
//! (`source_retries_total{source="site0"}`), so one registry serves any
//! number of sources and the exposition needs no label machinery.
//!
//! Both bundles come in a no-op flavor (backed by [`Registry::noop`])
//! whose every operation is a single branch on `None` — this is what
//! makes observability free when disabled (measured by bench X17).

use mix_obs::{Counter, Gauge, Histogram, Registry};

/// Splices an inline `{source="…"}` label into a metric name.
fn labeled(name: &str, source: &str) -> String {
    format!("{name}{{source=\"{source}\"}}")
}

/// The per-source instrument bundle: one per registered source, shared
/// (via `Arc`) by every thread that calls into that source through
/// [`crate::resilience::resilient_answer`].
#[derive(Clone)]
pub struct SourceInstruments {
    registry: Registry,
    source: String,
    /// Interned span stage, `fetch/<source>`.
    stage: String,
    /// Members served from a live, validated fetch.
    pub(crate) fresh: Counter,
    /// Members served from the last-known-good snapshot.
    pub(crate) stale: Counter,
    /// Members that contributed nothing.
    pub(crate) failed: Counter,
    /// Retry attempts actually spent (not calls that retried).
    pub(crate) retries: Counter,
    /// Calls rejected by an open breaker without contacting the source.
    pub(crate) short_circuits: Counter,
    /// Breaker transitions into [`crate::resilience::BreakerState::Open`].
    pub(crate) breaker_opened: Counter,
    /// Breaker transitions into [`crate::resilience::BreakerState::HalfOpen`].
    pub(crate) breaker_half_opened: Counter,
    /// Breaker transitions back into [`crate::resilience::BreakerState::Closed`].
    pub(crate) breaker_closed: Counter,
    /// Wall-clock nanoseconds per fetch attempt (including validation).
    pub(crate) fetch_latency: Histogram,
}

impl SourceInstruments {
    /// Resolves the bundle for `source` against `registry`.
    pub fn new(registry: &Registry, source: &str) -> SourceInstruments {
        SourceInstruments {
            registry: registry.clone(),
            source: source.to_owned(),
            stage: format!("fetch/{source}"),
            fresh: registry.counter(&labeled("source_served_fresh_total", source)),
            stale: registry.counter(&labeled("source_served_stale_total", source)),
            failed: registry.counter(&labeled("source_failed_total", source)),
            retries: registry.counter(&labeled("source_retries_total", source)),
            short_circuits: registry.counter(&labeled("source_short_circuits_total", source)),
            breaker_opened: registry.counter(&labeled("source_breaker_opened_total", source)),
            breaker_half_opened: registry
                .counter(&labeled("source_breaker_half_opened_total", source)),
            breaker_closed: registry.counter(&labeled("source_breaker_closed_total", source)),
            fetch_latency: registry.histogram(&labeled("source_fetch_latency_ns", source)),
        }
    }

    /// A bundle whose every operation is a no-op — for callers driving
    /// [`crate::resilience::resilient_answer`] outside a mediator.
    pub fn noop(source: &str) -> SourceInstruments {
        SourceInstruments::new(&Registry::noop(), source)
    }

    /// The registry the bundle records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The source this bundle is labeled with.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The span stage name for fetches against this source.
    pub(crate) fn fetch_stage(&self) -> &str {
        &self.stage
    }

    /// Records an occurrence-time event, prefixing the detail with the
    /// source name.
    pub(crate) fn event(&self, kind: &str, detail: &str) {
        self.registry
            .event(kind, format!("source '{}': {detail}", self.source));
    }
}

/// The per-replica-set instrument bundle (one per sharded source, see
/// [`crate::topology::ReplicaSet`]): failover traffic between replicas
/// plus a live health gauge, labeled like [`SourceInstruments`] so the
/// same registry and exposition serve both layers.
#[derive(Clone)]
pub struct ReplicaInstruments {
    registry: Registry,
    source: String,
    /// Calls that skipped at least one replica (open breaker or live
    /// failure) before being served by a later one.
    pub(crate) failovers: Counter,
    /// Calls for which every replica failed — the outer resilience
    /// layer's stale-snapshot fallback is all that's left.
    pub(crate) exhausted: Counter,
    /// Replicas whose breaker is currently closed (set after each call).
    pub(crate) healthy: Gauge,
    /// Answers served, per replica position.
    pub(crate) served: Vec<Counter>,
}

impl ReplicaInstruments {
    /// Resolves the bundle for a `replicas`-wide set serving `source`.
    pub fn new(registry: &Registry, source: &str, replicas: usize) -> ReplicaInstruments {
        ReplicaInstruments {
            registry: registry.clone(),
            source: source.to_owned(),
            failovers: registry.counter(&labeled("replica_failovers_total", source)),
            exhausted: registry.counter(&labeled("replica_exhausted_total", source)),
            healthy: registry.gauge(&labeled("replica_healthy", source)),
            served: (0..replicas)
                .map(|i| {
                    registry.counter(&format!(
                        "replica_served_total{{source=\"{source}\",replica=\"{i}\"}}"
                    ))
                })
                .collect(),
        }
    }

    /// A bundle whose every operation is a no-op.
    pub fn noop(source: &str, replicas: usize) -> ReplicaInstruments {
        ReplicaInstruments::new(&Registry::noop(), source, replicas)
    }

    /// Records an occurrence-time event, prefixing the detail with the
    /// source name.
    pub(crate) fn event(&self, kind: &str, detail: &str) {
        self.registry
            .event(kind, format!("source '{}': {detail}", self.source));
    }
}

/// The mediator-level bundle: query counts by answer path, query
/// errors, and end-to-end answer latency.
#[derive(Clone)]
pub(crate) struct MediatorInstruments {
    /// Queries answered (or failed) through [`crate::Mediator::query`].
    pub(crate) queries: Counter,
    /// Answers pruned as unsatisfiable by the DTD simplifier.
    pub(crate) pruned: Counter,
    /// Member fetches skipped because the satisfiability analyzer proved
    /// the per-source query `Unsat` (one increment per skipped fetch).
    pub(crate) sat_pruned: Counter,
    /// Answers shipped as one composed query (no materialization).
    pub(crate) composed: Counter,
    /// Answers that materialized the view.
    pub(crate) materialized: Counter,
    /// Queries that returned a [`crate::MediatorError`].
    pub(crate) errors: Counter,
    /// End-to-end `query()` wall-clock nanoseconds.
    pub(crate) latency: Histogram,
}

impl MediatorInstruments {
    pub(crate) fn new(registry: &Registry) -> MediatorInstruments {
        MediatorInstruments {
            queries: registry.counter("mediator_queries_total"),
            pruned: registry.counter("mediator_answers_pruned_total"),
            sat_pruned: registry.counter("sat_pruned_total"),
            composed: registry.counter("mediator_answers_composed_total"),
            materialized: registry.counter("mediator_answers_materialized_total"),
            errors: registry.counter("mediator_query_errors_total"),
            latency: registry.histogram("mediator_answer_latency_ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_spliced_into_metric_names() {
        let registry = Registry::new();
        let obs = SourceInstruments::new(&registry, "site0");
        obs.retries.add(3);
        obs.fetch_latency.observe(7);
        let snap = registry.snapshot();
        assert_eq!(snap.counters[r#"source_retries_total{source="site0"}"#], 3);
        assert!(snap
            .histograms
            .contains_key(r#"source_fetch_latency_ns{source="site0"}"#));
    }

    #[test]
    fn noop_bundle_records_nothing() {
        let obs = SourceInstruments::noop("s");
        obs.fresh.inc();
        obs.event("breaker-open", "should vanish");
        assert!(!obs.registry().is_enabled());
        assert_eq!(obs.fresh.get(), 0);
    }
}
