//! Structural classes of documents (Definition 3.5).
//!
//! Two documents are in the same structural class when a bijection on
//! string values and a bijection on IDs turns one into the other. Since IDs
//! are pairwise distinct inside a document, the class of a document is
//! fully described by (a) its element-name tree shape and (b) the
//! *equality pattern* of its PCDATA strings. [`Skeleton`] canonicalizes
//! exactly that: strings are replaced by their first-occurrence index in
//! depth-first order.

use crate::element::{Content, Element};
use mix_relang::symbol::Name;
use std::collections::HashMap;

/// The canonical representative of a structural class.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Skeleton {
    /// An element with element content.
    Node(Name, Vec<Skeleton>),
    /// An element with character content; the `usize` is the canonical
    /// index of the string value (equal strings share an index).
    Text(Name, usize),
}

impl Skeleton {
    /// Computes the structural class of `e`.
    pub fn of(e: &Element) -> Skeleton {
        let mut interner: HashMap<String, usize> = HashMap::new();
        Self::build(e, &mut interner)
    }

    fn build(e: &Element, interner: &mut HashMap<String, usize>) -> Skeleton {
        match &e.content {
            Content::Text(t) => {
                let next = interner.len();
                let idx = *interner.entry(t.clone()).or_insert(next);
                Skeleton::Text(e.name, idx)
            }
            Content::Elements(v) => {
                Skeleton::Node(e.name, v.iter().map(|c| Self::build(c, interner)).collect())
            }
        }
    }

    /// Number of element nodes in the class representative.
    pub fn size(&self) -> usize {
        match self {
            Skeleton::Text(..) => 1,
            Skeleton::Node(_, v) => 1 + v.iter().map(Skeleton::size).sum::<usize>(),
        }
    }
}

/// Are `a` and `b` in the same structural class (Definition 3.5)?
pub fn same_structural_class(a: &Element, b: &Element) -> bool {
    Skeleton::of(a) == Skeleton::of(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_do_not_matter() {
        let a = Element::new("x", vec![Element::new("y", vec![])]).with_id("one");
        let b = Element::new("x", vec![Element::new("y", vec![])]).with_id("two");
        assert!(same_structural_class(&a, &b));
    }

    #[test]
    fn strings_map_bijectively() {
        // ("A","A") and ("B","B") share a class; ("A","B") does not.
        let aa = Element::new("p", vec![Element::text("n", "A"), Element::text("n", "A")]);
        let bb = Element::new("p", vec![Element::text("n", "B"), Element::text("n", "B")]);
        let ab = Element::new("p", vec![Element::text("n", "A"), Element::text("n", "B")]);
        assert!(same_structural_class(&aa, &bb));
        assert!(!same_structural_class(&aa, &ab));
    }

    #[test]
    fn shape_matters() {
        let flat = Element::new(
            "x",
            vec![Element::new("y", vec![]), Element::new("z", vec![])],
        );
        let nested = Element::new(
            "x",
            vec![Element::new("y", vec![Element::new("z", vec![])])],
        );
        assert!(!same_structural_class(&flat, &nested));
    }

    #[test]
    fn order_matters() {
        let yz = Element::new(
            "x",
            vec![Element::new("y", vec![]), Element::new("z", vec![])],
        );
        let zy = Element::new(
            "x",
            vec![Element::new("z", vec![]), Element::new("y", vec![])],
        );
        assert!(!same_structural_class(&yz, &zy));
    }

    #[test]
    fn empty_element_content_differs_from_text() {
        let empty = Element::new("x", vec![]);
        let text = Element::text("x", "");
        assert!(!same_structural_class(&empty, &text));
    }

    #[test]
    fn skeleton_size() {
        let e = Element::new(
            "a",
            vec![Element::text("b", "v"), Element::new("c", vec![])],
        );
        assert_eq!(Skeleton::of(&e).size(), 3);
    }
}
