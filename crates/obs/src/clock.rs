//! The registry's clock: real (monotonic, epoch at registry creation) or
//! manual (starts at zero, advanced explicitly).
//!
//! Every timestamp the registry hands out — span starts, event times,
//! histogram timer durations — comes from here, so swapping in a manual
//! clock makes a whole exposition byte-deterministic. The golden-corpus
//! case pinning the text exposition relies on that.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

pub(crate) enum Clock {
    /// Nanoseconds since the registry was created.
    Real(Instant),
    /// Explicitly advanced; starts at zero.
    Manual(AtomicU64),
}

impl Clock {
    pub(crate) fn real() -> Clock {
        Clock::Real(Instant::now())
    }

    pub(crate) fn manual() -> Clock {
        Clock::Manual(AtomicU64::new(0))
    }

    pub(crate) fn now_ns(&self) -> u64 {
        match self {
            Clock::Real(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Manual(t) => t.load(Relaxed),
        }
    }

    /// Advances a manual clock; returns whether it had any effect.
    pub(crate) fn advance_ns(&self, delta: u64) -> bool {
        match self {
            Clock::Real(_) => false,
            Clock::Manual(t) => {
                t.fetch_add(delta, Relaxed);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_starts_at_zero_and_advances() {
        let c = Clock::manual();
        assert_eq!(c.now_ns(), 0);
        assert!(c.advance_ns(250));
        assert!(c.advance_ns(250));
        assert_eq!(c.now_ns(), 500);
    }

    #[test]
    fn real_clock_is_monotonic_and_ignores_advance() {
        let c = Clock::real();
        let a = c.now_ns();
        assert!(!c.advance_ns(1_000_000));
        let b = c.now_ns();
        assert!(b >= a);
    }
}
