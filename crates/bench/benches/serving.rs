//! X15 — the serving layer: inference-cache cold vs. warm latency on the
//! D1/Q2 workload, and batched `answer_many` throughput at 1/2/4/8
//! worker threads over simulated-latency sources.
//!
//! This bench is a custom harness (not Criterion): X15's acceptance
//! criteria are *ratios* that must land in a committed artifact, so the
//! run measures with `std::time::Instant`, prints a summary, and writes
//! the machine-readable results to `BENCH_PR2.json` at the workspace
//! root.
//!
//! Methodology note on threading: the throughput half wraps every source
//! in a [`LatencyWrapper`] (10 ms per fetch — a fast LAN round-trip).
//! A mediator's sources are remote by definition (the paper's sources
//! are web sites), so batch serving earns its speedup by *overlapping
//! source waits*; measuring against in-memory microsecond sources would
//! only benchmark the thread scheduler. With the waits overlapped, the
//! scaling holds even on a single-core host (this is latency hiding,
//! not CPU parallelism).

use mix_bench::{d1, department_of_size, q2};
use mix_infer::InferenceCache;
use mix_mediator::{LatencyWrapper, Mediator, XmlSource};
use mix_xmas::{parse_query, Query};
use std::sync::Arc;
use std::time::{Duration, Instant};

const COLD_RUNS: usize = 5;
const WARM_ITERS: u32 = 200;
const SOURCES: usize = 4;
const BATCH: usize = 20;
const LATENCY_MS: u64 = 10;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

struct ThroughputRow {
    threads: usize,
    best: Duration,
    qps: f64,
}

fn bench_inference_cache() -> (Duration, Duration, f64) {
    let dtd = d1();
    let q = q2();
    // cold: empty inference cache AND empty automata memo — the first
    // request a fresh mediator process would serve. Best of COLD_RUNS to
    // shed scheduler noise.
    let mut cold = Duration::MAX;
    for _ in 0..COLD_RUNS {
        mix_relang::clear_memo();
        let cache = InferenceCache::new();
        let t = Instant::now();
        cache.infer(&q, &dtd).expect("D1/Q2 infers");
        cold = cold.min(t.elapsed());
    }
    // warm: the same (query, DTD) served from the populated cache.
    let cache = InferenceCache::new();
    cache.infer(&q, &dtd).expect("D1/Q2 infers");
    let t = Instant::now();
    for _ in 0..WARM_ITERS {
        cache.infer(&q, &dtd).expect("warm hit");
    }
    let warm = t.elapsed() / WARM_ITERS;
    let stats = cache.stats();
    assert_eq!(stats.hits, WARM_ITERS as u64, "warm loop must hit");
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    (cold, warm, speedup)
}

fn build_serving_mediator() -> (Mediator, Vec<Query>) {
    let mut m = Mediator::new();
    let mut views = Vec::new();
    for i in 0..SOURCES {
        let source = XmlSource::new(d1(), department_of_size(8)).expect("valid department");
        let slow = LatencyWrapper::new(source, Duration::from_millis(LATENCY_MS));
        let site = format!("site{i}");
        m.add_source(&site, Arc::new(slow));
        let mut view = q2();
        view.view_name = mix_relang::name(&format!("wj{i}"));
        m.register_view(&site, &view).expect("view registers");
        views.push(view.view_name);
    }
    let batch: Vec<Query> = (0..BATCH)
        .map(|i| {
            let view = views[i % views.len()];
            parse_query(&format!(
                "b{i} = SELECT X WHERE <{view}> X:<professor/> </{view}>"
            ))
            .expect("batch query parses")
        })
        .collect();
    (m, batch)
}

fn bench_answer_many() -> Vec<ThroughputRow> {
    let (m, batch) = build_serving_mediator();
    let reference: Vec<String> = m
        .answer_many_with_threads(&batch, 1)
        .iter()
        .map(render)
        .collect();
    THREADS
        .iter()
        .map(|&threads| {
            let mut best = Duration::MAX;
            for _ in 0..REPS {
                let t = Instant::now();
                let answers = m.answer_many_with_threads(&batch, threads);
                let elapsed = t.elapsed();
                best = best.min(elapsed);
                let rendered: Vec<String> = answers.iter().map(render).collect();
                assert_eq!(reference, rendered, "{threads} threads changed answers");
            }
            ThroughputRow {
                threads,
                best,
                qps: BATCH as f64 / best.as_secs_f64().max(1e-12),
            }
        })
        .collect()
}

fn render(a: &Result<mix_mediator::Answer, mix_mediator::MediatorError>) -> String {
    match a {
        Ok(ans) => mix_xml::write_document(&ans.document, mix_xml::WriteConfig::default()),
        Err(e) => format!("error: {e}"),
    }
}

fn main() {
    let (cold, warm, speedup) = bench_inference_cache();
    println!("X15 inference cache (D1/Q2):");
    println!("  cold: {cold:?}   warm: {warm:?}   speedup: {speedup:.1}x");

    let rows = bench_answer_many();
    let base_qps = rows[0].qps;
    println!(
        "X15 answer_many ({BATCH}-query batch, {SOURCES} sources, \
         {LATENCY_MS} ms simulated source latency):"
    );
    for r in &rows {
        println!(
            "  {} thread(s): {:?}  {:.1} q/s  ({:.2}x vs 1 thread)",
            r.threads,
            r.best,
            r.qps,
            r.qps / base_qps
        );
    }

    let memo = mix_relang::memo_stats();
    let throughput_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"threads\": {}, \"elapsed_ms\": {:.3}, \"qps\": {:.1}, \
                 \"speedup_vs_1\": {:.2} }}",
                r.threads,
                r.best.as_secs_f64() * 1e3,
                r.qps,
                r.qps / base_qps
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"X15\",\n  \
         \"generated_by\": \"cargo bench -p mix-bench --bench serving\",\n  \
         \"inference_cache\": {{\n    \"workload\": \"D1/Q2\",\n    \
         \"cold_us\": {:.1},\n    \"warm_us\": {:.3},\n    \
         \"warm_speedup\": {:.1}\n  }},\n  \
         \"answer_many\": {{\n    \"batch\": {BATCH},\n    \"sources\": {SOURCES},\n    \
         \"source_latency_ms\": {LATENCY_MS},\n    \"throughput\": [\n{}\n    ]\n  }},\n  \
         \"automata_memo\": {{ \"dfa_hits\": {}, \"dfa_misses\": {}, \
         \"inclusion_hits\": {}, \"inclusion_misses\": {} }}\n}}",
        cold.as_secs_f64() * 1e6,
        warm.as_secs_f64() * 1e6,
        speedup,
        throughput_json,
        memo.dfa_hits,
        memo.dfa_misses,
        memo.inclusion_hits,
        memo.inclusion_misses,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR2.json");
    std::fs::write(out, json + "\n").expect("write BENCH_PR2.json");
    println!("wrote {out}");
}
