//! Programmatic query construction for the DTD-based query interface.
//!
//! Section 1: the interface "displays the structure of the view elements
//! and also provides fill-in windows and menus that allow the user to
//! place conditions on the elements" [BGL+]. [`QueryBuilder`] is that
//! workflow as an API: conditions are attached to *label paths* that are
//! validated against the DTD as they are entered (a UI would grey out
//! impossible menu entries; we return a typed error), and the builder
//! assembles the final pick-element query.
//!
//! Requiring the same path twice produces two sibling conditions with an
//! automatic `!=` pair — the Example 4.2 "two different publications"
//! pattern. `require` returns a [`NodeRef`] handle, and
//! [`QueryBuilder::require_under`] attaches further constraints *inside*
//! a specific condition, so "two different publications, each with a
//! journal" is expressible without ambiguity.

use crate::interface::occurs;
use mix_dtd::{ContentModel, Dtd};
use mix_relang::symbol::Name;
use mix_xmas::{Body, Condition, NameTest, Query, Var};
use std::fmt;

/// What a built condition requires at its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// The element must exist.
    Exists,
    /// The element must exist with exactly this string content.
    Text(String),
}

/// Errors raised while the query is being assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The first path step must be the DTD's document type.
    RootMismatch {
        /// What the path started with.
        got: Name,
        /// The document type.
        expected: Name,
    },
    /// A step is not a possible child of its parent according to the DTD.
    NotAChild {
        /// The parent name.
        parent: Name,
        /// The impossible child.
        child: Name,
    },
    /// A text constraint was placed on a non-PCDATA element.
    NotPcdata(Name),
    /// A structural constraint descends below a PCDATA element.
    BelowPcdata(Name),
    /// `pick` was never called.
    NoPick,
    /// The pick path is empty.
    EmptyPath,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::RootMismatch { got, expected } => {
                write!(
                    f,
                    "path must start at the document type '{expected}', got '{got}'"
                )
            }
            BuildError::NotAChild { parent, child } => {
                write!(f, "'{child}' cannot occur inside '{parent}' (per the DTD)")
            }
            BuildError::NotPcdata(n) => {
                write!(
                    f,
                    "'{n}' has element content; a text condition is impossible"
                )
            }
            BuildError::BelowPcdata(n) => {
                write!(f, "'{n}' is PCDATA; nothing can be required inside it")
            }
            BuildError::NoPick => write!(f, "no pick path was chosen"),
            BuildError::EmptyPath => write!(f, "paths must have at least one step"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A node of the under-construction condition tree.
#[derive(Debug, Clone)]
struct Node {
    name: Name,
    text: Option<String>,
    id_var: Option<Var>,
    is_pick: bool,
    children: Vec<Node>,
}

impl Node {
    fn new(name: Name) -> Node {
        Node {
            name,
            text: None,
            id_var: None,
            is_pick: false,
            children: Vec::new(),
        }
    }
}

/// A handle to one condition node of the under-construction tree
/// (child-index path from the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRef(Vec<usize>);

/// Builds pick-element queries interactively against a DTD.
pub struct QueryBuilder<'d> {
    dtd: &'d Dtd,
    view_name: Name,
    root: Node,
    diseqs: Vec<(Var, Var)>,
    next_id: u32,
    has_pick: bool,
}

impl<'d> QueryBuilder<'d> {
    /// Starts a query named `view_name` over `dtd`.
    pub fn new(dtd: &'d Dtd, view_name: &str) -> QueryBuilder<'d> {
        QueryBuilder {
            dtd,
            view_name: Name::intern(view_name),
            root: Node::new(dtd.doc_type),
            diseqs: Vec::new(),
            next_id: 0,
            has_pick: false,
        }
    }

    /// The child names the DTD allows under `parent` — what a menu would
    /// display, with occurrence bounds.
    pub fn menu(&self, parent: Name) -> Vec<(Name, crate::interface::Occurs)> {
        match self.dtd.get(parent) {
            Some(ContentModel::Elements(r)) => {
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for s in r.syms_in_order() {
                    if !seen.contains(&s.name) {
                        seen.push(s.name);
                        out.push((s.name, occurs(r, s.name)));
                    }
                }
                out
            }
            _ => Vec::new(),
        }
    }

    fn check_path(&self, path: &[&str]) -> Result<Vec<Name>, BuildError> {
        if path.is_empty() {
            return Err(BuildError::EmptyPath);
        }
        let names: Vec<Name> = path.iter().map(|s| Name::intern(s)).collect();
        if names[0] != self.dtd.doc_type {
            return Err(BuildError::RootMismatch {
                got: names[0],
                expected: self.dtd.doc_type,
            });
        }
        for w in names.windows(2) {
            let (parent, child) = (w[0], w[1]);
            match self.dtd.get(parent) {
                Some(ContentModel::Elements(r)) if r.names().contains(&child) => {}
                Some(ContentModel::Elements(_)) | None => {
                    return Err(BuildError::NotAChild { parent, child })
                }
                Some(ContentModel::Pcdata) => return Err(BuildError::BelowPcdata(parent)),
            }
        }
        Ok(names)
    }

    /// Descends to `path`, creating (or reusing) one condition node per
    /// step; `fresh_leaf` forces a *new* sibling at the last step.
    fn descend(&mut self, names: &[Name], fresh_leaf: bool) -> &mut Node {
        // navigate immutably first to decide reuse, then rebuild mutably —
        // simplest borrow-friendly approach: recursive helper
        fn go<'n>(node: &'n mut Node, rest: &[Name], fresh_leaf: bool) -> &'n mut Node {
            match rest.split_first() {
                None => node,
                Some((&step, tail)) => {
                    let is_leaf = tail.is_empty();
                    let reuse = if is_leaf && fresh_leaf {
                        None
                    } else {
                        node.children.iter().position(|c| c.name == step)
                    };
                    let idx = match reuse {
                        Some(i) => i,
                        None => {
                            node.children.push(Node::new(step));
                            node.children.len() - 1
                        }
                    };
                    go(&mut node.children[idx], tail, fresh_leaf)
                }
            }
        }
        go(&mut self.root, &names[1..], fresh_leaf)
    }

    /// Requires the element at `path` (which must start at the document
    /// type) to exist, or to have the given text. Re-requiring the same
    /// path adds a *distinct* sibling with automatic pairwise `!=`
    /// constraints against every existing twin. Returns a handle to the
    /// (possibly new) leaf condition for [`QueryBuilder::require_under`].
    pub fn require(&mut self, path: &[&str], c: Constraint) -> Result<NodeRef, BuildError> {
        let names = self.check_path(path)?;
        let leaf_name = *names.last().expect("checked nonempty");
        if let Constraint::Text(_) = &c {
            if !matches!(self.dtd.get(leaf_name), Some(ContentModel::Pcdata)) {
                return Err(BuildError::NotPcdata(leaf_name));
            }
        }
        // a one-step path names the root itself: there is only one root,
        // so only a text constraint can add anything
        if names.len() == 1 {
            if let Constraint::Text(t) = c {
                self.root.text = Some(t);
            }
            return Ok(NodeRef(vec![]));
        }
        // does a node already exist at this exact path? then force a new
        // distinct sibling and link it to *every* existing twin with !=
        // (three requires of the same path ⇒ three pairwise constraints)
        let node_ref;
        if self.find_existing(&names).is_some() {
            let twins = self.ensure_id_vars_at_all(&names);
            self.descend(&names, true); // push the fresh sibling
            self.next_id += 1;
            let fresh_var = Var::new(&format!("Id{}", self.next_id));
            node_ref = self.ref_of_last_fresh(&names);
            let leaf = self.node_mut(&node_ref);
            leaf.id_var = Some(fresh_var);
            if let Constraint::Text(t) = c {
                leaf.text = Some(t);
            }
            for v in twins {
                self.diseqs.push((v, fresh_var));
            }
        } else {
            self.descend(&names, false);
            node_ref = self.ref_of_first(&names);
            if let Constraint::Text(t) = c {
                self.node_mut(&node_ref).text = Some(t);
            }
        }
        Ok(node_ref)
    }

    /// Requires `subpath` *inside* the condition `base` (a handle from a
    /// previous `require`), validated against the DTD from `base`'s name.
    /// This is how "two different publications, each containing a
    /// journal" is built: require the publication path twice and extend
    /// each handle separately.
    pub fn require_under(
        &mut self,
        base: &NodeRef,
        subpath: &[&str],
        c: Constraint,
    ) -> Result<NodeRef, BuildError> {
        if subpath.is_empty() {
            return Err(BuildError::EmptyPath);
        }
        let base_name = self.node_mut(base).name;
        // validate base_name → subpath chain
        let names: Vec<Name> = std::iter::once(base_name)
            .chain(subpath.iter().map(|s| Name::intern(s)))
            .collect();
        for w in names.windows(2) {
            let (parent, child) = (w[0], w[1]);
            match self.dtd.get(parent) {
                Some(ContentModel::Elements(r)) if r.names().contains(&child) => {}
                Some(ContentModel::Elements(_)) | None => {
                    return Err(BuildError::NotAChild { parent, child })
                }
                Some(ContentModel::Pcdata) => return Err(BuildError::BelowPcdata(parent)),
            }
        }
        let leaf_name = *names.last().expect("nonempty");
        if let Constraint::Text(_) = &c {
            if !matches!(self.dtd.get(leaf_name), Some(ContentModel::Pcdata)) {
                return Err(BuildError::NotPcdata(leaf_name));
            }
        }
        // descend under the base node, reusing prefixes
        let mut here = base.clone();
        for &step in &names[1..] {
            let node = self.node_mut(&here);
            let idx = match node.children.iter().position(|ch| ch.name == step) {
                Some(i) => i,
                None => {
                    node.children.push(Node::new(step));
                    node.children.len() - 1
                }
            };
            here.0.push(idx);
        }
        if let Constraint::Text(t) = c {
            self.node_mut(&here).text = Some(t);
        }
        Ok(here)
    }

    /// Chooses the pick path — the elements the view will contain.
    pub fn pick(&mut self, path: &[&str]) -> Result<&mut Self, BuildError> {
        let names = self.check_path(path)?;
        let leaf = self.descend(&names, false);
        leaf.is_pick = true;
        self.has_pick = true;
        Ok(self)
    }

    /// Marks the condition behind a handle as the pick.
    pub fn pick_node(&mut self, node: &NodeRef) -> &mut Self {
        self.node_mut(node).is_pick = true;
        self.has_pick = true;
        self
    }

    fn node_mut(&mut self, r: &NodeRef) -> &mut Node {
        let mut cur = &mut self.root;
        for &i in &r.0 {
            cur = &mut cur.children[i];
        }
        cur
    }

    /// Handle of the first existing node at this path.
    fn ref_of_first(&self, names: &[Name]) -> NodeRef {
        let mut cur = &self.root;
        let mut out = Vec::new();
        for &step in &names[1..] {
            let idx = cur
                .children
                .iter()
                .position(|ch| ch.name == step)
                .expect("descend created it");
            out.push(idx);
            cur = &cur.children[idx];
        }
        NodeRef(out)
    }

    /// Handle of the most recently pushed sibling at this path.
    fn ref_of_last_fresh(&self, names: &[Name]) -> NodeRef {
        let mut cur = &self.root;
        let mut out = Vec::new();
        for (k, &step) in names[1..].iter().enumerate() {
            let is_leaf = k == names.len() - 2;
            let idx = if is_leaf {
                cur.children
                    .iter()
                    .rposition(|ch| ch.name == step)
                    .expect("just pushed")
            } else {
                cur.children
                    .iter()
                    .position(|ch| ch.name == step)
                    .expect("prefix exists")
            };
            out.push(idx);
            cur = &cur.children[idx];
        }
        NodeRef(out)
    }

    fn find_existing(&self, names: &[Name]) -> Option<&Node> {
        let mut cur = &self.root;
        for &step in &names[1..] {
            cur = cur.children.iter().find(|c| c.name == step)?;
        }
        Some(cur)
    }

    /// Id variables of every existing leaf at this exact path, assigning
    /// fresh ones where missing.
    fn ensure_id_vars_at_all(&mut self, names: &[Name]) -> Vec<Var> {
        // navigate to the parent of the leaves
        let mut cur = &mut self.root;
        for &step in &names[1..names.len() - 1] {
            let idx = cur
                .children
                .iter()
                .position(|c| c.name == step)
                .expect("prefix exists: find_existing succeeded");
            cur = &mut cur.children[idx];
        }
        let leaf_name = *names.last().expect("nonempty");
        let mut out = Vec::new();
        for child in cur.children.iter_mut().filter(|c| c.name == leaf_name) {
            let v = match child.id_var {
                Some(v) => v,
                None => {
                    self.next_id += 1;
                    let fresh = Var::new(&format!("Id{}", self.next_id));
                    child.id_var = Some(fresh);
                    fresh
                }
            };
            out.push(v);
        }
        out
    }

    /// Assembles the query.
    pub fn build(&self) -> Result<Query, BuildError> {
        if !self.has_pick {
            return Err(BuildError::NoPick);
        }
        fn convert(n: &Node) -> Condition {
            let body = match &n.text {
                Some(t) => Body::Text(t.clone()),
                None => Body::Children(n.children.iter().map(convert).collect()),
            };
            Condition {
                test: NameTest::name(n.name),
                var: if n.is_pick { Some(Var::new("P")) } else { None },
                id_var: n.id_var,
                tag: 0,
                body,
            }
        }
        Ok(Query {
            view_name: self.view_name,
            pick: Var::new("P"),
            root: convert(&self.root),
            diseqs: self.diseqs.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_xmas::{evaluate, normalize, parse_query};
    use mix_xml::parse_document;

    #[test]
    fn builds_q2_equivalent() {
        let d = d1_department();
        let mut b = QueryBuilder::new(&d, "withJournals");
        b.require(&["department", "name"], Constraint::Text("CS".into()))
            .unwrap();
        let pub1 = b
            .require(
                &["department", "professor", "publication"],
                Constraint::Exists,
            )
            .unwrap();
        b.require_under(&pub1, &["journal"], Constraint::Exists)
            .unwrap();
        let pub2 = b
            .require(
                &["department", "professor", "publication"],
                Constraint::Exists,
            )
            .unwrap();
        b.require_under(&pub2, &["journal"], Constraint::Exists)
            .unwrap();
        b.pick(&["department", "professor"]).unwrap();
        let built = b.build().unwrap();
        assert_eq!(built.diseqs.len(), 1);

        // behaves like the hand-written professor-restricted Q2
        let reference = parse_query(
            "withJournals = SELECT P WHERE <department> <name>CS</name> \
               P:<professor> \
                 <publication id=A><journal/></publication> \
                 <publication id=B><journal/></publication> \
               </> </> AND A != B",
        )
        .unwrap();
        let doc = parse_document(
            "<department><name>CS</name>\
               <professor><firstName>two</firstName><lastName>l</lastName>\
                 <publication><title>a</title><author>x</author><journal/></publication>\
                 <publication><title>b</title><author>x</author><journal/></publication>\
                 <teaches/></professor>\
               <professor><firstName>one</firstName><lastName>l</lastName>\
                 <publication><title>c</title><author>x</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>g</firstName><lastName>l</lastName>\
                 <publication><title>d</title><author>x</author><journal/></publication>\
               </gradStudent></department>",
        )
        .unwrap();
        let a = evaluate(&normalize(&built, &d).unwrap(), &doc);
        let bref = evaluate(&normalize(&reference, &d).unwrap(), &doc);
        assert!(mix_xml::same_structural_class(&a.root, &bref.root));
        assert_eq!(a.root.children().len(), 1);
    }

    #[test]
    fn invalid_paths_are_rejected_like_a_menu_would() {
        let d = d1_department();
        let mut b = QueryBuilder::new(&d, "v");
        assert!(matches!(
            b.require(&["professor"], Constraint::Exists),
            Err(BuildError::RootMismatch { .. })
        ));
        assert!(matches!(
            b.require(&["department", "journal"], Constraint::Exists),
            Err(BuildError::NotAChild { .. })
        ));
        assert!(matches!(
            b.require(&["department", "professor"], Constraint::Text("x".into())),
            Err(BuildError::NotPcdata(_))
        ));
        assert!(matches!(
            b.require(&["department", "name", "deeper"], Constraint::Exists),
            Err(BuildError::BelowPcdata(_))
        ));
        assert!(matches!(
            b.require(&[], Constraint::Exists),
            Err(BuildError::EmptyPath)
        ));
    }

    #[test]
    fn build_requires_a_pick() {
        let d = d1_department();
        let mut b = QueryBuilder::new(&d, "v");
        b.require(&["department", "name"], Constraint::Exists)
            .unwrap();
        assert!(matches!(b.build(), Err(BuildError::NoPick)));
        b.pick(&["department", "professor"]).unwrap();
        let q = b.build().unwrap();
        assert!(normalize(&q, &d).is_ok());
    }

    #[test]
    fn menu_lists_dtd_children_with_bounds() {
        let d = d1_department();
        let b = QueryBuilder::new(&d, "v");
        let menu = b.menu(mix_relang::name("department"));
        let labels: Vec<&str> = menu.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(labels, ["name", "professor", "gradStudent", "course"]);
        assert!(b.menu(mix_relang::name("firstName")).is_empty());
    }

    #[test]
    fn shared_prefixes_merge() {
        let d = d1_department();
        let mut b = QueryBuilder::new(&d, "v");
        b.require(&["department", "professor", "teaches"], Constraint::Exists)
            .unwrap();
        b.require(
            &["department", "professor", "firstName"],
            Constraint::Text("Y".into()),
        )
        .unwrap();
        b.pick(&["department", "professor"]).unwrap();
        let q = b.build().unwrap();
        // one professor condition with two children
        assert_eq!(q.root.children().len(), 1);
        assert_eq!(q.root.children()[0].children().len(), 2);
    }
}
