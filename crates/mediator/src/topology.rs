//! The sharded, replica-aware federation tier (DESIGN.md §12).
//!
//! The paper's headline scenario unions "the structures exported by 100
//! sites" — at that scale one mediator process is both a bottleneck and
//! a single point of failure. This module spreads the member sources of
//! one federated union view across N mediator *nodes* and makes each
//! source a *replica set*:
//!
//! * [`Topology`] — the cluster description (`nodes N` plus one
//!   `source name = addr, addr` line per source, in union order),
//! * [`HashRing`] — consistent hashing of source names onto nodes, so
//!   growing the cluster only moves the sources landing on the new node,
//! * [`ReplicaSet`] — a [`Wrapper`] routing each call to the first
//!   healthy replica, with one circuit breaker ([`Health`]) per replica:
//!   open breakers are skipped, live failures fail over to the next
//!   replica, and only when *every* replica is down does the error
//!   surface — at which point the outer resilience layer's stale
//!   snapshot is the last line of defense,
//! * [`Federation`] — per-shard [`Mediator`]s whose members reassemble
//!   in global union order, so the federated answer is byte-identical
//!   to a single-node run over the same sources, and whose per-shard
//!   inferred view DTDs compose ([`compose_union_views`]) into the same
//!   global view DTD a single node would infer.
//!
//! Everything stays deterministic: replica order is configuration
//! order, breaker cooldowns count rejected calls (not wall time), and
//! transport errors carry no OS text — a chaos run that kills a replica
//! mid-batch produces the same bytes as a fault-free single-node run.

use crate::error::SourceError;
use crate::mediator::{Mediator, MediatorError, ProcessorConfig, UnionView};
use crate::obs::ReplicaInstruments;
use crate::resilience::{
    BreakerGate, BreakerState, DegradationReport, FetchStatus, Health, ResiliencePolicy,
    SourceOutcome,
};
use crate::source::Wrapper;
use mix_infer::{compose_union_views, InferredUnionView};
use mix_obs::Registry;
use mix_relang::symbol::Name;
use mix_xmas::Query;
use mix_xml::{Content, Document, ElemId, Element};
use std::fmt;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Topology configuration
// ---------------------------------------------------------------------

/// A parsed cluster topology: how many mediator nodes, and the replica
/// addresses of every source, in union (file) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// The number of mediator nodes sources are sharded across.
    pub nodes: usize,
    /// The sources, in file order — which is the global union order of
    /// the federated view.
    pub sources: Vec<SourceSpec>,
}

/// One source line of a topology file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpec {
    /// The source's registered name (also its shard-routing key).
    pub name: String,
    /// Replica addresses (`host:port`), in failover preference order.
    pub replicas: Vec<String>,
}

/// Why a topology file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No `nodes N` line (or N = 0).
    MissingNodes,
    /// A line that is neither a comment, `nodes N`, nor `source … = …`.
    Garbage {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// Two `source` lines share a name.
    DuplicateSource(String),
    /// A `source` line with no replica addresses.
    NoReplicas(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::MissingNodes => {
                write!(f, "topology needs a 'nodes N' line with N >= 1")
            }
            TopologyError::Garbage { line, text } => {
                write!(f, "topology line {line}: cannot parse '{text}'")
            }
            TopologyError::DuplicateSource(name) => {
                write!(f, "topology declares source '{name}' twice")
            }
            TopologyError::NoReplicas(name) => {
                write!(f, "topology source '{name}' lists no replica addresses")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// Parses the topology format:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// nodes 2
    /// source site0 = 127.0.0.1:7001, 127.0.0.1:7002
    /// source site1 = 127.0.0.1:7003
    /// ```
    ///
    /// Source lines keep file order (the global union order); replica
    /// addresses keep list order (the failover preference order).
    pub fn parse(text: &str) -> Result<Topology, TopologyError> {
        let mut nodes = 0usize;
        let mut sources: Vec<SourceSpec> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let garbage = || TopologyError::Garbage {
                line: i + 1,
                text: line.to_owned(),
            };
            if let Some(n) = line.strip_prefix("nodes") {
                nodes = n.trim().parse().map_err(|_| garbage())?;
            } else if let Some(rest) = line.strip_prefix("source") {
                let (name, addrs) = rest.split_once('=').ok_or_else(garbage)?;
                let name = name.trim();
                if name.is_empty() || name.contains(char::is_whitespace) {
                    return Err(garbage());
                }
                if sources.iter().any(|s| s.name == name) {
                    return Err(TopologyError::DuplicateSource(name.to_owned()));
                }
                let replicas: Vec<String> = addrs
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_owned)
                    .collect();
                if replicas.is_empty() {
                    return Err(TopologyError::NoReplicas(name.to_owned()));
                }
                sources.push(SourceSpec {
                    name: name.to_owned(),
                    replicas,
                });
            } else {
                return Err(garbage());
            }
        }
        if nodes == 0 {
            return Err(TopologyError::MissingNodes);
        }
        Ok(Topology { nodes, sources })
    }
}

// ---------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------

/// Virtual points per node on the ring: enough to keep the per-node load
/// skew small at the shard counts the federation tier targets.
const VNODES_PER_NODE: usize = 64;

/// FNV-1a with a 64-bit avalanche finalizer: deterministic and
/// dependency-free (the std hasher is randomly seeded per process, which
/// would make shard assignment differ between runs). The finalizer
/// matters — raw FNV puts short sequential keys like `site0`…`site99`
/// within a few multiples of the prime of each other, clustering them on
/// one arc of the ring.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A consistent-hash ring mapping source names onto node indices.
///
/// Each node contributes [`VNODES_PER_NODE`] virtual points; a key lands
/// on the node owning the first point at or after the key's hash
/// (wrapping). Growing the ring from N to N+1 nodes only reassigns the
/// keys that land on the new node's points — every other source keeps
/// its shard, so a cluster resize does not reshuffle the world.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// A ring over `nodes` nodes (at least 1).
    pub fn new(nodes: usize) -> HashRing {
        assert!(nodes >= 1, "a hash ring needs at least one node");
        let mut points: Vec<(u64, usize)> = (0..nodes)
            .flat_map(|node| {
                (0..VNODES_PER_NODE)
                    .map(move |v| (ring_hash(format!("node{node}/vnode{v}").as_bytes()), node))
            })
            .collect();
        points.sort_unstable();
        HashRing { points }
    }

    /// The node a key lands on.
    pub fn node_for(&self, key: &str) -> usize {
        let h = ring_hash(key.as_bytes());
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[i % self.points.len()].1
    }
}

// ---------------------------------------------------------------------
// Replica sets
// ---------------------------------------------------------------------

/// Breaker knobs for one replica set. Separate from
/// [`ResiliencePolicy`] because the replica router wants a hair
/// trigger: the point of a second replica is to take over on the *first*
/// failure, while the outer per-source breaker can afford to absorb a
/// few.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaPolicy {
    /// Consecutive source faults that open a replica's breaker.
    pub failure_threshold: u32,
    /// Calls skipped past an open replica before its breaker half-opens
    /// and the replica is probed again.
    pub cooldown_calls: u32,
}

impl Default for ReplicaPolicy {
    fn default() -> Self {
        ReplicaPolicy {
            failure_threshold: 1,
            cooldown_calls: 4,
        }
    }
}

/// A stand-in for a replica that was unreachable when the topology was
/// wired up: it holds the position (and advertised DTD) of the real
/// replica and fails every call with the same deterministic message a
/// refused connection produces, so the replica set's failover order —
/// and therefore every report — matches a run where the replica died
/// one call later.
pub struct DeadReplica {
    addr: String,
    dtd: mix_dtd::Dtd,
}

impl DeadReplica {
    /// A dead replica at `addr`, advertising `dtd` (cloned from a live
    /// sibling).
    pub fn new(addr: &str, dtd: mix_dtd::Dtd) -> DeadReplica {
        DeadReplica {
            addr: addr.to_owned(),
            dtd,
        }
    }
}

impl Wrapper for DeadReplica {
    fn dtd(&self) -> &mix_dtd::Dtd {
        &self.dtd
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        Err(SourceError::Unavailable(format!(
            "{}: connection refused",
            self.addr
        )))
    }
}

/// A [`Wrapper`] fronting several replicas of one source with
/// health-driven routing.
///
/// Calls try the replicas in configuration order. A replica whose
/// breaker is open is skipped without being contacted; a live call that
/// fails with a *source fault* opens the replica's breaker accounting
/// and fails over to the next replica; a [`SourceError::Throttled`] or
/// [`SourceError::Incompatible`] reply also fails over but leaves the
/// breaker untouched (the replica is alive — it is shedding load, or
/// misdeployed; neither is sickness). A [`SourceError::Query`] error
/// returns immediately: the query is the caller's fault and every
/// replica would reject it identically.
///
/// The set holds **no snapshots** of its own: when every replica is
/// down the last error surfaces, and the outer
/// [`crate::resilience::resilient_answer`] layer — which sees the
/// replica set as one source — serves its stale snapshot. That division
/// implements the tier's contract: stale data only when *all* replicas
/// of a source are down.
pub struct ReplicaSet {
    source: String,
    replicas: Vec<Arc<dyn Wrapper>>,
    health: Vec<Mutex<Health>>,
    policy: ReplicaPolicy,
    obs: ReplicaInstruments,
    dtd: mix_dtd::Dtd,
}

impl ReplicaSet {
    /// Wires up a replica set. Fails when no replicas are given, or when
    /// the replicas advertise inequivalent DTDs — serving a query
    /// normalized against one schema from a replica exporting another
    /// would silently produce wrong members.
    pub fn new(
        source: &str,
        replicas: Vec<Arc<dyn Wrapper>>,
        policy: ReplicaPolicy,
        obs: ReplicaInstruments,
    ) -> Result<ReplicaSet, SourceError> {
        let first = replicas.first().ok_or_else(|| {
            SourceError::Unavailable(format!("no replicas configured for '{source}'"))
        })?;
        let dtd = first.dtd().clone();
        for (i, r) in replicas.iter().enumerate().skip(1) {
            if !mix_dtd::same_documents(&dtd, r.dtd()) {
                return Err(SourceError::Incompatible(format!(
                    "replica {i} of '{source}' exports a DTD inequivalent to replica 0's"
                )));
            }
        }
        let health = replicas.iter().map(|_| Mutex::new(Health::new())).collect();
        Ok(ReplicaSet {
            source: source.to_owned(),
            replicas,
            health,
            policy,
            obs,
            dtd,
        })
    }

    /// The number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set has no replicas (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Per-replica breaker states, in configuration order.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.health
            .iter()
            .map(|h| {
                h.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .state()
            })
            .collect()
    }

    /// Publishes the count of replicas whose breaker is not open.
    fn publish_healthy(&self) {
        let live = self
            .health
            .iter()
            .filter(|h| {
                h.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .state()
                    != BreakerState::Open
            })
            .count();
        self.obs.healthy.set(live as i64);
    }

    /// Routes one call to the first replica that serves it.
    fn route(
        &self,
        call: &dyn Fn(&dyn Wrapper) -> Result<Document, SourceError>,
    ) -> Result<Document, SourceError> {
        let mut last_err: Option<SourceError> = None;
        let mut passed_over = false;
        for (i, (w, h)) in self.replicas.iter().zip(&self.health).enumerate() {
            let gate = h
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .gate(self.policy.cooldown_calls);
            if gate == BreakerGate::Reject {
                passed_over = true;
                last_err.get_or_insert_with(|| {
                    SourceError::Unavailable(format!(
                        "circuit open for replica {i} of '{}'",
                        self.source
                    ))
                });
                continue;
            }
            match call(&**w) {
                Ok(doc) => {
                    let reclosed = h
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .record_success(None);
                    if reclosed {
                        self.obs
                            .event("replica-recover", &format!("replica {i} probe succeeded"));
                    }
                    if let Some(served) = self.obs.served.get(i) {
                        served.inc();
                    }
                    if passed_over {
                        self.obs.failovers.inc();
                        self.obs.event(
                            "replica-failover",
                            &format!("served by replica {i} after earlier replicas failed"),
                        );
                    }
                    self.publish_healthy();
                    return Ok(doc);
                }
                // the caller's fault, identically rejected everywhere —
                // do not burn the other replicas on it
                Err(e @ SourceError::Query(_)) => return Err(e),
                Err(e) => {
                    if e.is_source_fault() {
                        h.lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .record_failure(self.policy.failure_threshold);
                    }
                    passed_over = true;
                    last_err = Some(e);
                }
            }
        }
        self.obs.exhausted.inc();
        self.obs.event(
            "replica-exhausted",
            "every replica failed or was circuit-open",
        );
        self.publish_healthy();
        Err(last_err.unwrap_or_else(|| {
            SourceError::Unavailable(format!("no replicas configured for '{}'", self.source))
        }))
    }
}

impl ReplicaSet {
    /// Routes a whole batch with per-item failover. The healthy case is
    /// one pipelined [`Wrapper::answer_batch`] call to the first live
    /// replica; items that come back with source faults carry over to
    /// the next replica while their siblings' answers stand. Breaker
    /// accounting is per item — a replica that fails a ten-query batch
    /// has failed ten calls — but each replica's gate is consulted once
    /// per batch, so a batch counts as one call against open-breaker
    /// cooldowns.
    fn route_batch(&self, queries: &[Query]) -> Vec<Result<Document, SourceError>> {
        let mut results: Vec<Option<Result<Document, SourceError>>> =
            queries.iter().map(|_| None).collect();
        let mut last_err: Vec<Option<SourceError>> = queries.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = (0..queries.len()).collect();
        let mut passed_over = false;
        for (i, (w, h)) in self.replicas.iter().zip(&self.health).enumerate() {
            if pending.is_empty() {
                break;
            }
            let gate = h
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .gate(self.policy.cooldown_calls);
            if gate == BreakerGate::Reject {
                passed_over = true;
                for &idx in &pending {
                    last_err[idx].get_or_insert_with(|| {
                        SourceError::Unavailable(format!(
                            "circuit open for replica {i} of '{}'",
                            self.source
                        ))
                    });
                }
                continue;
            }
            let sub: Vec<Query> = pending.iter().map(|&idx| queries[idx].clone()).collect();
            let replies = w.answer_batch(&sub);
            let mut carried = Vec::new();
            let mut served_here = false;
            for (&idx, reply) in pending.iter().zip(replies) {
                match reply {
                    Ok(doc) => {
                        let reclosed = h
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .record_success(None);
                        if reclosed {
                            self.obs
                                .event("replica-recover", &format!("replica {i} probe succeeded"));
                        }
                        if let Some(served) = self.obs.served.get(i) {
                            served.inc();
                        }
                        served_here = true;
                        results[idx] = Some(Ok(doc));
                    }
                    // the caller's fault, identically rejected everywhere
                    Err(e @ SourceError::Query(_)) => results[idx] = Some(Err(e)),
                    Err(e) => {
                        if e.is_source_fault() {
                            h.lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .record_failure(self.policy.failure_threshold);
                        }
                        last_err[idx] = Some(e);
                        carried.push(idx);
                    }
                }
            }
            if served_here && passed_over {
                self.obs.failovers.inc();
                self.obs.event(
                    "replica-failover",
                    &format!("served by replica {i} after earlier replicas failed"),
                );
            }
            if !carried.is_empty() {
                passed_over = true;
            }
            pending = carried;
        }
        if !pending.is_empty() {
            self.obs.exhausted.inc();
            self.obs.event(
                "replica-exhausted",
                "every replica failed or was circuit-open",
            );
            for idx in pending {
                let e = last_err[idx].take().unwrap_or_else(|| {
                    SourceError::Unavailable(format!(
                        "no replicas configured for '{}'",
                        self.source
                    ))
                });
                results[idx] = Some(Err(e));
            }
        }
        self.publish_healthy();
        results
            .into_iter()
            .map(|r| r.expect("every query served, rejected, or exhausted"))
            .collect()
    }
}

impl Wrapper for ReplicaSet {
    fn dtd(&self) -> &mix_dtd::Dtd {
        &self.dtd
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        self.route(&|w| w.fetch())
    }

    fn answer(&self, q: &Query) -> Result<Document, SourceError> {
        self.route(&|w| w.answer(q))
    }

    fn answer_batch(&self, queries: &[Query]) -> Vec<Result<Document, SourceError>> {
        self.route_batch(queries)
    }
}

// ---------------------------------------------------------------------
// Federation
// ---------------------------------------------------------------------

/// One member of a federated union view: a source name (the shard
/// routing key), the wrapper serving it (typically a [`ReplicaSet`]),
/// and its member query.
pub struct FederationPart {
    /// The source's registered name.
    pub source: String,
    /// The wrapper serving the source.
    pub wrapper: Arc<dyn Wrapper>,
    /// The member's view-definition query.
    pub query: Query,
}

/// A federated union view sharded across several mediator nodes.
///
/// [`Federation::build`] hashes every part's source name onto a
/// [`HashRing`] of `nodes` nodes and builds one [`Mediator`] per
/// non-empty node, each registering a union view over just its shard's
/// members (kept in global union order within the shard). The per-shard
/// inferred view DTDs are composed back into the global inference with
/// [`compose_union_views`], which agrees with what a single node would
/// infer over all parts — the sharding is invisible in the view DTD.
///
/// [`Federation::materialize_with_report`] materializes every shard's
/// members and reassembles them in global union order, so the answer
/// document is byte-identical to the single-node run; the
/// [`DegradationReport`] likewise lists outcomes in global order.
pub struct Federation {
    view: Name,
    shards: Vec<Mediator>,
    /// Per shard: the members' global union positions, in shard-local
    /// order.
    positions: Vec<Vec<usize>>,
    /// Per shard: the node index it runs as.
    nodes: Vec<usize>,
    total: usize,
    inferred: InferredUnionView,
    registry: Registry,
}

impl Federation {
    /// Builds the sharded federation. `nodes` is the cluster width (at
    /// least 1); `registry` is shared by every shard mediator, so one
    /// snapshot carries the whole cluster's instruments.
    pub fn build(
        view_name: &str,
        parts: Vec<FederationPart>,
        nodes: usize,
        registry: Registry,
    ) -> Result<Federation, MediatorError> {
        assert!(nodes >= 1, "a federation needs at least one node");
        let view = Name::intern(view_name);
        let ring = HashRing::new(nodes);
        let mut by_node: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        for (gp, part) in parts.iter().enumerate() {
            by_node[ring.node_for(&part.source)].push(gp);
        }
        let mut shards = Vec::new();
        let mut positions = Vec::new();
        let mut shard_nodes = Vec::new();
        for (node, gps) in by_node.iter().enumerate() {
            if gps.is_empty() {
                continue;
            }
            let mut m = Mediator::with_registry(ProcessorConfig::default(), registry.clone());
            for &gp in gps {
                m.add_source(&parts[gp].source, Arc::clone(&parts[gp].wrapper));
            }
            let local: Vec<(&str, Query)> = gps
                .iter()
                .map(|&gp| (parts[gp].source.as_str(), parts[gp].query.clone()))
                .collect();
            m.register_union_view(view_name, &local)?;
            shard_nodes.push(node);
            positions.push(gps.clone());
            shards.push(m);
        }
        let shard_views: Vec<(&InferredUnionView, &[usize])> = shards
            .iter()
            .zip(&positions)
            .map(|(m, gps)| {
                let uv: &UnionView = m.union_view(view).expect("union view registered above");
                (&uv.inferred, gps.as_slice())
            })
            .collect();
        let inferred = compose_union_views(view, &shard_views);
        Ok(Federation {
            view,
            shards,
            positions,
            nodes: shard_nodes,
            total: parts.len(),
            inferred,
            registry,
        })
    }

    /// The composed global union inference — equal (as a view DTD) to
    /// what a single node would infer over all parts.
    pub fn inferred(&self) -> &InferredUnionView {
        &self.inferred
    }

    /// The per-shard mediators, in node order.
    pub fn shards(&self) -> &[Mediator] {
        &self.shards
    }

    /// The node index of each shard, parallel to [`Federation::shards`].
    pub fn shard_nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// The registry every shard records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Applies one resilience policy to every shard mediator.
    pub fn set_resilience_policy(&mut self, policy: ResiliencePolicy) {
        for m in &mut self.shards {
            m.set_resilience_policy(policy);
        }
    }

    /// Materializes the federated view: every shard's members through
    /// its mediator's resilience layer (shards in parallel, members in
    /// parallel within each shard), reassembled in global union order.
    ///
    /// Degradation semantics match [`Mediator::materialize_with_report`]
    /// on a union view: the partial answer is served as long as one
    /// member (anywhere in the cluster) is, and
    /// [`MediatorError::AllSourcesFailed`] is raised only when none is.
    pub fn materialize_with_report(&self) -> Result<(Document, DegradationReport), MediatorError> {
        let _trace_scope = (mix_obs::current_trace() == 0).then(|| self.registry.begin_trace());
        let _span = self.registry.span("federate");
        let trace = mix_obs::current_trace();
        type ShardMembers = Vec<(Option<Document>, SourceOutcome)>;
        // shard-skip: a shard whose every member is provably `Unsat` is
        // answered here — synthesized empty contributions in shard-local
        // order — without spawning its worker thread at all
        let mut per_shard: Vec<Option<Result<ShardMembers, MediatorError>>> = self
            .shards
            .iter()
            .map(|m| m.prune_union_members(self.view).map(Ok))
            .collect();
        let live: Vec<usize> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(i, _)| i)
            .collect();
        let answered: Vec<(usize, Result<ShardMembers, MediatorError>)> = if live.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = live
                    .iter()
                    .map(|&i| {
                        let m = &self.shards[i];
                        scope.spawn(move || {
                            let _t = mix_obs::set_current_trace(trace);
                            (i, m.materialize_union_members(self.view))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard materialization panicked"))
                    .collect()
            })
        } else {
            live.iter()
                .map(|&i| (i, self.shards[i].materialize_union_members(self.view)))
                .collect()
        };
        for (i, result) in answered {
            per_shard[i] = Some(result);
        }
        let mut slots: Vec<Option<(Option<Document>, SourceOutcome)>> =
            (0..self.total).map(|_| None).collect();
        for (gps, members) in self.positions.iter().zip(per_shard) {
            let members = members.expect("every shard was pruned or materialized")?;
            debug_assert_eq!(gps.len(), members.len());
            for (local, member) in members.into_iter().enumerate() {
                slots[gps[local]] = Some(member);
            }
        }
        let _merge_span = self.registry.span("union_merge");
        let mut members = Vec::new();
        let mut outcomes = Vec::new();
        let mut served = 0usize;
        for slot in slots {
            let (doc, outcome) =
                slot.expect("every global position is assigned to exactly one shard");
            if let Some(part) = doc {
                served += 1;
                if let Content::Elements(kids) = part.root.content {
                    members.extend(kids);
                }
            }
            outcomes.push(outcome);
        }
        if served == 0 {
            return Err(MediatorError::AllSourcesFailed(self.view));
        }
        let document = Document::new(Element {
            name: self.view,
            id: ElemId::fresh(),
            content: Content::Elements(members),
        });
        let covers = if self.inferred.kind_conflicts.is_empty() {
            mix_dtd::satisfies(&self.inferred.dtd, &document)
        } else {
            mix_dtd::sdtd_satisfies(&self.inferred.sdtd, &document)
        };
        let report = DegradationReport {
            view: self.view.to_string(),
            outcomes,
            union_dtd_covers_survivors: covers,
        };
        if !report.is_clean() {
            let served = report
                .outcomes
                .iter()
                .filter(|o| o.status != FetchStatus::Failed)
                .count();
            self.registry.event(
                "degraded-answer",
                format!(
                    "view '{}': {}/{} sources served, union DTD covers survivors: {}",
                    report.view,
                    served,
                    report.outcomes.len(),
                    if report.union_dtd_covers_survivors {
                        "yes"
                    } else {
                        "no"
                    }
                ),
            );
        }
        Ok((document, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultInjector, FaultPlan};
    use crate::source::XmlSource;
    use mix_dtd::parse_compact;
    use mix_relang::symbol::name;
    use mix_xmas::parse_query;
    use mix_xml::{parse_document, write_document, WriteConfig};

    fn site_source(tag: &str, entries: usize) -> XmlSource {
        let dtd = parse_compact("{<site : entry*> <entry : PCDATA>}").unwrap();
        let body: String = (0..entries)
            .map(|i| format!("<entry>{tag}{i}</entry>"))
            .collect();
        let doc = parse_document(&format!("<site>{body}</site>")).unwrap();
        XmlSource::new(dtd, doc).unwrap()
    }

    fn part_query() -> Query {
        parse_query("all = SELECT X WHERE <site> X:<entry/> </site>").unwrap()
    }

    fn render(doc: &Document) -> String {
        write_document(doc, WriteConfig::default())
    }

    #[test]
    fn topology_parses_nodes_sources_and_comments() {
        let topo = Topology::parse(
            "# cluster\n\
             nodes 2\n\
             \n\
             source site0 = 127.0.0.1:7001, 127.0.0.1:7002\n\
             source site1 = 127.0.0.1:7003\n",
        )
        .unwrap();
        assert_eq!(topo.nodes, 2);
        assert_eq!(topo.sources.len(), 2);
        assert_eq!(topo.sources[0].name, "site0");
        assert_eq!(
            topo.sources[0].replicas,
            vec!["127.0.0.1:7001", "127.0.0.1:7002"]
        );
        assert_eq!(topo.sources[1].replicas, vec!["127.0.0.1:7003"]);
    }

    #[test]
    fn topology_rejects_malformed_input() {
        assert_eq!(
            Topology::parse("source s = 1.2.3.4:5\n"),
            Err(TopologyError::MissingNodes)
        );
        assert_eq!(
            Topology::parse("nodes 0\n"),
            Err(TopologyError::MissingNodes)
        );
        assert!(matches!(
            Topology::parse("nodes 1\nwat\n"),
            Err(TopologyError::Garbage { line: 2, .. })
        ));
        assert_eq!(
            Topology::parse("nodes 1\nsource s = a:1\nsource s = b:2\n"),
            Err(TopologyError::DuplicateSource("s".into()))
        );
        assert_eq!(
            Topology::parse("nodes 1\nsource s = \n"),
            Err(TopologyError::NoReplicas("s".into()))
        );
    }

    #[test]
    fn hash_ring_is_deterministic_and_consistent_under_growth() {
        let small = HashRing::new(3);
        let big = HashRing::new(4);
        let keys: Vec<String> = (0..200).map(|i| format!("site{i}")).collect();
        let mut moved = 0;
        let mut per_node = [0usize; 3];
        for k in &keys {
            let a = small.node_for(k);
            assert_eq!(a, small.node_for(k), "assignment must be stable");
            assert!(a < 3);
            per_node[a] += 1;
            let b = big.node_for(k);
            if a != b {
                // consistency: a key only ever moves TO the new node
                assert_eq!(b, 3, "'{k}' moved {a} -> {b}, not to the new node");
                moved += 1;
            }
        }
        assert!(moved > 0, "the new node must take over some keys");
        assert!(moved < keys.len() / 2, "growth reshuffled too much");
        for (node, n) in per_node.iter().enumerate() {
            assert!(*n > 0, "node {node} got no keys out of {}", keys.len());
        }
    }

    #[test]
    fn replica_set_fails_over_and_heals() {
        // replica 0 dies after its first success; replica 1 is steady
        let mut script = vec![None];
        script.extend(vec![Some(Fault::Unavailable); 2]);
        script.push(None); // the eventual probe succeeds
        let flaky = FaultInjector::new(Arc::new(site_source("a", 2)), FaultPlan::Script(script));
        let steady = Arc::new(site_source("a", 2));
        let registry = Registry::new();
        let set = ReplicaSet::new(
            "s",
            vec![Arc::new(flaky), steady],
            ReplicaPolicy {
                failure_threshold: 1,
                cooldown_calls: 2,
            },
            ReplicaInstruments::new(&registry, "s", 2),
        )
        .unwrap();
        let expected = render(&site_source("a", 2).fetch().unwrap());
        // call 1: replica 0 serves
        assert_eq!(render(&set.fetch().unwrap()), expected);
        // call 2: replica 0 faults (breaker opens), replica 1 takes over
        assert_eq!(render(&set.fetch().unwrap()), expected);
        assert_eq!(
            set.breaker_states(),
            vec![BreakerState::Open, BreakerState::Closed]
        );
        // call 3: replica 0 skipped without contact (cooldown 2)
        assert_eq!(render(&set.fetch().unwrap()), expected);
        // call 4 half-opens replica 0; its probe still faults -> re-open
        assert_eq!(render(&set.fetch().unwrap()), expected);
        assert_eq!(set.breaker_states()[0], BreakerState::Open);
        // call 5 cools it down again; call 6's probe succeeds
        assert_eq!(render(&set.fetch().unwrap()), expected);
        assert_eq!(render(&set.fetch().unwrap()), expected);
        assert_eq!(set.breaker_states()[0], BreakerState::Closed);
        let snap = registry.snapshot();
        assert!(snap.counters[r#"replica_failovers_total{source="s"}"#] >= 3);
        assert_eq!(snap.gauges[r#"replica_healthy{source="s"}"#], 2);
        assert!(snap.counters[r#"replica_served_total{source="s",replica="1"}"#] >= 3);
        assert!(snap.events.iter().any(|e| e.kind == "replica-failover"));
        assert!(snap.events.iter().any(|e| e.kind == "replica-recover"));
    }

    #[test]
    fn exhausted_replica_set_surfaces_the_last_error() {
        let dead0 = DeadReplica::new("h:1", site_source("a", 1).dtd().clone());
        let dead1 = DeadReplica::new("h:2", site_source("a", 1).dtd().clone());
        let registry = Registry::new();
        let set = ReplicaSet::new(
            "s",
            vec![Arc::new(dead0), Arc::new(dead1)],
            ReplicaPolicy::default(),
            ReplicaInstruments::new(&registry, "s", 2),
        )
        .unwrap();
        match set.fetch() {
            Err(SourceError::Unavailable(msg)) => assert_eq!(msg, "h:2: connection refused"),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counters[r#"replica_exhausted_total{source="s"}"#], 1);
        assert_eq!(snap.gauges[r#"replica_healthy{source="s"}"#], 0);
    }

    #[test]
    fn throttled_replies_fail_over_without_breaker_accounting() {
        struct Shedding {
            inner: XmlSource,
        }
        impl Wrapper for Shedding {
            fn dtd(&self) -> &mix_dtd::Dtd {
                self.inner.dtd()
            }
            fn fetch(&self) -> Result<Document, SourceError> {
                Err(SourceError::Throttled { retry_after_ms: 50 })
            }
        }
        let shedding = Shedding {
            inner: site_source("a", 2),
        };
        let set = ReplicaSet::new(
            "s",
            vec![Arc::new(shedding), Arc::new(site_source("a", 2))],
            ReplicaPolicy {
                failure_threshold: 1,
                cooldown_calls: 2,
            },
            ReplicaInstruments::noop("s", 2),
        )
        .unwrap();
        for _ in 0..3 {
            assert!(set.fetch().is_ok());
            // shedding is not sickness: the breaker stays closed, so the
            // replica is retried (not cooled down) on every call
            assert_eq!(
                set.breaker_states(),
                vec![BreakerState::Closed, BreakerState::Closed]
            );
        }
    }

    #[test]
    fn query_rejections_return_immediately() {
        let set = ReplicaSet::new(
            "s",
            vec![Arc::new(site_source("a", 1)), Arc::new(site_source("a", 1))],
            ReplicaPolicy::default(),
            ReplicaInstruments::noop("s", 2),
        )
        .unwrap();
        let bad = parse_query("all = SELECT Z WHERE <site> X:<entry/> </site>").unwrap();
        assert!(matches!(set.answer(&bad), Err(SourceError::Query(_))));
    }

    #[test]
    fn mismatched_replica_dtds_are_rejected() {
        let other = XmlSource::new(
            parse_compact("{<site : entry+> <entry : PCDATA>}").unwrap(),
            parse_document("<site><entry>x</entry></site>").unwrap(),
        )
        .unwrap();
        let err = match ReplicaSet::new(
            "s",
            vec![Arc::new(site_source("a", 1)), Arc::new(other)],
            ReplicaPolicy::default(),
            ReplicaInstruments::noop("s", 2),
        ) {
            Ok(_) => panic!("inequivalent replica DTDs must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, SourceError::Incompatible(_)));
    }

    /// The tentpole equivalence: a sharded federation's answer, report
    /// shape, and composed view DTD all match the single-node mediator
    /// over the same sources.
    #[test]
    fn federation_matches_the_single_node_run() {
        let sources: Vec<(String, usize)> = (0..5).map(|i| (format!("site{i}"), i + 1)).collect();

        let mut single = Mediator::new();
        for (s, n) in &sources {
            single.add_source(s, Arc::new(site_source(s, *n)));
        }
        let parts_single: Vec<(&str, Query)> = sources
            .iter()
            .map(|(s, _)| (s.as_str(), part_query()))
            .collect();
        single.register_union_view("all", &parts_single).unwrap();
        let (single_doc, single_report) = single.materialize_with_report(name("all")).unwrap();

        for nodes in [1usize, 2, 3] {
            let parts: Vec<FederationPart> = sources
                .iter()
                .map(|(s, n)| FederationPart {
                    source: s.clone(),
                    wrapper: Arc::new(site_source(s, *n)) as Arc<dyn Wrapper>,
                    query: part_query(),
                })
                .collect();
            let fed = Federation::build("all", parts, nodes, Registry::new()).unwrap();
            if nodes > 1 {
                assert!(fed.shards().len() > 1, "5 sources should span 2+ shards");
            }
            let (doc, report) = fed.materialize_with_report().unwrap();
            assert_eq!(
                render(&doc),
                render(&single_doc),
                "{nodes}-node federation diverged from the single node"
            );
            assert!(report.is_clean());
            assert_eq!(report.outcomes.len(), single_report.outcomes.len());
            let order: Vec<&str> = report.outcomes.iter().map(|o| o.source.as_str()).collect();
            let single_order: Vec<&str> = single_report
                .outcomes
                .iter()
                .map(|o| o.source.as_str())
                .collect();
            assert_eq!(order, single_order, "outcome order must be global order");
            // the composed view DTD agrees with the single-node inference
            let su = single.union_view(name("all")).unwrap();
            assert!(mix_dtd::same_documents(
                &fed.inferred().dtd,
                &su.inferred.dtd
            ));
            assert_eq!(fed.inferred().verdict, su.inferred.verdict);
        }
    }

    /// Shard-level satisfiability pruning: members with provably-Unsat
    /// queries are skipped before any fetch — a shard where *every*
    /// member is Unsat never even spawns — and the federated answer
    /// stays byte-identical to an unpruned single-node run.
    #[test]
    fn unsat_members_and_shards_are_skipped_before_any_fetch() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct CountingSource {
            inner: XmlSource,
            fetches: Arc<AtomicUsize>,
        }
        impl Wrapper for CountingSource {
            fn dtd(&self) -> &mix_dtd::Dtd {
                self.inner.dtd()
            }
            fn fetch(&self) -> Result<Document, SourceError> {
                self.fetches.fetch_add(1, Ordering::SeqCst);
                self.inner.fetch()
            }
        }

        // <entry> is PCDATA, so a child step under it is provably Unsat
        let unsat_query = || {
            parse_query("all = SELECT X WHERE <site> <entry> X:<deep/> </entry> </site>").unwrap()
        };
        let build_parts = |fetches: &Arc<AtomicUsize>, sat_members: usize| -> Vec<FederationPart> {
            (0..4)
                .map(|i| {
                    let s = format!("site{i}");
                    FederationPart {
                        source: s.clone(),
                        wrapper: Arc::new(CountingSource {
                            inner: site_source(&s, i + 1),
                            fetches: Arc::clone(fetches),
                        }) as Arc<dyn Wrapper>,
                        query: if i < sat_members {
                            part_query()
                        } else {
                            unsat_query()
                        },
                    }
                })
                .collect()
        };

        // reference: a single unpruned node over the same sources
        let reference = |sat_members: usize| -> Document {
            let mut m = Mediator::with_config(ProcessorConfig {
                use_sat_pruning: false,
                ..ProcessorConfig::default()
            });
            for i in 0..4 {
                let s = format!("site{i}");
                m.add_source(&s, Arc::new(site_source(&s, i + 1)));
            }
            let parts: Vec<(String, Query)> = (0..4)
                .map(|i| {
                    let q = if i < sat_members {
                        part_query()
                    } else {
                        unsat_query()
                    };
                    (format!("site{i}"), q)
                })
                .collect();
            let refs: Vec<(&str, Query)> =
                parts.iter().map(|(s, q)| (s.as_str(), q.clone())).collect();
            m.register_union_view("all", &refs).unwrap();
            m.materialize(name("all")).unwrap()
        };

        // every member Unsat: all shards skip, zero fetches anywhere
        let fetches = Arc::new(AtomicUsize::new(0));
        let registry = Registry::new();
        let fed = Federation::build("all", build_parts(&fetches, 0), 2, registry.clone()).unwrap();
        let (doc, report) = fed.materialize_with_report().unwrap();
        assert_eq!(render(&doc), render(&reference(0)));
        assert_eq!(fetches.load(Ordering::SeqCst), 0, "no member may fetch");
        assert_eq!(report.outcomes.len(), 4);
        assert!(report.is_clean(), "pruned members report fresh: {report}");
        assert_eq!(registry.snapshot().counters["sat_pruned_total"], 4);

        // mixed: only the satisfiable member fetches, bytes still match
        let fetches = Arc::new(AtomicUsize::new(0));
        let registry = Registry::new();
        let fed = Federation::build("all", build_parts(&fetches, 1), 2, registry.clone()).unwrap();
        let (doc, _) = fed.materialize_with_report().unwrap();
        assert_eq!(render(&doc), render(&reference(1)));
        assert_eq!(fetches.load(Ordering::SeqCst), 1, "one Sat member fetches");
        assert_eq!(registry.snapshot().counters["sat_pruned_total"], 3);
    }

    /// A replica killed under a shard is invisible in the answer: the
    /// replica set fails over, the member serves fresh, and the bytes
    /// match the fault-free single-node run.
    #[test]
    fn replica_failure_keeps_the_federated_answer_byte_identical() {
        let mut single = Mediator::new();
        for i in 0..4 {
            let s = format!("site{i}");
            single.add_source(&s, Arc::new(site_source(&s, i + 1)));
        }
        let parts_single: Vec<(String, Query)> =
            (0..4).map(|i| (format!("site{i}"), part_query())).collect();
        let refs: Vec<(&str, Query)> = parts_single
            .iter()
            .map(|(s, q)| (s.as_str(), q.clone()))
            .collect();
        single.register_union_view("all", &refs).unwrap();
        let (single_doc, _) = single.materialize_with_report(name("all")).unwrap();

        let registry = Registry::new();
        let parts: Vec<FederationPart> = (0..4)
            .map(|i| {
                let s = format!("site{i}");
                // replica 0 of site1 is dead from the start; every set
                // still has a live replica
                let replicas: Vec<Arc<dyn Wrapper>> = if i == 1 {
                    vec![
                        Arc::new(FaultInjector::new(
                            Arc::new(site_source(&s, i + 1)),
                            FaultPlan::Script(vec![Some(Fault::Unavailable); 100]),
                        )),
                        Arc::new(site_source(&s, i + 1)),
                    ]
                } else {
                    vec![
                        Arc::new(site_source(&s, i + 1)),
                        Arc::new(site_source(&s, i + 1)),
                    ]
                };
                let set = ReplicaSet::new(
                    &s,
                    replicas,
                    ReplicaPolicy::default(),
                    ReplicaInstruments::new(&registry, &s, 2),
                )
                .unwrap();
                FederationPart {
                    source: s,
                    wrapper: Arc::new(set),
                    query: part_query(),
                }
            })
            .collect();
        let fed = Federation::build("all", parts, 2, registry.clone()).unwrap();
        for _ in 0..3 {
            let (doc, report) = fed.materialize_with_report().unwrap();
            assert_eq!(render(&doc), render(&single_doc));
            assert!(report.is_clean(), "failover must be invisible: {report}");
        }
        let snap = registry.snapshot();
        assert!(snap.counters[r#"replica_failovers_total{source="site1"}"#] >= 1);
    }

    /// Stale snapshots only when ALL replicas of a source are down: with
    /// one replica alive the answer is fresh; once both die, the outer
    /// resilience layer serves its snapshot and marks the member stale.
    #[test]
    fn stale_fallback_engages_only_when_every_replica_is_down() {
        // both replicas: 2 healthy calls, then dead forever
        let dying = |tag: &str| -> Arc<dyn Wrapper> {
            let mut script = vec![None, None];
            script.extend(vec![Some(Fault::Unavailable); 100]);
            Arc::new(FaultInjector::new(
                Arc::new(site_source(tag, 2)),
                FaultPlan::Script(script),
            ))
        };
        // replica 1 stays alive one call longer
        let mut script = vec![None, None, None];
        script.extend(vec![Some(Fault::Unavailable); 100]);
        let longer: Arc<dyn Wrapper> = Arc::new(FaultInjector::new(
            Arc::new(site_source("a", 2)),
            FaultPlan::Script(script),
        ));
        let set = ReplicaSet::new(
            "s",
            vec![dying("a"), longer],
            ReplicaPolicy {
                failure_threshold: 1,
                cooldown_calls: 100, // dead replicas stay parked
            },
            ReplicaInstruments::noop("s", 2),
        )
        .unwrap();
        let mut m = Mediator::new();
        m.add_source("s", Arc::new(set));
        m.register_union_view("all", &[("s", part_query())])
            .unwrap();
        // call 1: replica 0 serves fresh (and the outer layer snapshots)
        let (_, r) = m.materialize_with_report(name("all")).unwrap();
        assert_eq!(r.outcomes[0].status, FetchStatus::Fresh);
        // call 2: replica 0's script still serves (position 1)
        let (_, r) = m.materialize_with_report(name("all")).unwrap();
        assert_eq!(r.outcomes[0].status, FetchStatus::Fresh, "{r}");
        // later calls: both replicas dead -> outer layer serves stale
        let mut saw_stale = false;
        for _ in 0..4 {
            let (_, r) = m.materialize_with_report(name("all")).unwrap();
            if r.outcomes[0].status == FetchStatus::Stale {
                saw_stale = true;
            }
        }
        assert!(saw_stale, "all-replicas-down must degrade to stale");
    }
}
